//! The placement-policy menu: one entry per configuration in the paper's
//! §5.3 evaluation (plus partial replication, the state §3.3's
//! auto-replication converges to).

use cpms_model::NodeSpec;
use cpms_sim::placement as p;
use cpms_urltable::UrlTable;
use cpms_workload::Corpus;

/// A content placement scheme, realized as a URL table over a corpus and
/// a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Configuration 1: every object on every node.
    FullReplication,
    /// Configuration 1 for a mixed NT/Linux cluster: every object on every
    /// node *that can serve it* (ASP only on IIS nodes) — the honest
    /// baseline when the workload includes ASP.
    FullReplicationCapable,
    /// Configuration 2: all content behind a shared NFS server; any node
    /// can serve anything by fetching it remotely. Use together with
    /// [`crate::experiment::ExperimentBuilder::nfs_server`].
    SharedNfs,
    /// Configuration 3: partition by content type (CGI on fast CPUs, ASP
    /// on IIS, video on big disks, static striped by capacity weight).
    /// `segregate_dynamic` discounts dynamic hosts for static placement
    /// (the Workload B experiment).
    PartitionedByType {
        /// Keep static content mostly off dynamic-content hosts.
        segregate_dynamic: bool,
    },
    /// Partitioning plus extra replicas for the hottest fraction of every
    /// class.
    PartialReplication {
        /// Keep static content mostly off dynamic-content hosts.
        segregate_dynamic: bool,
        /// Fraction (0..=1) of each class's hottest objects to replicate.
        hot_fraction: f64,
        /// Target copy count for those hot objects.
        copies: usize,
    },
    /// Partitioning plus §1.2's differentiated QoS: critical-priority
    /// content is pinned (with `critical_copies` replicas) onto the most
    /// capable nodes.
    PartitionedWithQos {
        /// Keep static content mostly off dynamic-content hosts.
        segregate_dynamic: bool,
        /// Replicas for each critical object (mutable critical objects
        /// stay single-copy).
        critical_copies: usize,
    },
}

impl PlacementPolicy {
    /// Maps a serialized [`cpms_model::PlacementKind`] (from a
    /// [`cpms_model::ClusterConfig`]) onto a concrete policy with default
    /// parameters.
    pub fn from_kind(kind: cpms_model::PlacementKind) -> Self {
        match kind {
            cpms_model::PlacementKind::FullReplication => PlacementPolicy::FullReplication,
            cpms_model::PlacementKind::SharedNfs => PlacementPolicy::SharedNfs,
            cpms_model::PlacementKind::PartitionedByType => PlacementPolicy::PartitionedByType {
                segregate_dynamic: true,
            },
            cpms_model::PlacementKind::PartialReplication => PlacementPolicy::PartialReplication {
                segregate_dynamic: true,
                hot_fraction: 0.05,
                copies: 2,
            },
            // `PlacementKind` is non-exhaustive; map future kinds to the
            // conservative default.
            _ => PlacementPolicy::FullReplication,
        }
    }

    /// Builds the URL table realizing this policy.
    pub fn build_table(&self, corpus: &Corpus, specs: &[NodeSpec]) -> UrlTable {
        match *self {
            PlacementPolicy::FullReplication => p::replicate_everywhere(corpus, specs.len()),
            PlacementPolicy::FullReplicationCapable => {
                p::replicate_everywhere_capable(corpus, specs)
            }
            PlacementPolicy::SharedNfs => p::shared_nfs(corpus, specs.len()),
            PlacementPolicy::PartitionedByType { segregate_dynamic } => {
                p::partition_by_type(corpus, specs, spread(segregate_dynamic))
            }
            PlacementPolicy::PartialReplication {
                segregate_dynamic,
                hot_fraction,
                copies,
            } => {
                let mut table = p::partition_by_type(corpus, specs, spread(segregate_dynamic));
                p::replicate_hot_content(&mut table, corpus, specs, hot_fraction, copies);
                table
            }
            PlacementPolicy::PartitionedWithQos {
                segregate_dynamic,
                critical_copies,
            } => {
                let mut table = p::partition_by_type(corpus, specs, spread(segregate_dynamic));
                p::pin_critical_content(&mut table, corpus, specs, critical_copies);
                table
            }
        }
    }

    /// Whether this policy needs the simulator's shared-NFS mode.
    pub fn needs_nfs(&self) -> bool {
        matches!(self, PlacementPolicy::SharedNfs)
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::FullReplication => "full-replication",
            PlacementPolicy::FullReplicationCapable => "full-replication-capable",
            PlacementPolicy::SharedNfs => "shared-nfs",
            PlacementPolicy::PartitionedByType { .. } => "partitioned",
            PlacementPolicy::PartialReplication { .. } => "partial-replication",
            PlacementPolicy::PartitionedWithQos { .. } => "partitioned-qos",
        }
    }
}

fn spread(segregate_dynamic: bool) -> p::StaticSpread {
    if segregate_dynamic {
        p::StaticSpread::SegregateDynamic
    } else {
        p::StaticSpread::AllNodes
    }
}

impl std::fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_workload::CorpusBuilder;

    #[test]
    fn every_policy_builds_a_complete_table() {
        let corpus = CorpusBuilder::small_site().seed(1).build();
        let specs = NodeSpec::paper_testbed();
        for policy in [
            PlacementPolicy::FullReplication,
            PlacementPolicy::FullReplicationCapable,
            PlacementPolicy::SharedNfs,
            PlacementPolicy::PartitionedByType {
                segregate_dynamic: false,
            },
            PlacementPolicy::PartitionedByType {
                segregate_dynamic: true,
            },
            PlacementPolicy::PartialReplication {
                segregate_dynamic: true,
                hot_fraction: 0.1,
                copies: 2,
            },
            PlacementPolicy::PartitionedWithQos {
                segregate_dynamic: false,
                critical_copies: 2,
            },
        ] {
            let table = policy.build_table(&corpus, &specs);
            assert_eq!(
                table.len(),
                corpus.len(),
                "{policy}: every object has a record"
            );
            for (path, e) in table.iter() {
                assert!(e.replica_count() >= 1, "{policy}: {path} has a location");
            }
        }
    }

    #[test]
    fn partial_replication_increases_copies() {
        let corpus = CorpusBuilder::small_site().seed(2).build();
        let specs = NodeSpec::paper_testbed();
        let base = PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        }
        .build_table(&corpus, &specs);
        let partial = PlacementPolicy::PartialReplication {
            segregate_dynamic: false,
            hot_fraction: 0.2,
            copies: 3,
        }
        .build_table(&corpus, &specs);
        let copies = |t: &UrlTable| t.iter().map(|(_, e)| e.replica_count()).sum::<usize>();
        assert!(copies(&partial) > copies(&base));
    }

    #[test]
    fn only_nfs_needs_nfs() {
        assert!(PlacementPolicy::SharedNfs.needs_nfs());
        assert!(!PlacementPolicy::FullReplication.needs_nfs());
        assert!(!PlacementPolicy::PartitionedByType {
            segregate_dynamic: false
        }
        .needs_nfs());
    }
}
