//! Criterion benchmarks for workload generation: corpus construction and
//! per-request sampling rates.

use cpms_workload::{CorpusBuilder, RequestSampler, Trace, WorkloadSpec, ZipfSampler};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");

    group.bench_function("corpus_build_8700", |b| {
        b.iter(|| black_box(CorpusBuilder::paper_site().seed(1).build().len()));
    });

    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 3);

    group.bench_function("sample_request", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| black_box(sampler.sample_id(&mut rng)));
    });

    group.bench_function("zipf_sample_8700", |b| {
        let zipf = ZipfSampler::new(8_700, 0.8);
        let mut rng = StdRng::seed_from_u64(8);
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });

    group.bench_function("trace_record_10k", |b| {
        b.iter(|| {
            let mut s = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), 5);
            black_box(Trace::record(&mut s, 10_000).len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
