//! Criterion benchmark of the discrete-event simulator's event throughput
//! (simulated seconds per wall-clock second at paper scale).

use cpms_dispatch::{ContentAwareRouter, WeightedLeastConnections};
use cpms_model::{NodeSpec, SimDuration};
use cpms_sim::{placement, SimConfig, Simulation};
use cpms_workload::{CorpusBuilder, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let specs = NodeSpec::paper_testbed();

    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    group.bench_function("full_replication_5s_window", |b| {
        b.iter_batched(
            || {
                let table = placement::replicate_everywhere(&corpus, specs.len());
                let mut config = SimConfig::builder();
                config.nodes(specs.clone()).clients(64).seed(3);
                Simulation::new(
                    config.build(),
                    &corpus,
                    table,
                    Box::new(WeightedLeastConnections::new()),
                    &WorkloadSpec::workload_a(),
                )
            },
            |mut sim| black_box(sim.run_window(SimDuration::from_secs(5)).completed),
            BatchSize::PerIteration,
        );
    });

    group.bench_function("partitioned_content_aware_5s_window", |b| {
        b.iter_batched(
            || {
                let table = placement::partition_by_type(
                    &corpus,
                    &specs,
                    placement::StaticSpread::AllNodes,
                );
                let mut config = SimConfig::builder();
                config.nodes(specs.clone()).clients(64).seed(3);
                Simulation::new(
                    config.build(),
                    &corpus,
                    table,
                    Box::new(ContentAwareRouter::new(4_096)),
                    &WorkloadSpec::workload_a(),
                )
            },
            |mut sim| black_box(sim.run_window(SimDuration::from_secs(5)).completed),
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
