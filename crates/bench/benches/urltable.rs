//! Criterion micro-benchmarks for the URL table (§5.2): the per-request
//! routing lookup, with and without the recently-accessed-entry cache, at
//! the paper's 8 700-object scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cpms_model::{NodeSpec, UrlPath};
use cpms_sim::placement;
use cpms_urltable::{LookupCache, UrlTable};
use cpms_workload::{CorpusBuilder, RequestSampler, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn paper_table() -> (UrlTable, Vec<UrlPath>) {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let table = placement::partition_by_type(
        &corpus,
        &NodeSpec::paper_testbed(),
        placement::StaticSpread::AllNodes,
    );
    // A Zipf-skewed probe stream, like live routing traffic.
    let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 3);
    let mut rng = StdRng::seed_from_u64(4);
    let probes: Vec<UrlPath> = (0..8_192)
        .map(|_| corpus.get(sampler.sample_id(&mut rng)).path().clone())
        .collect();
    (table, probes)
}

fn bench_lookup(c: &mut Criterion) {
    let (table, probes) = paper_table();
    let mut group = c.benchmark_group("urltable");

    group.bench_function("lookup_uncached_8700_objects", |b| {
        let mut i = 0;
        b.iter(|| {
            let path = &probes[i % probes.len()];
            i += 1;
            black_box(table.lookup(path))
        });
    });

    group.bench_function("lookup_cached_8700_objects", |b| {
        let mut cache = LookupCache::new(4_096);
        // warm the cache
        for path in &probes {
            cache.lookup(&table, path);
        }
        let mut i = 0;
        b.iter(|| {
            let path = &probes[i % probes.len()];
            i += 1;
            black_box(cache.lookup(&table, path))
        });
    });

    group.bench_function("lookup_miss", |b| {
        let missing: UrlPath = "/definitely/not/present.html".parse().expect("valid");
        b.iter(|| black_box(table.lookup(&missing)));
    });

    group.bench_function("insert_remove", |b| {
        use cpms_model::{ContentId, ContentKind};
        use cpms_urltable::UrlEntry;
        let path: UrlPath = "/bench/new/object.html".parse().expect("valid");
        b.iter_batched(
            || table.clone(),
            |mut t| {
                t.insert(
                    path.clone(),
                    UrlEntry::new(ContentId(u32::MAX), ContentKind::StaticHtml, 100),
                )
                .expect("fresh path");
                t.remove(&path).expect("present");
                black_box(t.len())
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
