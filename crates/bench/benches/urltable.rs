//! Criterion micro-benchmarks for the URL table (§5.2): the per-request
//! routing lookup, with and without the recently-accessed-entry cache, at
//! the paper's 8 700-object scale — plus a multi-threaded contended-lookup
//! comparison of the seed `Arc<RwLock<UrlTable>>` design against the
//! snapshot-publication design used by the live distributor, written to
//! `bench_results/urltable_concurrent.json`.

use cpms_model::{NodeId, NodeSpec, UrlPath};
use cpms_sim::placement;
use cpms_urltable::{LookupCache, TablePublisher, UrlTable};
use cpms_workload::{CorpusBuilder, RequestSampler, WorkloadSpec};
use criterion::{criterion_group, BatchSize, Criterion};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn paper_table() -> (UrlTable, Vec<UrlPath>) {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let table = placement::partition_by_type(
        &corpus,
        &NodeSpec::paper_testbed(),
        placement::StaticSpread::AllNodes,
    );
    // A Zipf-skewed probe stream, like live routing traffic.
    let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 3);
    let mut rng = StdRng::seed_from_u64(4);
    let probes: Vec<UrlPath> = (0..8_192)
        .map(|_| corpus.get(sampler.sample_id(&mut rng)).path().clone())
        .collect();
    (table, probes)
}

fn bench_lookup(c: &mut Criterion) {
    let (table, probes) = paper_table();
    let mut group = c.benchmark_group("urltable");

    group.bench_function("lookup_uncached_8700_objects", |b| {
        let mut i = 0;
        b.iter(|| {
            let path = &probes[i % probes.len()];
            i += 1;
            black_box(table.lookup(path))
        });
    });

    group.bench_function("lookup_cached_8700_objects", |b| {
        let mut cache = LookupCache::new(4_096);
        // warm the cache
        for path in &probes {
            cache.lookup(&table, path);
        }
        let mut i = 0;
        b.iter(|| {
            let path = &probes[i % probes.len()];
            i += 1;
            black_box(cache.lookup(&table, path))
        });
    });

    group.bench_function("lookup_miss", |b| {
        let missing: UrlPath = "/definitely/not/present.html".parse().expect("valid");
        b.iter(|| black_box(table.lookup(&missing)));
    });

    group.bench_function("insert_remove", |b| {
        use cpms_model::{ContentId, ContentKind};
        use cpms_urltable::UrlEntry;
        let path: UrlPath = "/bench/new/object.html".parse().expect("valid");
        b.iter_batched(
            || table.clone(),
            |mut t| {
                t.insert(
                    path.clone(),
                    UrlEntry::new(ContentId(u32::MAX), ContentKind::StaticHtml, 100),
                )
                .expect("fresh path");
                t.remove(&path).expect("present");
                black_box(t.len())
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

// ---------------------------------------------------------------------------
// Contended lookups: the seed design (one `Arc<RwLock<UrlTable>>` shared by
// every worker, per-worker caches reading through the lock) against the
// snapshot design (generation-tagged `Arc<UrlTable>` swaps, wait-free
// reader pins). 1/2/4/8 reader threads, a management writer mutating the
// table 0/1/10 times per second.
// ---------------------------------------------------------------------------

const CELL_DURATION: Duration = Duration::from_millis(500);
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MUTATION_RATES: [u32; 3] = [0, 1, 10];

/// Picks the replica-churn path used by the writer: an existing record, so
/// each mutation is a routing change that bumps the table generation and
/// invalidates every reader cache.
fn churn_path(table: &UrlTable) -> UrlPath {
    table.iter().next().expect("paper table is non-empty").0
}

/// Runs `readers` routing threads for [`CELL_DURATION`] against the seed
/// design and returns total lookups completed. This reproduces the seed
/// proxy's per-request routing step exactly: every worker takes the
/// *exclusive* lock and calls `lookup_and_hit` (hit accounting was inline,
/// so even reads needed `write()`), with no cache in the request path.
fn run_rwlock_cell(table: &UrlTable, probes: &[UrlPath], readers: usize, rate: u32) -> u64 {
    let shared = Arc::new(RwLock::new(table.clone()));
    let churn = churn_path(table);
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..readers {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            scope.spawn(move || {
                let mut ops = 0u64;
                let mut i = t; // stagger probe phases across threads
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let path = &probes[i % probes.len()];
                        i += 1;
                        let mut guard = shared.write();
                        black_box(guard.lookup_and_hit(path));
                        ops += 1;
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        if rate > 0 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let churn = churn.clone();
            scope.spawn(move || {
                let interval = Duration::from_secs(1) / rate;
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval.min(Duration::from_millis(20)));
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut guard = shared.write();
                    if flip {
                        let _ = guard.remove_location(&churn, NodeId(999));
                    } else {
                        let _ = guard.add_location(&churn, NodeId(999));
                    }
                    flip = !flip;
                }
            });
        }
        std::thread::sleep(CELL_DURATION);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

/// Same workload against the snapshot-publication design.
fn run_snapshot_cell(table: &UrlTable, probes: &[UrlPath], readers: usize, rate: u32) -> u64 {
    let publisher = TablePublisher::new(table.clone());
    let churn = churn_path(table);
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for t in 0..readers {
            let handle = publisher.handle();
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            scope.spawn(move || {
                let mut reader = handle.reader(4_096);
                let mut ops = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        let path = &probes[i % probes.len()];
                        i += 1;
                        black_box(reader.lookup(path));
                        ops += 1;
                    }
                }
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        if rate > 0 {
            let publisher = &publisher;
            let stop = Arc::clone(&stop);
            let churn = churn.clone();
            scope.spawn(move || {
                let interval = Duration::from_secs(1) / rate;
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval.min(Duration::from_millis(20)));
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if flip {
                        let _ = publisher.update(|u| u.remove_location(&churn, NodeId(999)));
                    } else {
                        let _ = publisher.update(|u| u.add_location(&churn, NodeId(999)));
                    }
                    flip = !flip;
                }
            });
        }
        std::thread::sleep(CELL_DURATION);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed)
}

fn bench_contended() {
    let (table, probes) = paper_table();
    let mut cells = Vec::new();
    let secs = CELL_DURATION.as_secs_f64();

    println!(
        "\ncontended lookups ({}ms per cell):",
        CELL_DURATION.as_millis()
    );
    for &threads in &THREAD_COUNTS {
        for &rate in &MUTATION_RATES {
            let start = Instant::now();
            let rwlock_ops = run_rwlock_cell(&table, &probes, threads, rate);
            let snapshot_ops = run_snapshot_cell(&table, &probes, threads, rate);
            let speedup = snapshot_ops as f64 / rwlock_ops.max(1) as f64;
            println!(
                "  threads={threads} mut/s={rate:>2}  rwlock={:>10.0}/s  snapshot={:>10.0}/s  speedup={speedup:.2}x  ({:?})",
                rwlock_ops as f64 / secs,
                snapshot_ops as f64 / secs,
                start.elapsed(),
            );
            cells.push(serde_json::json!({
                "threads": threads,
                "mutations_per_sec": rate,
                "rwlock_lookups_per_sec": rwlock_ops as f64 / secs,
                "snapshot_lookups_per_sec": snapshot_ops as f64 / secs,
                "snapshot_speedup": speedup,
            }));
        }
    }

    let out = serde_json::json!({
        "bench": "urltable_concurrent",
        "table_objects": table.len(),
        "cell_duration_ms": CELL_DURATION.as_millis() as u64,
        "designs": {
            "rwlock": "seed: Arc<RwLock<UrlTable>>, write()+lookup_and_hit per request (inline hit accounting forces the exclusive lock, no cache in the request path)",
            "snapshot": "TablePublisher snapshots, per-thread SnapshotReader (wait-free pinned reads through a private cache; hit accounting deferred to worker ledgers)",
        },
        "cells": cells,
    });
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../bench_results/urltable_concurrent.json"
    );
    std::fs::write(path, serde_json::to_string_pretty(&out).expect("serialize"))
        .expect("write bench_results/urltable_concurrent.json");
    println!("wrote bench_results/urltable_concurrent.json");
}

criterion_group!(benches, bench_lookup);

fn main() {
    benches();
    bench_contended();
}
