//! Criterion micro-benchmarks for the dispatcher: the routing decision
//! (the §2.3/[24] "overhead of content-aware routing" claim) and the
//! packet-splicing data plane.

use cpms_dispatch::mapping::ConnKey;
use cpms_dispatch::relay::{Distributor, Flags, Packet};
use cpms_dispatch::{
    ClusterState, ContentAwareRouter, Router, RoutingRequest, WeightedLeastConnections,
};
use cpms_model::{NodeId, NodeSpec, UrlPath};
use cpms_sim::placement;
use cpms_workload::{CorpusBuilder, RequestSampler, WorkloadSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_routing(c: &mut Criterion) {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let specs = NodeSpec::paper_testbed();
    let table = placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes);
    let state = ClusterState::new(specs.iter().map(NodeSpec::weight).collect());
    let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 3);
    let mut rng = StdRng::seed_from_u64(4);
    let probes: Vec<(UrlPath, cpms_model::ContentKind)> = (0..4_096)
        .map(|_| {
            let item = corpus.get(sampler.sample_id(&mut rng));
            (item.path().clone(), item.kind())
        })
        .collect();

    let mut group = c.benchmark_group("dispatch");
    group.bench_function("content_aware_decision", |b| {
        let mut router = ContentAwareRouter::new(4_096);
        let mut i = 0;
        b.iter(|| {
            let (path, kind) = &probes[i % probes.len()];
            i += 1;
            let req = RoutingRequest {
                client: i as u32,
                path,
                kind: *kind,
            };
            black_box(router.route(&req, &state, &table))
        });
    });

    group.bench_function("l4_wlc_decision", |b| {
        let mut router = WeightedLeastConnections::new();
        let mut i = 0;
        b.iter(|| {
            let (path, kind) = &probes[i % probes.len()];
            i += 1;
            let req = RoutingRequest {
                client: i as u32,
                path,
                kind: *kind,
            };
            black_box(router.route(&req, &state, &table))
        });
    });

    group.bench_function("spliced_exchange_lifecycle", |b| {
        // Full per-request distributor work: SYN, handshake, bind, two
        // relays, FIN dance, release.
        let mut d = Distributor::new(9, 64);
        let mut port = 0u16;
        b.iter(|| {
            port = port.wrapping_add(1);
            let key = ConnKey {
                client_ip: 0x0A00_0001,
                client_port: port,
            };
            let synack = d.accept_syn(key, 1_000, false).expect("fresh conn");
            d.complete_handshake(key).expect("handshake");
            d.bind(key, NodeId(port % 9), 1_001).expect("bind");
            let pkt = Packet {
                seq: 1_001,
                ack: synack.seq.wrapping_add(1),
                flags: Flags {
                    syn: false,
                    ack: true,
                    fin: false,
                },
                payload: 200,
            };
            let _ = d.relay_to_server(key, pkt).expect("relay");
            let _ = d.relay_to_client(key, pkt, true).expect("relay back");
            let _ = d.client_fin(key, 1_201).expect("fin");
            d.last_ack(key, 200, 1_000).expect("close");
            black_box(d.pool().total_checkouts())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
