//! Content-shipping throughput across chunk size × loss rate.
//!
//! Ships a fixed corpus through the chunked, checksummed, resumable
//! ship protocol and reports effective throughput for every cell of a
//! chunk-size × frame-loss matrix — the placement system's equivalent
//! of a TCP bandwidth-delay sweep: small chunks amortize badly but
//! lose little per drop, large chunks are cheap on a clean wire and
//! expensive to retransmit on a dirty one.
//!
//! Run with: `cargo run --release -p cpms-bench --bin shipping`
//! (add `--smoke` for the quick CI pass: every cell must complete with
//! intact checksums, without rewriting the committed results file).

use cpms_model::{ContentId, NodeId, UrlPath};
use cpms_store::{
    fnv64, synthetic_body, ContentStore, ObjectMeta, Shipper, StoreClient, StoreService,
};
use cpms_wire::{FaultPlan, FaultyTransport, InProcServer, Transport};
use std::sync::Arc;
use std::time::Instant;

const CHUNK_SIZES: &[u32] = &[1_024, 4_096, 16_384];
const LOSS_RATES: &[f64] = &[0.0, 0.10, 0.20];

struct Config {
    objects: u32,
    object_bytes: u64,
    smoke: bool,
}

impl Config {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Config {
                objects: 2,
                object_bytes: 24 * 1024,
                smoke,
            }
        } else {
            Config {
                objects: 8,
                object_bytes: 256 * 1024,
                smoke,
            }
        }
    }
}

struct Cell {
    chunk_size: u32,
    loss: f64,
    elapsed_ms: f64,
    mb_per_s: f64,
    resumes: u64,
    chunk_retries: u64,
    bytes_shipped: u64,
}

fn run_cell(config: &Config, chunk_size: u32, loss: f64, seed: u64) -> Cell {
    // A fresh store per cell: re-shipping a committed object would
    // short-circuit and measure nothing.
    let store = Arc::new(ContentStore::in_memory(NodeId(0), 1 << 30));
    let (transport, server) = InProcServer::spawn_named(
        StoreService::new(Arc::clone(&store)),
        &format!("ship-bench-{chunk_size}-{seed}"),
    );
    // Leak the server handle; the process exits when the bench is done.
    std::mem::forget(server);
    let base: Arc<dyn Transport> = Arc::new(transport);
    let wire: Arc<dyn Transport> = if loss > 0.0 {
        Arc::new(FaultyTransport::new(base, FaultPlan::lossy(seed, loss)))
    } else {
        base
    };
    let client = StoreClient::new(wire);
    let shipper = Shipper::new();

    let mut resumes = 0_u64;
    let mut chunk_retries = 0_u64;
    let mut bytes_shipped = 0_u64;
    let start = Instant::now();
    for i in 0..config.objects {
        let body = synthetic_body(ContentId(i), config.object_bytes);
        let path: UrlPath = format!("/bench/{chunk_size}/{i}.bin").parse().unwrap();
        let meta = ObjectMeta {
            content: ContentId(i),
            size: body.len() as u64,
            checksum: fnv64(&body),
            chunk_size,
            version: 0,
        };
        let outcome = shipper
            .push_meta(&client, &path, meta, &body, false)
            .expect("ship must ride out injected loss");
        assert_eq!(outcome.meta.checksum, meta.checksum, "bytes arrived intact");
        resumes += u64::from(outcome.resumes);
        chunk_retries += u64::from(outcome.chunk_retries);
        bytes_shipped += outcome.bytes_sent;
    }
    let elapsed = start.elapsed();
    let payload = config.objects as u64 * config.object_bytes;
    assert_eq!(store.stats().rejected_chunks, 0, "loss is not corruption");
    Cell {
        chunk_size,
        loss,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        mb_per_s: payload as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64(),
        resumes,
        chunk_retries,
        bytes_shipped,
    }
}

fn main() {
    let config = Config::from_args();
    let payload_kib = config.objects as u64 * config.object_bytes / 1024;
    println!(
        "content-shipping throughput — {} objects × {} KiB per cell\n",
        config.objects,
        config.object_bytes / 1024
    );
    println!(
        "{:>10} {:>6} {:>10} {:>9} {:>8} {:>9} {:>12}",
        "chunk", "loss", "MB/s", "ms", "resumes", "retries", "wire-bytes"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for (ci, &chunk_size) in CHUNK_SIZES.iter().enumerate() {
        for (li, &loss) in LOSS_RATES.iter().enumerate() {
            let seed = 0xBE9C_0000 + (ci as u64) * 16 + li as u64;
            let cell = run_cell(&config, chunk_size, loss, seed);
            println!(
                "{:>9}B {:>5.0}% {:>10.1} {:>9.1} {:>8} {:>9} {:>12}",
                cell.chunk_size,
                cell.loss * 100.0,
                cell.mb_per_s,
                cell.elapsed_ms,
                cell.resumes,
                cell.chunk_retries,
                cell.bytes_shipped
            );
            cells.push(cell);
        }
    }

    if config.smoke {
        assert_eq!(cells.len(), CHUNK_SIZES.len() * LOSS_RATES.len());
        assert!(
            cells.iter().all(|c| c.mb_per_s > 0.0),
            "every cell moved bytes"
        );
        println!("\nsmoke ok: {payload_kib} KiB shipped intact in every cell");
        return;
    }

    let report = serde_json::json!({
        "bench": "shipping",
        "objects": config.objects,
        "object_bytes": config.object_bytes,
        "cells": cells.iter().map(|c| serde_json::json!({
            "chunk_size": c.chunk_size,
            "loss": c.loss,
            "mb_per_s": c.mb_per_s,
            "elapsed_ms": c.elapsed_ms,
            "resumes": c.resumes,
            "chunk_retries": c.chunk_retries,
            "bytes_shipped": c.bytes_shipped,
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/shipping.json",
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/shipping.json");
}
