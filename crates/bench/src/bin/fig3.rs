//! Figure 3 — "Benefit of content partition (Workload B)".
//!
//! Reproduces the second experiment of §5.3: WebBench Workload B (with a
//! significant CGI/ASP share) comparing content full-replication behind
//! the WLC layer-4 router against the proposed system (content
//! segregation + content-aware distributor).
//!
//! Note: the paper's text says this experiment ran "on the configuration
//! 2 and 3" but then discusses full replication vs the proposed system —
//! we follow the discussion (full replication baseline), and
//! EXPERIMENTS.md records the discrepancy.
//!
//! The qualitative result to match: the proposed system outperforms
//! full replication + WLC, because content-blind dispatch keeps sending
//! heavy dynamic requests to slow nodes (and ASP cannot even run on the
//! non-IIS nodes).
//!
//! Run with: `cargo run --release -p cpms-bench --bin fig3`

use cpms_core::prelude::*;
use cpms_core::report::render_throughput_table;

fn main() {
    let clients: Vec<u32> = vec![8, 16, 32, 48, 64, 96, 120];
    let base = || {
        Experiment::builder()
            .corpus_objects(8_700)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::B)
            .windows(SimDuration::from_secs(10), SimDuration::from_secs(30))
            .seed(7)
    };

    eprintln!(
        "fig3: sweeping {} client counts x 2 configurations...",
        clients.len()
    );

    let full = base()
        .placement(PlacementPolicy::FullReplicationCapable)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);
    let segregated = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .build()
        .sweep_clients(&clients);

    let series = vec![
        FigureSeries::from_results("full replication + L4 WLC", &full),
        FigureSeries::from_results("segregated + content-aware", &segregated),
    ];

    println!("Figure 3 — Benefit of content partition (Workload B)\n");
    println!("{}", render_throughput_table(&series));

    let ratio = series[1].saturated_throughput() / series[0].saturated_throughput();
    println!(
        "at saturation: proposed / full-replication = {ratio:.2}x (paper: proposed outperforms)"
    );

    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/fig3.json",
        serde_json::to_string_pretty(&series).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/fig3.json");
}
