//! Figure 4 — "Benefit of content segregation".
//!
//! Reproduces the per-class comparison of §5.3 at saturation: "Figure 4
//! shows the throughput when the server was saturated by 120 concurrent
//! WebBench clients. In the content-aware router with content
//! segregation, the average CGI request, average ASP request, and average
//! static request … increased by 45 percent, 42 percent, and 58 percent
//! respectively."
//!
//! The qualitative result to match: every class gains under segregation,
//! "because the content segregation prevents short Web requests from
//! being delayed by long running request."
//!
//! Run with: `cargo run --release -p cpms-bench --bin fig4`

use cpms_core::prelude::*;
use cpms_core::report::{class_gains, render_class_gains};

fn main() {
    const SATURATION_CLIENTS: u32 = 120;
    let base = || {
        Experiment::builder()
            .corpus_objects(8_700)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::B)
            .clients(SATURATION_CLIENTS)
            .windows(SimDuration::from_secs(10), SimDuration::from_secs(40))
            .seed(7)
    };

    eprintln!("fig4: running baseline and proposed system at {SATURATION_CLIENTS} clients...");

    let baseline = base()
        .placement(PlacementPolicy::FullReplicationCapable)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .run();
    let proposed = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .build()
        .run();

    println!(
        "Figure 4 — Benefit of content segregation ({SATURATION_CLIENTS} concurrent WebBench clients)\n"
    );
    let gains = class_gains(&baseline, &proposed);
    println!("{}", render_class_gains(&gains));
    println!("paper reported: cgi +45%, asp +42%, static +58%");
    println!(
        "aggregate: baseline {:.0} rps -> proposed {:.0} rps ({:+.0}%)",
        baseline.report.throughput_rps(),
        proposed.report.throughput_rps(),
        (proposed.report.throughput_rps() / baseline.report.throughput_rps() - 1.0) * 100.0
    );

    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/fig4.json",
        serde_json::to_string_pretty(&gains).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/fig4.json");
}
