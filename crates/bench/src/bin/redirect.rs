//! §2.1 ablation — why the paper builds connection splicing instead of
//! HTTP redirection.
//!
//! > "we do not prefer HTTP redirection because this mechanism is quite
//! > heavy-weight. Not only does it necessitate the use of one additional
//! > connection, which introduces an extra round-trip latency…"
//!
//! Same placement (partitioned), same decisions (content-aware); only the
//! delivery mechanism differs: spliced relaying vs a 302 + fresh client
//! connection. Swept over client↔cluster RTTs from LAN to WAN.
//!
//! Run with: `cargo run --release -p cpms-bench --bin redirect`

use cpms_core::prelude::*;

fn main() {
    let base = || {
        Experiment::builder()
            .corpus_objects(8_700)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::A)
            .clients(64)
            .windows(SimDuration::from_secs(10), SimDuration::from_secs(25))
            .placement(PlacementPolicy::PartitionedByType {
                segregate_dynamic: false,
            })
            .seed(7)
    };

    eprintln!("redirect: comparing splicing vs HTTP redirection across client RTTs...");

    let spliced = base()
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .build()
        .run();

    println!("§2.1 ablation — connection splicing vs HTTP redirection\n");
    println!(
        "{:>18} | {:>12} | {:>14} | {:>10}",
        "mechanism", "client RTT", "throughput", "mean resp"
    );
    println!("{}", "-".repeat(64));
    println!(
        "{:>18} | {:>12} | {:>10.0} rps | {:>8.1}ms",
        "spliced (paper)",
        "n/a",
        spliced.report.throughput_rps(),
        spliced.report.mean_response_ms()
    );

    let mut rows = vec![serde_json::json!({
        "mechanism": "spliced",
        "client_rtt_ms": serde_json::Value::Null,
        "throughput_rps": spliced.report.throughput_rps(),
        "mean_response_ms": spliced.report.mean_response_ms(),
    })];
    for rtt_ms in [1u64, 10, 40, 80] {
        let redirected = base()
            .router(RouterChoice::HttpRedirect {
                cache_entries: 4096,
                client_rtt_micros: rtt_ms * 1_000,
            })
            .build()
            .run();
        println!(
            "{:>18} | {:>10}ms | {:>10.0} rps | {:>8.1}ms",
            "http-redirect",
            rtt_ms,
            redirected.report.throughput_rps(),
            redirected.report.mean_response_ms()
        );
        rows.push(serde_json::json!({
            "mechanism": "http-redirect",
            "client_rtt_ms": rtt_ms,
            "throughput_rps": redirected.report.throughput_rps(),
            "mean_response_ms": redirected.report.mean_response_ms(),
        }));
    }
    println!(
        "\npaper's point: redirection pays two extra round trips per request,\n\
         so its cost explodes with client RTT while splicing is flat."
    );

    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/redirect.json",
        serde_json::to_string_pretty(&rows).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/redirect.json");
}
