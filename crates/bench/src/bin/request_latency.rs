//! Request-path latency under a Zipf workload, through real sockets.
//!
//! Drives the multi-worker content-aware proxy with keep-alive clients
//! issuing Zipf-skewed requests, and reports the per-stage latency
//! histograms the observability layer collects on the hot path: request
//! parse, URL-table lookup, routing decision, backend relay, and the
//! end-to-end request — the live twin of §5.2's "average lookup time is
//! about 4.32 µsecs" measurement, with full percentile detail instead of
//! a single mean.
//!
//! A management controller shares the proxy's metrics registry, so the
//! emitted report (and the `--smoke` assertion set) covers all four
//! metric families of the single-system-image stats surface: `proxy_*`,
//! `dispatch_*`, `urltable_*`, and `mgmt_*`.
//!
//! Two overhead arms ride along, each alternating off/on round by
//! round: span recording (tracing) and the flight-recorder sampler
//! (`cpms_obs::Sampler`), both timed at the client so the reported
//! ratios are end-to-end hot-path cost, not self-measurement.
//!
//! Run with: `cargo run --release -p cpms-bench --bin request_latency`
//! (add `--smoke` for the quick CI pass that asserts the metric surface
//! without rewriting the committed results file).

use cpms_httpd::client::HttpClient;
use cpms_httpd::loadgen::{self, LoadConfig};
use cpms_httpd::{ContentAwareProxy, OriginServer, ProxyConfig, SiteContent, METRICS_PATH};
use cpms_mgmt::{Cluster, Controller};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_obs::{HistogramSummary, MetricsRegistry};
use cpms_urltable::{TablePublisher, UrlEntry, UrlTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const NODES: usize = 3;
const ZIPF_THETA: f64 = 0.7;

struct Config {
    paths: usize,
    clients: usize,
    requests_per_client: usize,
    workers: usize,
    smoke: bool,
}

impl Config {
    fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--smoke");
        if smoke {
            Config {
                paths: 64,
                clients: 2,
                requests_per_client: 250,
                workers: 2,
                smoke,
            }
        } else {
            Config {
                paths: 512,
                clients: 4,
                requests_per_client: 5_000,
                workers: 4,
                smoke,
            }
        }
    }
}

/// Cumulative Zipf weights over `n` ranks: rank i gets 1/(i+1)^theta.
fn zipf_cdf(n: usize) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (0..n)
        .map(|i| {
            acc += 1.0 / ((i + 1) as f64).powf(ZIPF_THETA);
            acc
        })
        .collect();
    let total = *cdf.last().expect("n > 0");
    for c in &mut cdf {
        *c /= total;
    }
    cdf
}

fn sample_rank(cdf: &[f64], rng: &mut StdRng) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Client-side latency summary of one workload arm, measured at the
/// socket so it is independent of the server's own histograms (which
/// accumulate across passes).
struct PassStats {
    mean_ns: f64,
    p50_ns: u64,
    p99_ns: u64,
}

impl PassStats {
    fn of(mut samples: Vec<u64>) -> PassStats {
        samples.sort_unstable();
        let total: u128 = samples.iter().map(|&n| u128::from(n)).sum();
        let at = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        PassStats {
            mean_ns: total as f64 / samples.len() as f64,
            p50_ns: at(0.50),
            p99_ns: at(0.99),
        }
    }
}

/// Fully-replicated routing table over the bench paths.
fn routing_table(paths: &[String]) -> UrlTable {
    let mut table = UrlTable::new();
    for (i, path) in paths.iter().enumerate() {
        let url: UrlPath = path.parse().unwrap();
        table
            .insert(
                url,
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 64)
                    .with_locations((0..NODES).map(|n| NodeId(n as u16))),
            )
            .unwrap();
    }
    table
}

/// Threads currently live in this process (workers, acceptor, origins,
/// and the bench itself) — the number that must NOT scale with
/// connection count.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// One connection-scaling arm: `connections` keep-alive connections,
/// closed-loop when `pace_ms` is `None`, open-loop (paced, with
/// connection churn) otherwise.
struct ArmSpec {
    connections: usize,
    requests_per_conn: u64,
    pace_ms: Option<u64>,
    churn_every: u64,
}

struct ArmResult {
    spec: ArmSpec,
    completed: u64,
    reconnects: u64,
    p50_ns: u64,
    p99_ns: u64,
    process_threads: usize,
}

/// Runs one scaling arm by re-invoking this binary in `--drive` mode:
/// the client side lives in a child process with its own fd budget (a
/// 10k-connection arm needs ~10k sockets per side, and this box caps
/// each process at 20k descriptors). The sampled thread count is the
/// *server* process's — the number that must stay fixed.
fn run_arm(addr: std::net::SocketAddr, paths_n: usize, spec: ArmSpec) -> ArmResult {
    let exe = std::env::current_exe().expect("own binary path");
    let out = std::process::Command::new(exe)
        .arg("--drive")
        .arg(addr.to_string())
        .arg(spec.connections.to_string())
        .arg(spec.requests_per_conn.to_string())
        .arg(spec.pace_ms.unwrap_or(0).to_string())
        .arg(spec.churn_every.to_string())
        .arg(paths_n.to_string())
        .output()
        .expect("spawn drive child");
    let process_threads = thread_count();
    assert!(
        out.status.success(),
        "drive child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let report: serde_json::Value =
        serde_json::from_str(stdout.trim()).expect("drive child emits JSON");
    let field = |k: &str| {
        report
            .get(k)
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
    };
    let expected = spec.connections as u64 * spec.requests_per_conn;
    assert_eq!(field("completed"), expected, "every request completed");
    assert_eq!(field("errors"), 0, "no connection failures");
    assert_eq!(field("non_200"), 0, "all responses 200");
    ArmResult {
        spec,
        completed: field("completed"),
        reconnects: field("reconnects"),
        p50_ns: field("p50_ns"),
        p99_ns: field("p99_ns"),
        process_threads,
    }
}

/// Child half of `run_arm`: drives the load and prints one JSON line.
/// Arguments: ADDR CONNS REQS_PER_CONN PACE_MS(0 = closed loop) CHURN
/// PATHS_N.
fn drive_child(args: &[String]) {
    let addr: std::net::SocketAddr = args[0].parse().expect("drive addr");
    let connections: usize = args[1].parse().expect("drive conns");
    let requests_per_conn: u64 = args[2].parse().expect("drive reqs");
    let pace_ms: u64 = args[3].parse().expect("drive pace");
    let churn_every: u64 = args[4].parse().expect("drive churn");
    let paths_n: usize = args[5].parse().expect("drive paths");
    cpms_reactor::raise_nofile_limit(connections as u64 * 2 + 256);
    let urls: Vec<UrlPath> = (0..paths_n)
        .map(|i| format!("/obj/{i}.html").parse().unwrap())
        .collect();
    let report = loadgen::run(
        addr,
        &urls,
        &LoadConfig {
            connections,
            requests_per_conn,
            pace: (pace_ms > 0).then(|| std::time::Duration::from_millis(pace_ms)),
            churn_every,
        },
    )
    .expect("drive loadgen");
    let line = serde_json::json!({
        "completed": report.completed,
        "errors": report.errors,
        "non_200": report.non_200,
        "reconnects": report.reconnects,
        "p50_ns": report.percentile_ns(0.50),
        "p99_ns": report.percentile_ns(0.99),
    });
    println!(
        "{}",
        serde_json::to_string(&line).expect("serialize report")
    );
}

/// Replays one round of the Zipf workload, appending one end-to-end
/// latency sample per request across all clients.
fn drive_round(
    addr: std::net::SocketAddr,
    config: &Config,
    cdf: &[f64],
    paths: &[String],
    seed_base: u64,
    into: &mut Vec<u64>,
) {
    let samples = std::sync::Mutex::new(Vec::with_capacity(
        config.clients * config.requests_per_client,
    ));
    std::thread::scope(|scope| {
        for client_idx in 0..config.clients {
            let samples = &samples;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed_base + client_idx as u64);
                let mut client = HttpClient::connect(addr).unwrap();
                let mut local = Vec::with_capacity(config.requests_per_client);
                for _ in 0..config.requests_per_client {
                    let path = &paths[sample_rank(cdf, &mut rng)];
                    let start = std::time::Instant::now();
                    let response = client.get(path).expect("request succeeds");
                    local.push(start.elapsed().as_nanos() as u64);
                    assert_eq!(response.status, 200, "GET {path}");
                }
                samples.lock().unwrap().extend(local);
            });
        }
    });
    into.extend(samples.into_inner().unwrap());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--drive") {
        drive_child(&args[1..]);
        return;
    }
    let config = Config::from_args();
    let registry = Arc::new(MetricsRegistry::new());

    // --- cluster: every node serves every path (full replication keeps
    // the replica-choice branch of the router hot).
    let paths: Vec<String> = (0..config.paths)
        .map(|i| format!("/obj/{i}.html"))
        .collect();
    let origins: Vec<OriginServer> = (0..NODES)
        .map(|n| {
            let mut site = SiteContent::new();
            for path in &paths {
                site.add_static(path, format!("body of {path}").into_bytes());
            }
            OriginServer::start(NodeId(n as u16), site).unwrap()
        })
        .collect();

    let table = routing_table(&paths);

    let backends = origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start_with_registry(
        table,
        backends,
        8,
        config.workers,
        Arc::clone(&registry),
    )
    .unwrap();

    // --- management plane on the same registry, so the mgmt family is
    // part of the surface this bench reports on.
    let mut controller = Controller::new(Cluster::start(NODES, 1 << 20));
    controller.set_metrics(&registry);
    controller
        .publish(
            &"/obj/0.html".parse().unwrap(),
            ContentId(0),
            ContentKind::StaticHtml,
            64,
            Priority::Normal,
            &[NodeId(0)],
        )
        .unwrap();

    // --- drive the Zipf workload with keep-alive clients.
    let addr = proxy.addr();
    let cdf = zipf_cdf(config.paths);
    std::thread::scope(|scope| {
        for client_idx in 0..config.clients {
            let cdf = &cdf;
            let paths = &paths;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(42 + client_idx as u64);
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..config.requests_per_client {
                    let path = &paths[sample_rank(cdf, &mut rng)];
                    let response = client.get(path).expect("request succeeds");
                    assert_eq!(response.status, 200, "GET {path}");
                }
            });
        }
    });

    let total_requests = (config.clients * config.requests_per_client) as u64;
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("proxy_relayed_total"),
        Some(total_requests),
        "every request relayed"
    );

    // --- report
    let stages = [
        "proxy_request_ns",
        "proxy_parse_ns",
        "proxy_relay_ns",
        "dispatch_route_ns",
        "urltable_lookup_ns",
        "mgmt_op_ns",
    ];
    println!(
        "request-path latency — {} requests, {} clients, {} workers, Zipf({ZIPF_THETA}) over {} paths\n",
        total_requests, config.clients, config.workers, config.paths
    );
    let us = |ns: u64| ns as f64 / 1000.0;
    for name in stages {
        let s = snapshot.histogram(name).expect(name);
        println!(
            "{name:<20} count={:<7} p50={:>8.1}us p90={:>8.1}us p99={:>8.1}us max={:>8.1}us",
            s.count,
            us(s.p50),
            us(s.p90),
            us(s.p99),
            us(s.max)
        );
    }

    // --- tracing overhead: the same workload with span recording off
    // vs on, timed at the client. The two arms alternate round by round
    // so scheduler drift on a shared box cancels instead of biasing
    // whichever arm ran later.
    const OVERHEAD_ROUNDS: u64 = 4;
    let lookup_totals = || {
        let s = registry.snapshot();
        let s = s.histogram("urltable_lookup_ns").expect("lookup histogram");
        (s.count, s.sum)
    };
    let mut untraced_samples = Vec::new();
    let mut traced_samples = Vec::new();
    let mut lookup = [(0u64, 0u64); 2]; // (count, sum_ns) per arm
    for round in 0..OVERHEAD_ROUNDS {
        for (arm, (samples, seed)) in [
            (&mut untraced_samples, 1_000 + round * 100),
            (&mut traced_samples, 2_000 + round * 100),
        ]
        .into_iter()
        .enumerate()
        {
            registry.spans().set_enabled(arm == 1);
            let before = lookup_totals();
            drive_round(addr, &config, &cdf, &paths, seed, samples);
            let after = lookup_totals();
            lookup[arm].0 += after.0 - before.0;
            lookup[arm].1 += after.1 - before.1;
        }
    }
    let untraced = PassStats::of(untraced_samples);
    let traced = PassStats::of(traced_samples);
    let overhead = traced.mean_ns / untraced.mean_ns - 1.0;
    let lookup_mean = |arm: usize| lookup[arm].1 as f64 / lookup[arm].0.max(1) as f64;
    let lookup_overhead = lookup_mean(1) / lookup_mean(0) - 1.0;
    println!(
        "\ntracing overhead — end-to-end: untraced mean={:.1}us p99={:.1}us, traced mean={:.1}us p99={:.1}us ({:+.2}% mean)",
        untraced.mean_ns / 1000.0,
        us(untraced.p99_ns),
        traced.mean_ns / 1000.0,
        us(traced.p99_ns),
        overhead * 100.0
    );
    println!(
        "tracing overhead — url-table lookup stage: untraced mean={:.2}us, traced mean={:.2}us ({:+.2}% mean)",
        lookup_mean(0) / 1000.0,
        lookup_mean(1) / 1000.0,
        lookup_overhead * 100.0
    );

    // --- recorder overhead: the same workload with the flight-recorder
    // sampler off vs on, timed at the client. The sampler runs at 25 ms
    // (4x the 100 ms daemon default) to make any hot-path cost easier to
    // see; the arms alternate round by round like the tracing arms.
    // Span recording is pinned off so this isolates the recorder alone.
    const RECORD_INTERVAL: std::time::Duration = std::time::Duration::from_millis(25);
    registry.spans().set_enabled(false);
    let mut unrecorded_samples = Vec::new();
    let mut recorded_samples = Vec::new();
    for round in 0..OVERHEAD_ROUNDS {
        for (arm, (samples, seed)) in [
            (&mut unrecorded_samples, 3_000 + round * 100),
            (&mut recorded_samples, 4_000 + round * 100),
        ]
        .into_iter()
        .enumerate()
        {
            let mut sampler =
                (arm == 1).then(|| cpms_obs::Sampler::start(&registry, RECORD_INTERVAL));
            drive_round(addr, &config, &cdf, &paths, seed, samples);
            if let Some(s) = sampler.as_mut() {
                s.stop();
            }
        }
    }
    let unrecorded = PassStats::of(unrecorded_samples);
    let recorded = PassStats::of(recorded_samples);
    let recorder_overhead = recorded.mean_ns / unrecorded.mean_ns - 1.0;
    let recorder_samples = registry
        .series()
        .map_or(0, |recorder| recorder.samples_taken());
    println!(
        "recorder overhead — sampler off: mean={:.1}us p99={:.1}us, sampler on ({}ms): mean={:.1}us p99={:.1}us ({:+.2}% mean, {} sampling rounds)",
        unrecorded.mean_ns / 1000.0,
        us(unrecorded.p99_ns),
        RECORD_INTERVAL.as_millis(),
        recorded.mean_ns / 1000.0,
        us(recorded.p99_ns),
        recorder_overhead * 100.0,
        recorder_samples
    );

    // --- connection scaling: the same data plane holding 8 → 1 000 →
    // 10 000 keep-alive connections on a fixed worker count. The 8-conn
    // arm is the closed-loop baseline; the big arms are open-loop (paced
    // request starts, plus connection churn through the accept path) so
    // they measure connection *capacity* — mostly-idle keep-alive
    // connections at a steady aggregate rate — not CPU saturation. The
    // paces keep that rate low enough that request chains rarely overlap:
    // on a single-CPU runner each request serializes three processes
    // (client, proxy, origin), so a fast pace would measure CPU queueing
    // across all of them instead of what holding the connections costs.
    let arm_specs: Vec<ArmSpec> = if config.smoke {
        vec![
            ArmSpec {
                connections: 8,
                requests_per_conn: 25,
                pace_ms: None,
                churn_every: 0,
            },
            ArmSpec {
                connections: 128,
                requests_per_conn: 4,
                pace_ms: Some(50),
                churn_every: 2,
            },
        ]
    } else {
        vec![
            ArmSpec {
                connections: 8,
                requests_per_conn: 2_500,
                pace_ms: None,
                churn_every: 0,
            },
            // Open-loop 8-conn baseline for the flat-p99 comparison: the
            // same aggregate arrival rate (~800 req/s) and churn mix (one
            // re-dial per 8 requests) as the 1000-connection arm, so the
            // only variable left is how many connections the data plane
            // is holding.
            ArmSpec {
                connections: 8,
                requests_per_conn: 1_000,
                pace_ms: Some(10),
                churn_every: 8,
            },
            ArmSpec {
                connections: 1_000,
                requests_per_conn: 8,
                pace_ms: Some(1_200),
                churn_every: 4,
            },
            ArmSpec {
                connections: 10_000,
                requests_per_conn: 3,
                pace_ms: Some(5_000),
                churn_every: 2,
            },
        ]
    };
    let max_arm_conns = arm_specs.iter().map(|a| a.connections).max().unwrap();
    // A dedicated proxy instance with the connection cap opened up, so
    // the scaling arms never brush against the default 4096 cap and
    // their metrics don't mix into the latency report above.
    let arm_registry = Arc::new(MetricsRegistry::new());
    let mut arm_proxy = ContentAwareProxy::start_with_config(
        TablePublisher::new(routing_table(&paths)),
        origins.iter().map(|o| o.addr()).collect(),
        Arc::clone(&arm_registry),
        ProxyConfig {
            workers: config.workers,
            prefork: 16,
            max_conns: max_arm_conns * 2,
            ..ProxyConfig::default()
        },
    )
    .unwrap();
    println!(
        "\nconnection scaling — {} event-loop workers, thread count fixed:",
        config.workers
    );
    let mut arms: Vec<ArmResult> = Vec::new();
    for spec in arm_specs {
        let arm = run_arm(arm_proxy.addr(), config.paths, spec);
        println!(
            "conns={:<6} pace={:<7} completed={:<7} reconnects={:<6} p50={:>8.1}us p99={:>8.1}us threads={}",
            arm.spec.connections,
            arm.spec
                .pace_ms
                .map_or("closed".to_string(), |ms| format!("{ms}ms")),
            arm.completed,
            arm.reconnects,
            us(arm.p50_ns),
            us(arm.p99_ns),
            arm.process_threads,
        );
        arms.push(arm);
    }
    let reactor_workers = arm_registry
        .snapshot()
        .gauge("reactor_workers")
        .unwrap_or(0);
    assert_eq!(
        reactor_workers, config.workers as i64,
        "worker thread count stays fixed at every connection count"
    );
    // The closed-loop arm saturates the CPU, so its tail is queueing
    // delay; the paced arms sleep between requests, so their tail is
    // wake-from-idle scheduling. The flat-p99 claim therefore compares
    // like with like: each big paced arm against the small paced arm,
    // leaving connection count as the only variable.
    let baseline = arms
        .iter()
        .rfind(|a| a.spec.connections <= 8 && a.spec.pace_ms.is_some())
        .unwrap_or(&arms[0]);
    let baseline_conns = baseline.spec.connections;
    let baseline_label = if baseline.spec.pace_ms.is_some() {
        "open-loop"
    } else {
        "closed-loop"
    };
    let baseline_p99 = baseline.p99_ns.max(1);
    for arm in arms.iter().filter(|a| a.spec.connections > baseline_conns) {
        println!(
            "  {} conns: p99 = {:.2}x the {}-conn {} baseline",
            arm.spec.connections,
            arm.p99_ns as f64 / baseline_p99 as f64,
            baseline_conns,
            baseline_label,
        );
    }
    arm_proxy.shutdown();

    if config.smoke {
        smoke_check(&proxy, &snapshot.histograms);
        println!("\nsmoke ok: all metric families present on both surfaces");
        controller.shutdown();
        return;
    }

    let histogram_json = |s: &HistogramSummary| {
        serde_json::json!({
            "count": s.count,
            "mean_ns": s.mean(),
            "p50_ns": s.p50,
            "p90_ns": s.p90,
            "p99_ns": s.p99,
            "max_ns": s.max,
        })
    };
    let mut histograms = serde_json::Map::new();
    for name in stages {
        let s = snapshot.histogram(name).expect(name);
        histograms.insert(name, histogram_json(s));
    }
    let report = serde_json::json!({
        "bench": "request_latency",
        "requests": total_requests,
        "clients": config.clients,
        "workers": config.workers,
        "paths": config.paths,
        "zipf_theta": ZIPF_THETA,
        "relayed": snapshot.counter("proxy_relayed_total"),
        "unroutable": snapshot.counter("proxy_unroutable_total"),
        "cache_hits": snapshot.counter("urltable_cache_hits_total"),
        "cache_misses": snapshot.counter("urltable_cache_misses_total"),
        "histograms": serde_json::Value::Object(histograms),
        "concurrency": {
            "workers": config.workers,
            "reactor_workers": reactor_workers,
            "baseline": {
                "connections": baseline_conns,
                "pace_ms": baseline.spec.pace_ms,
                "p99_ns": baseline_p99,
            },
            "baseline_p99_ns": baseline_p99,
            "arms": arms.iter().map(|a| serde_json::json!({
                "connections": a.spec.connections,
                "requests_per_conn": a.spec.requests_per_conn,
                "pace_ms": a.spec.pace_ms,
                "churn_every": a.spec.churn_every,
                "completed": a.completed,
                "reconnects": a.reconnects,
                "p50_ns": a.p50_ns,
                "p99_ns": a.p99_ns,
                "p99_vs_baseline": a.p99_ns as f64 / baseline_p99 as f64,
                "process_threads": a.process_threads,
            })).collect::<Vec<_>>(),
        },
        "tracing": {
            "untraced": {
                "mean_ns": untraced.mean_ns,
                "p50_ns": untraced.p50_ns,
                "p99_ns": untraced.p99_ns,
                "lookup_mean_ns": lookup_mean(0),
            },
            "traced": {
                "mean_ns": traced.mean_ns,
                "p50_ns": traced.p50_ns,
                "p99_ns": traced.p99_ns,
                "lookup_mean_ns": lookup_mean(1),
            },
            "mean_overhead_ratio": traced.mean_ns / untraced.mean_ns,
            "lookup_mean_overhead_ratio": lookup_mean(1) / lookup_mean(0),
        },
        "recorder": {
            "interval_ms": RECORD_INTERVAL.as_millis() as u64,
            "sampling_rounds": recorder_samples,
            "off": {
                "mean_ns": unrecorded.mean_ns,
                "p50_ns": unrecorded.p50_ns,
                "p99_ns": unrecorded.p99_ns,
            },
            "on": {
                "mean_ns": recorded.mean_ns,
                "p50_ns": recorded.p50_ns,
                "p99_ns": recorded.p99_ns,
            },
            "mean_overhead_ratio": recorded.mean_ns / unrecorded.mean_ns,
        },
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/request_latency.json",
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/request_latency.json");
    controller.shutdown();
}

/// The CI assertion pass: the Prometheus scrape must contain every
/// metric family, and the registry histograms must have recorded real
/// latencies on the hot path.
fn smoke_check(proxy: &ContentAwareProxy, histograms: &[(String, HistogramSummary)]) {
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    let scrape = client.get(METRICS_PATH).unwrap();
    assert_eq!(scrape.status, 200, "metrics endpoint answers");
    let text = String::from_utf8(scrape.body).unwrap();
    for required in [
        "proxy_relayed_total",
        "proxy_request_ns_count",
        "dispatch_requests_total",
        "urltable_lookup_ns",
        "urltable_memory_bytes",
        "mgmt_ops_total",
        "mgmt_op_ns_count",
    ] {
        assert!(
            text.contains(required),
            "{required} missing from metrics scrape"
        );
    }
    for (name, summary) in histograms {
        assert!(
            summary.p50 <= summary.p90 && summary.p90 <= summary.p99 && summary.p99 <= summary.max,
            "{name} percentiles ordered"
        );
    }
    let request = histograms
        .iter()
        .find(|(n, _)| n == "proxy_request_ns")
        .map(|(_, s)| s)
        .expect("request histogram present");
    assert!(
        request.count > 0 && request.max > 0,
        "hot path was measured"
    );
}
