//! Latency-vs-offered-load curves (open-loop Poisson arrivals).
//!
//! The paper reports closed-loop WebBench throughput; this companion
//! experiment shows the same placement comparison as response-time curves:
//! mean and p95 latency as offered load rises. The placement with the
//! larger usable capacity (partitioned + content-aware) keeps its knee
//! further to the right — the same Figure-2 story from the latency side.
//!
//! Run with: `cargo run --release -p cpms-bench --bin latency_curve`

use cpms_dispatch::{ContentAwareRouter, Router, WeightedLeastConnections};
use cpms_model::{NodeSpec, SimDuration};
use cpms_sim::{placement, SimConfig, Simulation};
use cpms_workload::{CorpusBuilder, WorkloadSpec};

struct Point {
    offered: f64,
    completed: f64,
    mean_ms: f64,
    p95_ms: f64,
}

fn run(mode: &str, rate: f64, corpus: &cpms_workload::Corpus, specs: &[NodeSpec]) -> Point {
    let (table, router): (_, Box<dyn Router>) = match mode {
        "full" => (
            placement::replicate_everywhere(corpus, specs.len()),
            Box::new(WeightedLeastConnections::new()),
        ),
        _ => (
            placement::partition_by_type(corpus, specs, placement::StaticSpread::AllNodes),
            Box::new(ContentAwareRouter::new(4096)),
        ),
    };
    let mut config = SimConfig::builder();
    config.nodes(specs.to_vec()).open_loop(rate).seed(7);
    let mut sim = Simulation::new(
        config.build(),
        corpus,
        table,
        router,
        &WorkloadSpec::workload_a(),
    );
    let report = sim.run(SimDuration::from_secs(10), SimDuration::from_secs(30));
    let static_class = report
        .class(cpms_model::RequestClass::Static)
        .expect("static traffic");
    Point {
        offered: rate,
        completed: report.throughput_rps(),
        mean_ms: report.mean_response_ms(),
        p95_ms: static_class.p95_response_ms,
    }
}

fn main() {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let specs = NodeSpec::paper_testbed();
    let rates = [200.0, 400.0, 600.0, 800.0, 1_000.0, 1_200.0];

    eprintln!("latency_curve: sweeping offered load (open loop)...");
    println!("Latency vs offered load (open-loop Poisson, Workload A)\n");
    println!(
        "{:>9} | {:>32} | {:>32}",
        "offered", "full replication + WLC", "partitioned + content-aware"
    );
    println!(
        "{:>9} | {:>10} {:>9} {:>10} | {:>10} {:>9} {:>10}",
        "rps", "served", "mean", "p95(stat)", "served", "mean", "p95(stat)"
    );
    println!("{}", "-".repeat(82));

    let mut rows = Vec::new();
    for &rate in &rates {
        let f = run("full", rate, &corpus, &specs);
        let p = run("part", rate, &corpus, &specs);
        println!(
            "{:>9.0} | {:>10.0} {:>7.1}ms {:>8.1}ms | {:>10.0} {:>7.1}ms {:>8.1}ms",
            rate, f.completed, f.mean_ms, f.p95_ms, p.completed, p.mean_ms, p.p95_ms
        );
        rows.push(serde_json::json!({
            "offered_rps": rate,
            "full": {"served": f.completed, "mean_ms": f.mean_ms, "p95_static_ms": f.p95_ms},
            "partitioned": {"served": p.completed, "mean_ms": p.mean_ms, "p95_static_ms": p.p95_ms},
        }));
        let _ = f.offered;
    }
    println!(
        "\nthe partitioned knee sits further right: it keeps serving the offered load\n\
         (and keeps latency flat) past the point where full replication saturates."
    );

    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/latency_curve.json",
        serde_json::to_string_pretty(&rows).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/latency_curve.json");
}
