//! Live-socket benchmark: the data plane over real TCP, WebBench-style.
//!
//! Three origin servers host a small partitioned site; closed-loop client
//! threads hammer (a) the content-aware proxy and (b) the content-blind
//! layer-4 proxy. The content-aware proxy serves everything; the L4 proxy
//! demonstrates §2.1's point — content-blind routing simply cannot serve a
//! partitioned site (it 404s whenever the round-robin lands wrong).
//!
//! Run with: `cargo run --release -p cpms-bench --bin livebench`

use cpms_httpd::client::HttpClient;
use cpms_httpd::{ContentAwareProxy, L4Proxy, OriginServer, SiteContent};
use cpms_model::{ContentId, ContentKind, NodeId};
use cpms_urltable::{UrlEntry, UrlTable};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const SECONDS: u64 = 3;
const PAGES_PER_NODE: usize = 40;

struct Site {
    origins: Vec<OriginServer>,
    table: UrlTable,
    paths: Vec<String>,
}

/// Builds three origins with strictly partitioned content plus the URL
/// table describing the layout.
fn build_site() -> Site {
    let mut origins = Vec::new();
    let mut table = UrlTable::new();
    let mut paths = Vec::new();
    let dirs = ["html", "img", "files"];
    for (node, dir) in dirs.iter().enumerate() {
        let mut site = SiteContent::new();
        for i in 0..PAGES_PER_NODE {
            let path = format!("/{dir}/f{i}.html");
            site.add_static(&path, vec![b'x'; 4 * 1024]);
            table
                .insert(
                    path.parse().expect("valid"),
                    UrlEntry::new(
                        ContentId((node * PAGES_PER_NODE + i) as u32),
                        ContentKind::StaticHtml,
                        4 * 1024,
                    )
                    .with_locations([NodeId(node as u16)]),
                )
                .expect("fresh");
            paths.push(path);
        }
        origins.push(OriginServer::start(NodeId(node as u16), site).expect("origin"));
    }
    Site {
        origins,
        table,
        paths,
    }
}

struct LoadResult {
    throughput_rps: f64,
    ok: u64,
    errors: u64,
}

/// Closed-loop client threads against `addr` for the duration.
fn drive(addr: SocketAddr, paths: &[String]) -> LoadResult {
    let stop = AtomicBool::new(false);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (stop, ok, errors) = (&stop, &ok, &errors);
            scope.spawn(move || {
                let Ok(mut client) = HttpClient::connect(addr) else {
                    return;
                };
                let mut i = c; // interleave paths across clients
                while !stop.load(Ordering::Relaxed) {
                    let path = &paths[i % paths.len()];
                    i += 1;
                    match client.get(path) {
                        Ok(resp) if resp.status == 200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_secs(SECONDS));
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = started.elapsed().as_secs_f64();
    LoadResult {
        throughput_rps: ok.load(Ordering::Relaxed) as f64 / elapsed,
        ok: ok.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    }
}

fn main() {
    println!(
        "live-socket benchmark: {CLIENTS} closed-loop clients x {SECONDS}s per proxy, \
         partitioned site over 3 origins\n"
    );

    // --- content-aware proxy
    let site = build_site();
    let backends: Vec<SocketAddr> = site.origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start(site.table, backends.clone(), 8).expect("proxy");
    let ca = drive(proxy.addr(), &site.paths);
    println!(
        "content-aware proxy:  {:>8.0} req/s   ok={} errors={} (unroutable={}, backend={})",
        ca.throughput_rps,
        ca.ok,
        ca.errors,
        proxy.unroutable(),
        proxy.backend_errors()
    );
    let served: Vec<u64> = site.origins.iter().map(|o| o.served()).collect();
    println!("  per-origin requests: {served:?} (each node serves exactly its partition)");
    drop(proxy);

    // --- L4 baseline on a fresh identical site
    let site = build_site();
    let backends: Vec<SocketAddr> = site.origins.iter().map(|o| o.addr()).collect();
    let l4 = L4Proxy::start(backends).expect("l4 proxy");
    let l4r = drive(l4.addr(), &site.paths);
    println!(
        "layer-4 round robin:  {:>8.0} req/s   ok={} errors={} (misroute 404s)",
        l4r.throughput_rps, l4r.ok, l4r.errors
    );
    let miss_rate = l4r.errors as f64 / (l4r.ok + l4r.errors).max(1) as f64;
    println!(
        "  miss rate {:.0}% — content-blind routing cannot honor partitioned placement",
        miss_rate * 100.0
    );

    let report = serde_json::json!({
        "clients": CLIENTS,
        "seconds": SECONDS,
        "content_aware": {
            "throughput_rps": ca.throughput_rps, "ok": ca.ok, "errors": ca.errors,
        },
        "l4_round_robin": {
            "throughput_rps": l4r.throughput_rps, "ok": l4r.ok, "errors": l4r.errors,
            "miss_rate": miss_rate,
        },
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/livebench.json",
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/livebench.json");
}
