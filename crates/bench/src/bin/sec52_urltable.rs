//! §5.2 — "Overhead of Content-Aware Routing" (the in-text table).
//!
//! The paper measured, on their live site: "Our Web site contains about
//! 8700 Web objects. In such scale, the memory consumed by the URL table
//! is about 260k bytes. During the peak load, the average lookup time is
//! about 4.32 µsecs, which is insignificant."
//!
//! This binary builds a URL table over the same-sized synthetic corpus,
//! reports its memory footprint, and measures the average lookup time
//! under a Zipf-skewed request stream — with and without the
//! recently-accessed-entry cache (the paper's demultiplexing speedup).
//!
//! Run with: `cargo run --release -p cpms-bench --bin sec52_urltable`

use cpms_model::UrlPath;
use cpms_sim::placement;
use cpms_urltable::{LookupCache, TableStats};
use cpms_workload::{CorpusBuilder, RequestSampler, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let table = placement::partition_by_type(
        &corpus,
        &cpms_model::NodeSpec::paper_testbed(),
        placement::StaticSpread::AllNodes,
    );
    let stats = TableStats::collect(&table);

    println!("§5.2 — URL table overhead (paper-scale site)\n");
    println!("objects in table:        {}", stats.entries);
    println!(
        "table memory:            {} bytes ({:.0} KB; paper: ~260 KB in C)",
        stats.memory_bytes,
        stats.memory_bytes as f64 / 1024.0
    );
    println!(
        "mean replication factor: {:.2}",
        stats.mean_replication_factor
    );

    // A Zipf-skewed lookup stream, like peak-load routing traffic.
    let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 3);
    let mut rng = StdRng::seed_from_u64(9);
    const LOOKUPS: usize = 1_000_000;
    let paths: Vec<UrlPath> = (0..LOOKUPS)
        .map(|_| corpus.get(sampler.sample_id(&mut rng)).path().clone())
        .collect();

    // Uncached lookups.
    let start = Instant::now();
    let mut found = 0usize;
    for path in &paths {
        if table.lookup(path).is_some() {
            found += 1;
        }
    }
    let uncached = start.elapsed();
    assert_eq!(found, LOOKUPS, "all corpus paths resolve");

    // Cached lookups (the paper's recently-accessed-entry cache).
    let mut cache = LookupCache::new(4096);
    // warm
    for path in paths.iter().take(100_000) {
        cache.lookup(&table, path);
    }
    let start = Instant::now();
    let mut cached_found = 0usize;
    for path in &paths {
        if cache.lookup(&table, path).is_some() {
            cached_found += 1;
        }
    }
    let cached = start.elapsed();
    assert_eq!(cached_found, LOOKUPS);

    let per = |d: std::time::Duration| d.as_nanos() as f64 / LOOKUPS as f64 / 1000.0;
    println!("\nlookups measured:        {LOOKUPS}");
    println!(
        "avg lookup (no cache):   {:.3} µs   (paper: ~4.32 µs on a 350 MHz CPU)",
        per(uncached)
    );
    println!(
        "avg lookup (cached):     {:.3} µs   cache hit rate {:.2}",
        per(cached),
        cache.hit_rate()
    );

    // --- ablation: directory-granular table (one default record per
    // content directory instead of one record per object)
    let mut compact = cpms_urltable::UrlTable::new();
    let mut dirs = std::collections::BTreeSet::new();
    for (_, item) in corpus.iter() {
        if let Some(parent) = item.path().parent() {
            dirs.insert(parent);
        }
    }
    for (i, dir) in dirs.iter().enumerate() {
        compact
            .set_dir_default(
                dir,
                cpms_urltable::UrlEntry::new(
                    cpms_model::ContentId(i as u32),
                    cpms_model::ContentKind::OtherStatic,
                    0,
                )
                .with_locations([cpms_model::NodeId((i % 9) as u16)]),
            )
            .expect("fresh directory");
    }
    let start = Instant::now();
    let mut resolved = 0usize;
    for path in &paths {
        if compact.lookup(path).is_some() {
            resolved += 1;
        }
    }
    let compact_time = start.elapsed();
    assert_eq!(
        resolved, LOOKUPS,
        "every path resolves via its directory default"
    );
    println!(
        "\nablation — directory-granular table: {} defaults (vs {} records), \
         {} bytes ({:.1}% of per-object), avg lookup {:.3} µs",
        compact.dir_default_count(),
        stats.entries,
        compact.memory_bytes(),
        compact.memory_bytes() as f64 / stats.memory_bytes as f64 * 100.0,
        per(compact_time)
    );

    let report = serde_json::json!({
        "compact_defaults": compact.dir_default_count(),
        "compact_memory_bytes": compact.memory_bytes(),
        "compact_avg_lookup_us": per(compact_time),
        "objects": stats.entries,
        "memory_bytes": stats.memory_bytes,
        "lookups": LOOKUPS,
        "avg_lookup_us_uncached": per(uncached),
        "avg_lookup_us_cached": per(cached),
        "cache_hit_rate": cache.hit_rate(),
        "paper_memory_bytes": 260_000,
        "paper_avg_lookup_us": 4.32,
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/sec52_urltable.json",
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/sec52_urltable.json");
}
