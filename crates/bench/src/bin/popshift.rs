//! §7 — "self-configure with respect to the change of content access
//! pattern".
//!
//! The cluster starts balanced (partial replication of the hot set). Then
//! the access pattern shifts: a previously cold slice of the corpus
//! becomes the new Zipf head (new content going viral). With the §3.3
//! loop running, the system sheds stale replicas and replicates the new
//! hot set; without it, the shifted load concentrates on whichever nodes
//! happen to host the new head.
//!
//! Run with: `cargo run --release -p cpms-bench --bin popshift`

use cpms_dispatch::ContentAwareRouter;
use cpms_mgmt::AutoReplicator;
use cpms_model::{LoadTracker, NodeSpec, SimDuration};
use cpms_sim::{placement, SimConfig, Simulation};
use cpms_workload::{CorpusBuilder, RequestSampler, WorkloadSpec};

const INTERVALS_BEFORE: u32 = 3;
const INTERVALS_AFTER: u32 = 6;

struct Row {
    label: &'static str,
    imbalance: f64,
    throughput: f64,
}

fn run(rebalance: bool) -> Vec<Row> {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let spec = WorkloadSpec::workload_a();
    let specs = vec![NodeSpec::testbed_350(); 6];
    let weights: Vec<f64> = specs.iter().map(NodeSpec::weight).collect();

    // Balanced start: partitioned + the initial hot set replicated.
    let mut table =
        placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes);
    placement::replicate_hot_content(&mut table, &corpus, &specs, 0.02, 2);

    let mut config = SimConfig::builder();
    config.nodes(specs.clone()).clients(64).seed(9);
    let mut sim = Simulation::new(
        config.build(),
        &corpus,
        table,
        Box::new(ContentAwareRouter::new(4096)),
        &spec,
    );
    let planner = AutoReplicator::new(0.15)
        .with_max_actions(24)
        .with_hot_candidates(12);
    let _ = sim.run_window(SimDuration::from_secs(5)); // warm-up

    let mut rows = Vec::new();
    let interval = |sim: &mut Simulation<'_>, label: &'static str, rebalance: bool| {
        let report = sim.run_window(SimDuration::from_secs(10));
        let mut tracker = LoadTracker::new(weights.clone());
        for s in &report.load_samples {
            tracker.record(*s);
        }
        let loads = tracker.node_loads();
        let avg = tracker.average_load();
        let max = loads.iter().map(|l| l.load).fold(0.0f64, f64::max);
        if rebalance {
            let actions = planner.plan(
                &tracker,
                sim.table(),
                |id| Some(corpus.get(id).path().clone()),
                |node, kind| specs[node.index()].can_serve_kind(kind),
            );
            AutoReplicator::apply_to_table(&actions, sim.table_mut());
        }
        Row {
            label,
            imbalance: if avg > 0.0 { max / avg } else { 0.0 },
            throughput: report.throughput_rps(),
        }
    };

    for _ in 0..INTERVALS_BEFORE {
        rows.push(interval(&mut sim, "before shift", rebalance));
    }
    // The shift: a cold slice of the corpus becomes the new Zipf head.
    sim.replace_sampler(RequestSampler::with_rotated_popularity(
        &corpus, &spec, 9, 4_000,
    ));
    for _ in 0..INTERVALS_AFTER {
        rows.push(interval(&mut sim, "after shift", rebalance));
    }
    rows
}

fn main() {
    eprintln!("popshift: shifting the hot set mid-run, with and without §3.3...");
    let without = run(false);
    let with = run(true);

    println!("§7 — adapting to a change of content access pattern\n");
    println!(
        "{:>9} {:>13} | {:>22} | {:>22}",
        "interval", "phase", "static placement", "with auto-replication"
    );
    println!(
        "{:>9} {:>13} | {:>10} {:>11} | {:>10} {:>11}",
        "", "", "imbalance", "rps", "imbalance", "rps"
    );
    println!("{}", "-".repeat(78));
    for i in 0..without.len() {
        println!(
            "{:>9} {:>13} | {:>10.2} {:>11.0} | {:>10.2} {:>11.0}",
            i + 1,
            without[i].label,
            without[i].imbalance,
            without[i].throughput,
            with[i].imbalance,
            with[i].throughput
        );
    }

    let post = INTERVALS_BEFORE as usize..without.len();
    let mean = |rows: &[Row], f: fn(&Row) -> f64| {
        rows[post.clone()].iter().map(f).sum::<f64>() / post.len() as f64
    };
    println!(
        "\npost-shift means: static imbalance {:.2} / {:.0} rps  vs  \
         auto-replication imbalance {:.2} / {:.0} rps",
        mean(&without, |r| r.imbalance),
        mean(&without, |r| r.throughput),
        mean(&with, |r| r.imbalance),
        mean(&with, |r| r.throughput),
    );
    println!(
        "auto-replication re-absorbs the shifted hot set: imbalance {:+.0}%, throughput {:+.0}%",
        (mean(&with, |r| r.imbalance) / mean(&without, |r| r.imbalance) - 1.0) * 100.0,
        (mean(&with, |r| r.throughput) / mean(&without, |r| r.throughput) - 1.0) * 100.0
    );

    let json = serde_json::json!({
        "without": without.iter().map(|r| serde_json::json!({
            "phase": r.label, "imbalance": r.imbalance, "throughput_rps": r.throughput,
        })).collect::<Vec<_>>(),
        "with": with.iter().map(|r| serde_json::json!({
            "phase": r.label, "imbalance": r.imbalance, "throughput_rps": r.throughput,
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/popshift.json",
        serde_json::to_string_pretty(&json).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/popshift.json");
}
