//! §3.3 — auto-replication behaviour (no figure number; the paper claims
//! the mechanism "could further ensure an even load distribution and
//! self-configure with respect to the change of content access pattern").
//!
//! Setup: a deliberately *bad* partition — each class's hottest objects
//! packed contiguously onto the first nodes, the way a naive
//! directory-based split lands when popularity is unknown. Then run the
//! cluster twice: once static, once with the auto-replication loop
//! planning and applying actions between intervals.
//!
//! Reported per interval: the paper's load metric `L_j` imbalance
//! (max/avg) and throughput. Expected shape: with auto-replication the
//! imbalance falls interval over interval and throughput rises; without
//! it both stay bad.
//!
//! Run with: `cargo run --release -p cpms-bench --bin autorep`

use cpms_dispatch::ContentAwareRouter;
use cpms_mgmt::AutoReplicator;
use cpms_model::{LoadTracker, NodeId, NodeSpec, RequestClass, SimDuration};
use cpms_sim::{SimConfig, Simulation};
use cpms_urltable::{UrlEntry, UrlTable};
use cpms_workload::{Corpus, CorpusBuilder, WorkloadSpec};

/// The naive skewed partition: class ids are hottest-first, so contiguous
/// chunks put all the hot content on the first node of each chunk range.
fn skewed_partition(corpus: &Corpus, nodes: usize) -> UrlTable {
    let mut table = UrlTable::new();
    for class in RequestClass::ALL {
        let ids = corpus.class_ids(class);
        for (rank, &id) in ids.iter().enumerate() {
            let node = NodeId((rank * nodes / ids.len().max(1)) as u16);
            let item = corpus.get(id);
            table
                .insert(
                    item.path().clone(),
                    UrlEntry::new(id, item.kind(), item.size_bytes()).with_locations([node]),
                )
                .expect("corpus paths unique");
        }
    }
    table
}

struct IntervalRow {
    imbalance: f64,
    throughput: f64,
}

/// Which interval load metric drives the planner.
#[derive(Clone, Copy, PartialEq)]
enum Metric {
    /// No rebalancing at all.
    None,
    /// The paper's §3.3 metric: per-kind constants × processing time ×
    /// frequency / weight.
    Paper,
    /// A naive metric: request count / weight (every request weighs the
    /// same) — the ablation for the paper's "heuristic constants that make
    /// intuitive sense".
    NaiveCount,
}

fn run(metric: Metric, intervals: u32) -> Vec<IntervalRow> {
    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let specs = vec![NodeSpec::testbed_350(); 6];
    let weights: Vec<f64> = specs.iter().map(NodeSpec::weight).collect();
    let table = skewed_partition(&corpus, specs.len());
    let mut config = SimConfig::builder();
    config.nodes(specs.clone()).clients(64).seed(5);
    let mut sim = Simulation::new(
        config.build(),
        &corpus,
        table,
        Box::new(ContentAwareRouter::new(4096)),
        &WorkloadSpec::workload_a(),
    );
    let planner = AutoReplicator::new(0.15)
        .with_max_actions(32)
        .with_hot_candidates(16);

    let _ = sim.run_window(SimDuration::from_secs(5)); // warm-up
    let mut rows = Vec::new();
    for _ in 0..intervals {
        let report = sim.run_window(SimDuration::from_secs(10));
        let mut tracker = LoadTracker::new(weights.clone());
        for s in &report.load_samples {
            tracker.record(*s);
        }
        let loads = tracker.node_loads();
        let avg = tracker.average_load();
        let max = loads.iter().map(|l| l.load).fold(0.0f64, f64::max);
        rows.push(IntervalRow {
            imbalance: if avg > 0.0 { max / avg } else { 0.0 },
            throughput: report.throughput_rps(),
        });
        if metric != Metric::None {
            // The planner consumes whichever tracker variant the metric
            // prescribes; imbalance above is always reported with the
            // paper metric so the rows are comparable.
            let planning_tracker = match metric {
                Metric::Paper => tracker,
                Metric::NaiveCount => {
                    let mut naive = LoadTracker::new(weights.clone());
                    for s in &report.load_samples {
                        naive.record(cpms_model::LoadSample {
                            kind: cpms_model::ContentKind::StaticHtml,
                            processing_time: SimDuration::from_millis(10),
                            ..*s
                        });
                    }
                    naive
                }
                Metric::None => unreachable!("guarded above"),
            };
            let actions = planner.plan(
                &planning_tracker,
                sim.table(),
                |id| Some(corpus.get(id).path().clone()),
                |node, kind| specs[node.index()].can_serve_kind(kind),
            );
            AutoReplicator::apply_to_table(&actions, sim.table_mut());
        }
    }
    rows
}

fn main() {
    const INTERVALS: u32 = 8;
    eprintln!("autorep: running skewed cluster with and without auto-replication...");
    let without = run(Metric::None, INTERVALS);
    let with = run(Metric::Paper, INTERVALS);
    let naive = run(Metric::NaiveCount, INTERVALS);

    println!("§3.3 — auto-replication on a deliberately skewed partition\n");
    println!(
        "{:>9} | {:>24} | {:>24}",
        "interval", "static (no rebalance)", "with auto-replication"
    );
    println!(
        "{:>9} | {:>12} {:>11} | {:>12} {:>11}",
        "", "imbalance", "rps", "imbalance", "rps"
    );
    println!("{}", "-".repeat(64));
    for i in 0..INTERVALS as usize {
        println!(
            "{:>9} | {:>12.2} {:>11.0} | {:>12.2} {:>11.0}",
            i + 1,
            without[i].imbalance,
            without[i].throughput,
            with[i].imbalance,
            with[i].throughput
        );
    }

    let last = INTERVALS as usize - 1;
    println!(
        "\nfinal imbalance (max L_j / avg): {:.2} -> {:.2}",
        without[last].imbalance, with[last].imbalance
    );
    println!(
        "final throughput: {:.0} -> {:.0} rps ({:+.0}%)",
        without[last].throughput,
        with[last].throughput,
        (with[last].throughput / without[last].throughput - 1.0) * 100.0
    );

    // Ablation: the paper's weighted metric vs naive request counting.
    println!(
        "\nload-metric ablation (final interval): paper metric {:.0} rps vs naive count {:.0} rps",
        with[last].throughput, naive[last].throughput
    );
    println!(
        "imbalance: paper {:.2} vs naive {:.2}",
        with[last].imbalance, naive[last].imbalance
    );

    let report = serde_json::json!({
        "intervals": INTERVALS,
        "naive": naive.iter().map(|r| serde_json::json!({
            "imbalance": r.imbalance, "throughput_rps": r.throughput,
        })).collect::<Vec<_>>(),
        "without": without.iter().map(|r| serde_json::json!({
            "imbalance": r.imbalance, "throughput_rps": r.throughput,
        })).collect::<Vec<_>>(),
        "with": with.iter().map(|r| serde_json::json!({
            "imbalance": r.imbalance, "throughput_rps": r.throughput,
        })).collect::<Vec<_>>(),
    });
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(
        "bench_results/autorep.json",
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write results");
    eprintln!("wrote bench_results/autorep.json");
}
