//! Figure 2 — "Benefit of content partition (Workload A)".
//!
//! Reproduces the first experiment of §5.3: WebBench Workload A (static
//! content) against three configurations of the nine-machine testbed:
//!
//! 1. full replication behind the layer-4 WLC connection router,
//! 2. everything on a shared NFS server behind the same router,
//! 3. the document set partitioned by content type behind the
//!    content-aware distributor.
//!
//! The paper's qualitative result to match: NFS performs very poorly
//! (the server becomes the bottleneck), and partitioning beats full
//! replication because smaller per-node working sets raise memory-cache
//! hit rates.
//!
//! Run with: `cargo run --release -p cpms-bench --bin fig2`

use cpms_core::prelude::*;
use cpms_core::report::render_throughput_table;

fn main() {
    let clients: Vec<u32> = vec![8, 16, 32, 48, 64, 96, 120];
    let base = || {
        Experiment::builder()
            .corpus_objects(8_700)
            .nodes(NodeSpec::paper_testbed())
            .workload(WorkloadKind::A)
            .windows(SimDuration::from_secs(10), SimDuration::from_secs(30))
            .seed(7)
    };

    eprintln!(
        "fig2: sweeping {} client counts x 3 configurations...",
        clients.len()
    );

    let full = base()
        .placement(PlacementPolicy::FullReplication)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);
    let nfs = base()
        .placement(PlacementPolicy::SharedNfs)
        .router(RouterChoice::WeightedLeastConnections)
        .build()
        .sweep_clients(&clients);
    let partitioned = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .build()
        .sweep_clients(&clients);

    let series = vec![
        FigureSeries::from_results("(1) full replication + L4 WLC", &full),
        FigureSeries::from_results("(2) shared NFS + L4 WLC", &nfs),
        FigureSeries::from_results("(3) partitioned + content-aware", &partitioned),
    ];

    println!("Figure 2 — Benefit of content partition (Workload A)\n");
    println!("{}", render_throughput_table(&series));

    let sat: Vec<f64> = series
        .iter()
        .map(FigureSeries::saturated_throughput)
        .collect();
    println!(
        "at saturation ({} clients):",
        clients.last().expect("nonempty")
    );
    println!(
        "  partitioned / full-replication = {:.2}x   (paper: consistently greater)",
        sat[2] / sat[0]
    );
    println!(
        "  partitioned / shared-NFS       = {:.2}x   (paper: NFS performs very poorly)",
        sat[2] / sat[1]
    );

    let json = serde_json::to_string_pretty(&series).expect("series serialize");
    let path = "bench_results/fig2.json";
    std::fs::create_dir_all("bench_results").expect("create bench_results dir");
    std::fs::write(path, json).expect("write results");
    eprintln!("wrote {path}");
}
