//! FIFO resource stations.
//!
//! Every modelled hardware resource (CPU, disk, NIC, the dispatcher) is a
//! single-server FIFO queue: a job arriving at time `a` with service
//! demand `s` starts at `max(a, next_free)` and completes `s` later. The
//! global event loop processes arrivals in time order, which preserves
//! per-station FIFO semantics.

use cpms_model::{SimDuration, SimTime};

/// A single-server FIFO queueing station with utilization accounting.
#[derive(Debug, Clone, Default)]
pub struct Station {
    next_free: SimTime,
    busy: SimDuration,
    jobs: u64,
}

impl Station {
    /// Creates an idle station.
    pub fn new() -> Self {
        Station::default()
    }

    /// Enqueues a job arriving at `arrival` with the given `service`
    /// demand; returns its completion time.
    pub fn schedule(&mut self, arrival: SimTime, service: SimDuration) -> SimTime {
        let start = arrival.max(self.next_free);
        let completion = start + service;
        self.next_free = completion;
        self.busy += service;
        self.jobs += 1;
        completion
    }

    /// When the station next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total service time delivered.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over an observation window of length `elapsed`
    /// (clamped to 1.0; a saturated station can have queued work beyond
    /// the window).
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            0.0
        } else {
            (self.busy.as_secs_f64() / elapsed.as_secs_f64()).min(1.0)
        }
    }

    /// Clears accumulated accounting (busy time, job count) but keeps the
    /// queue state (`next_free`), for per-interval reporting.
    pub fn reset_accounting(&mut self) {
        self.busy = SimDuration::ZERO;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_station_starts_immediately() {
        let mut s = Station::new();
        let done = s.schedule(SimTime::from_micros(100), SimDuration::from_micros(50));
        assert_eq!(done, SimTime::from_micros(150));
        assert_eq!(s.jobs(), 1);
    }

    #[test]
    fn busy_station_queues_fifo() {
        let mut s = Station::new();
        let d1 = s.schedule(SimTime::from_micros(0), SimDuration::from_micros(100));
        // second job arrives while the first is in service
        let d2 = s.schedule(SimTime::from_micros(10), SimDuration::from_micros(100));
        assert_eq!(d1, SimTime::from_micros(100));
        assert_eq!(d2, SimTime::from_micros(200), "waits for the first job");
        // a later job after an idle gap starts at its arrival
        let d3 = s.schedule(SimTime::from_micros(500), SimDuration::from_micros(10));
        assert_eq!(d3, SimTime::from_micros(510));
    }

    #[test]
    fn utilization_accounting() {
        let mut s = Station::new();
        s.schedule(SimTime::ZERO, SimDuration::from_micros(300));
        s.schedule(SimTime::from_micros(600), SimDuration::from_micros(100));
        assert_eq!(s.busy_time(), SimDuration::from_micros(400));
        let u = s.utilization(SimDuration::from_micros(1_000));
        assert!((u - 0.4).abs() < 1e-9);
        assert_eq!(s.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn utilization_clamped_at_one() {
        let mut s = Station::new();
        for _ in 0..100 {
            s.schedule(SimTime::ZERO, SimDuration::from_micros(100));
        }
        assert_eq!(s.utilization(SimDuration::from_micros(1_000)), 1.0);
    }

    #[test]
    fn reset_keeps_queue_state() {
        let mut s = Station::new();
        s.schedule(SimTime::ZERO, SimDuration::from_millis(10));
        s.reset_accounting();
        assert_eq!(s.busy_time(), SimDuration::ZERO);
        assert_eq!(s.jobs(), 0);
        // queue backlog survives the reset
        let done = s.schedule(SimTime::ZERO, SimDuration::from_micros(1));
        assert_eq!(done, SimTime::from_millis(10) + SimDuration::from_micros(1));
    }
}
