//! The service-time model: how long each step of serving a request takes
//! on 1999-era hardware.
//!
//! Reference figures are for the paper's fastest machine (350 MHz); CPU
//! costs scale inversely with a node's clock ratio. Dynamic-content
//! execution times follow Iyengar et al.'s observation (the paper's \[6\])
//! that CGI requests "normally require much more computing resources than
//! static file retrieval requests" — tens of milliseconds versus a
//! millisecond-scale parse.

use cpms_model::{ContentId, ContentKind, SimDuration};
use serde::{Deserialize, Serialize};

/// Tunable service-time parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Per-request HTTP processing (accept, parse, syscalls, logging) on
    /// the reference 350 MHz CPU.
    pub parse_overhead_ref: SimDuration,
    /// CGI execution time range on the reference CPU (fork + exec + run).
    pub cgi_exec_ref: (SimDuration, SimDuration),
    /// ASP execution time range on the reference CPU (in-process, cheaper
    /// than CGI).
    pub asp_exec_ref: (SimDuration, SimDuration),
    /// One-way LAN latency between any two machines (switched fast
    /// ethernet).
    pub lan_latency: SimDuration,
    /// Fraction of a node's RAM usable as file cache.
    pub cache_fraction: f64,
    /// Files larger than `cache_capacity × cache_bypass_fraction` are not
    /// inserted into the cache (they would churn the whole cache for one
    /// sequential read).
    pub cache_bypass_fraction: f64,
    /// Average number of disk positioning operations per cold file read
    /// (directory + inode + data on a late-90s filesystem with no entry
    /// cached).
    pub disk_seeks_per_file: f64,
    /// Distributor relay cost per KB of response relayed through it
    /// (header rewriting at kernel level).
    pub relay_per_kb: SimDuration,
    /// Fixed NFS RPC processing cost at the NFS server per fetch.
    pub nfs_rpc_overhead: SimDuration,
}

impl ServiceModel {
    /// Defaults calibrated to late-90s measurements (Apache on a 350 MHz
    /// Pentium II served roughly 500–700 small cached files per second;
    /// CGI scripts took tens of milliseconds).
    pub fn paper_defaults() -> Self {
        ServiceModel {
            parse_overhead_ref: SimDuration::from_micros(1_500),
            cgi_exec_ref: (SimDuration::from_millis(6), SimDuration::from_millis(20)),
            asp_exec_ref: (SimDuration::from_millis(4), SimDuration::from_millis(12)),
            lan_latency: SimDuration::from_micros(200),
            cache_fraction: 0.5,
            cache_bypass_fraction: 0.25,
            disk_seeks_per_file: 2.0,
            relay_per_kb: SimDuration::from_micros(4),
            nfs_rpc_overhead: SimDuration::from_micros(1_200),
        }
    }

    /// CPU time to accept/parse/respond on a node with the given CPU ratio.
    pub fn parse_time(&self, cpu_ratio: f64) -> SimDuration {
        self.parse_overhead_ref.mul_f64(1.0 / cpu_ratio)
    }

    /// Execution time of a dynamic request for `content` on a node with
    /// the given CPU ratio. Deterministic per object: the same script
    /// always costs the same on the same machine.
    ///
    /// Returns zero for static kinds.
    pub fn exec_time(&self, kind: ContentKind, content: ContentId, cpu_ratio: f64) -> SimDuration {
        let (lo, hi) = match kind {
            ContentKind::Cgi => self.cgi_exec_ref,
            ContentKind::Asp => self.asp_exec_ref,
            _ => return SimDuration::ZERO,
        };
        let span = hi.as_micros().saturating_sub(lo.as_micros());
        // splitmix64 of the content id: a stable per-script cost.
        let h = splitmix64(content.0 as u64 ^ 0x9E37_79B9_7F4A_7C15);
        let offset = if span == 0 { 0 } else { h % (span + 1) };
        SimDuration::from_micros(lo.as_micros() + offset).mul_f64(1.0 / cpu_ratio)
    }

    /// Whether a file of `size` bytes should be inserted into a cache of
    /// `capacity` bytes.
    pub fn cacheable(&self, size: u64, capacity: u64) -> bool {
        (size as f64) <= capacity as f64 * self.cache_bypass_fraction
    }

    /// The distributor's relay cost for a response of `size` bytes.
    pub fn relay_cost(&self, size: u64) -> SimDuration {
        self.relay_per_kb.mul_f64(size as f64 / 1024.0)
    }
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel::paper_defaults()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_time_scales_with_cpu() {
        let m = ServiceModel::paper_defaults();
        let fast = m.parse_time(1.0);
        let slow = m.parse_time(150.0 / 350.0);
        assert_eq!(fast, SimDuration::from_micros(1_500));
        assert!(slow > fast.mul_f64(2.0), "150 MHz is >2x slower");
    }

    #[test]
    fn exec_time_deterministic_and_in_range() {
        let m = ServiceModel::paper_defaults();
        for id in 0..200u32 {
            let t = m.exec_time(ContentKind::Cgi, ContentId(id), 1.0);
            assert!(t >= m.cgi_exec_ref.0 && t <= m.cgi_exec_ref.1, "{t}");
            assert_eq!(t, m.exec_time(ContentKind::Cgi, ContentId(id), 1.0));
        }
    }

    #[test]
    fn exec_time_varies_across_objects() {
        let m = ServiceModel::paper_defaults();
        let times: std::collections::HashSet<u64> = (0..50u32)
            .map(|id| {
                m.exec_time(ContentKind::Cgi, ContentId(id), 1.0)
                    .as_micros()
            })
            .collect();
        assert!(times.len() > 20, "per-script costs should be diverse");
    }

    #[test]
    fn asp_cheaper_than_cgi_on_average() {
        let m = ServiceModel::paper_defaults();
        let mean = |kind| {
            (0..500u32)
                .map(|id| m.exec_time(kind, ContentId(id), 1.0).as_micros())
                .sum::<u64>() as f64
                / 500.0
        };
        assert!(mean(ContentKind::Asp) < mean(ContentKind::Cgi));
    }

    #[test]
    fn static_kinds_have_zero_exec() {
        let m = ServiceModel::paper_defaults();
        assert_eq!(
            m.exec_time(ContentKind::StaticHtml, ContentId(1), 1.0),
            SimDuration::ZERO
        );
        assert_eq!(
            m.exec_time(ContentKind::Video, ContentId(1), 1.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn slow_cpu_inflates_exec() {
        let m = ServiceModel::paper_defaults();
        let ref_t = m.exec_time(ContentKind::Cgi, ContentId(7), 1.0);
        let slow_t = m.exec_time(ContentKind::Cgi, ContentId(7), 150.0 / 350.0);
        let ratio = slow_t.as_micros() as f64 / ref_t.as_micros() as f64;
        assert!((ratio - 350.0 / 150.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn cacheability_threshold() {
        let m = ServiceModel::paper_defaults();
        let cap = 100 << 20; // 100 MB cache
        assert!(m.cacheable(10 << 20, cap)); // 10 MB file: ok (≤ 25 MB)
        assert!(!m.cacheable(30 << 20, cap)); // 30 MB file: bypass
    }

    #[test]
    fn relay_cost_linear_in_size() {
        let m = ServiceModel::paper_defaults();
        let small = m.relay_cost(1024);
        let big = m.relay_cost(10 * 1024);
        assert_eq!(small, SimDuration::from_micros(4));
        assert_eq!(big, SimDuration::from_micros(40));
    }
}
