//! Per-node resource models.

use crate::service::ServiceModel;
use crate::station::Station;
use cpms_model::{ContentId, NodeSpec, SimDuration};
use cpms_urltable::lru::LruCache;

/// One simulated back-end server: CPU, disk, NIC stations plus a
/// byte-capacity LRU file cache derived from the node's RAM.
#[derive(Debug)]
pub struct SimNode {
    spec: NodeSpec,
    /// HTTP processing and dynamic-content execution.
    pub cpu: Station,
    /// Local file reads.
    pub disk: Station,
    /// Response transmission.
    pub nic: Station,
    cache: LruCache<ContentId, ()>,
    cache_capacity: u64,
    window_hits_base: u64,
    window_misses_base: u64,
}

/// Transfer granule for disk and NIC service: large files are moved in
/// chunks of this size so concurrent short requests interleave with long
/// transfers, approximating TCP/OS fair sharing instead of head-of-line
/// blocking a 12 MB video behind the whole queue.
pub const TRANSFER_CHUNK_BYTES: u64 = 64 * 1024;

impl SimNode {
    /// Creates a node from its hardware spec, sizing the file cache as
    /// `service.cache_fraction` of RAM.
    pub fn new(spec: NodeSpec, service: &ServiceModel) -> Self {
        let cache_capacity = (spec.mem_bytes() as f64 * service.cache_fraction) as u64;
        SimNode {
            spec,
            cpu: Station::new(),
            disk: Station::new(),
            nic: Station::new(),
            cache: LruCache::new(cache_capacity),
            cache_capacity,
            window_hits_base: 0,
            window_misses_base: 0,
        }
    }

    /// The node's hardware description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// File-cache capacity in bytes.
    pub fn cache_capacity(&self) -> u64 {
        self.cache_capacity
    }

    /// Checks the file cache for `content`, updating recency and hit/miss
    /// statistics.
    pub fn cache_lookup(&mut self, content: ContentId) -> bool {
        self.cache.get(&content).is_some()
    }

    /// Inserts `content` (of `size` bytes) into the cache if the service
    /// model deems it cacheable.
    pub fn cache_insert(&mut self, content: ContentId, size: u64, service: &ServiceModel) {
        if service.cacheable(size, self.cache_capacity) {
            self.cache.insert(content, (), size);
        }
    }

    /// Drops a content object from the cache (management delete/offload).
    pub fn cache_evict(&mut self, content: ContentId) {
        self.cache.remove(&content);
    }

    /// The cache hit rate observed so far (lifetime).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// The cache hit rate since the last call to this method (per
    /// measurement window), then resets the window baseline.
    pub fn window_cache_hit_rate(&mut self) -> f64 {
        let hits = self.cache.hits() - self.window_hits_base;
        let misses = self.cache.misses() - self.window_misses_base;
        self.window_hits_base = self.cache.hits();
        self.window_misses_base = self.cache.misses();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Disk time to read `size` bytes: positioning + sequential transfer.
    pub fn disk_time(&self, size: u64) -> SimDuration {
        let seek = SimDuration::from_micros(self.spec.disk().seek_micros());
        let transfer = SimDuration::from_secs_f64(
            size as f64 / self.spec.disk().bandwidth_bytes_per_sec() as f64,
        );
        seek + transfer
    }

    /// Disk time for one transfer chunk: the first chunk of a file pays the
    /// positioning cost (scaled by the service model's seeks-per-file),
    /// sequential continuation chunks only the transfer.
    pub fn disk_chunk_time(&self, chunk: u64, first: bool, service: &ServiceModel) -> SimDuration {
        let transfer = SimDuration::from_secs_f64(
            chunk as f64 / self.spec.disk().bandwidth_bytes_per_sec() as f64,
        );
        if first {
            SimDuration::from_micros(self.spec.disk().seek_micros())
                .mul_f64(service.disk_seeks_per_file)
                + transfer
        } else {
            transfer
        }
    }

    /// NIC time to transmit `size` bytes.
    pub fn nic_time(&self, size: u64) -> SimDuration {
        SimDuration::from_secs_f64(size as f64 * 8.0 / self.spec.nic_bits_per_sec() as f64)
    }

    /// CPU time for request parse/response overhead on this node.
    pub fn parse_time(&self, service: &ServiceModel) -> SimDuration {
        service.parse_time(self.spec.cpu_ratio())
    }

    /// CPU time to execute dynamic content on this node.
    pub fn exec_time(
        &self,
        kind: cpms_model::ContentKind,
        content: ContentId,
        service: &ServiceModel,
    ) -> SimDuration {
        service.exec_time(kind, content, self.spec.cpu_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::ContentKind;

    fn node() -> SimNode {
        SimNode::new(NodeSpec::testbed_350(), &ServiceModel::paper_defaults())
    }

    #[test]
    fn cache_capacity_is_fraction_of_ram() {
        let n = node();
        let expected = (128u64 << 20) as f64 * 0.5;
        assert_eq!(n.cache_capacity(), expected as u64);
    }

    #[test]
    fn cache_hit_after_insert() {
        let svc = ServiceModel::paper_defaults();
        let mut n = node();
        assert!(!n.cache_lookup(ContentId(1)));
        n.cache_insert(ContentId(1), 4096, &svc);
        assert!(n.cache_lookup(ContentId(1)));
        n.cache_evict(ContentId(1));
        assert!(!n.cache_lookup(ContentId(1)));
    }

    #[test]
    fn huge_files_bypass_cache() {
        let svc = ServiceModel::paper_defaults();
        let mut n = node();
        let huge = n.cache_capacity(); // > 25% of capacity
        n.cache_insert(ContentId(2), huge, &svc);
        assert!(!n.cache_lookup(ContentId(2)));
    }

    #[test]
    fn disk_time_includes_seek_and_transfer() {
        let n = node(); // SCSI: 9ms seek, 15 MB/s
        let t = n.disk_time(15 * 1024 * 1024);
        // 9 ms + 1 s
        assert!((t.as_secs_f64() - 1.009).abs() < 0.001, "{t}");
        let ide = SimNode::new(NodeSpec::testbed_150(), &ServiceModel::paper_defaults());
        assert!(ide.disk_time(1 << 20) > n.disk_time(1 << 20));
    }

    #[test]
    fn nic_time_at_100mbps() {
        let n = node();
        // 12.5 MB at 100 Mbps = 1 s
        let t = n.nic_time(12_500_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.001);
    }

    #[test]
    fn slow_node_parses_slower() {
        let svc = ServiceModel::paper_defaults();
        let fast = node();
        let slow = SimNode::new(NodeSpec::testbed_150(), &svc);
        assert!(slow.parse_time(&svc) > fast.parse_time(&svc));
        assert!(
            slow.exec_time(ContentKind::Cgi, ContentId(3), &svc)
                > fast.exec_time(ContentKind::Cgi, ContentId(3), &svc)
        );
    }
}
