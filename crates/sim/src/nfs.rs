//! The shared NFS file-server model (configuration 2 of §5.3).
//!
//! Under the shared-filesystem placement every web node fetches file data
//! from one NFS server over the LAN. The model captures the two costs the
//! paper blames for configuration 2's poor showing: per-request RPC +
//! remote transfer latency, and the NFS server's single disk and NIC as a
//! convoy bottleneck shared by the whole cluster.

use crate::service::ServiceModel;
use crate::station::Station;
use cpms_model::{ContentId, NodeSpec, SimDuration, SimTime};
use cpms_urltable::lru::LruCache;

/// The simulated NFS server.
#[derive(Debug)]
pub struct NfsServer {
    spec: NodeSpec,
    /// The server's disk (shared by every web node's misses).
    pub disk: Station,
    /// The server's NIC (every fetched byte crosses it).
    pub nic: Station,
    cache: LruCache<ContentId, ()>,
    fetches: u64,
}

impl NfsServer {
    /// Creates an NFS server from a hardware spec (its RAM acts as the
    /// server-side buffer cache).
    pub fn new(spec: NodeSpec, service: &ServiceModel) -> Self {
        let cache_capacity = (spec.mem_bytes() as f64 * service.cache_fraction) as u64;
        NfsServer {
            spec,
            disk: Station::new(),
            nic: Station::new(),
            cache: LruCache::new(cache_capacity),
            fetches: 0,
        }
    }

    /// The server's hardware description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Total remote fetches served.
    pub fn fetches(&self) -> u64 {
        self.fetches
    }

    /// Server-side buffer-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Services a remote fetch of `content` (`size` bytes) arriving at the
    /// server at time `arrival`; returns when the last byte leaves the
    /// server's NIC.
    ///
    /// Path: RPC processing, then (on buffer-cache miss) a disk read, then
    /// the transfer over the server NIC. The caller adds LAN latency on
    /// both sides.
    pub fn fetch(
        &mut self,
        content: ContentId,
        size: u64,
        arrival: SimTime,
        service: &ServiceModel,
    ) -> SimTime {
        self.fetches += 1;
        let after_rpc = arrival + service.nfs_rpc_overhead;
        let data_ready = if self.cache.get(&content).is_some() {
            after_rpc
        } else {
            let seek = SimDuration::from_micros(self.spec.disk().seek_micros());
            let transfer = SimDuration::from_secs_f64(
                size as f64 / self.spec.disk().bandwidth_bytes_per_sec() as f64,
            );
            let done = self.disk.schedule(after_rpc, seek + transfer);
            if service.cacheable(size, self.cache.capacity()) {
                self.cache.insert(content, (), size);
            }
            done
        };
        let nic_time =
            SimDuration::from_secs_f64(size as f64 * 8.0 / self.spec.nic_bits_per_sec() as f64);
        self.nic.schedule(data_ready, nic_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> NfsServer {
        NfsServer::new(NodeSpec::testbed_350(), &ServiceModel::paper_defaults())
    }

    #[test]
    fn first_fetch_pays_disk_second_hits_cache() {
        let svc = ServiceModel::paper_defaults();
        let mut s = server();
        let t1 = s.fetch(ContentId(1), 10_000, SimTime::ZERO, &svc);
        // serve again much later (no queueing): should be faster (no disk)
        let later = SimTime::from_secs(10);
        let t2 = s.fetch(ContentId(1), 10_000, later, &svc);
        let first_cost = t1.duration_since(SimTime::ZERO);
        let second_cost = t2.duration_since(later);
        assert!(second_cost < first_cost, "{second_cost} < {first_cost}");
        assert_eq!(s.fetches(), 2);
    }

    #[test]
    fn concurrent_fetches_queue_on_shared_disk() {
        let svc = ServiceModel::paper_defaults();
        let mut s = server();
        // two different objects arriving simultaneously: second waits for
        // the first's disk read.
        let t1 = s.fetch(ContentId(1), 1 << 20, SimTime::ZERO, &svc);
        let t2 = s.fetch(ContentId(2), 1 << 20, SimTime::ZERO, &svc);
        assert!(t2 > t1, "shared disk serializes misses");
    }

    #[test]
    fn fetch_time_scales_with_size() {
        let svc = ServiceModel::paper_defaults();
        let mut s = server();
        let small = s
            .fetch(ContentId(1), 1_000, SimTime::ZERO, &svc)
            .duration_since(SimTime::ZERO);
        let mut s2 = server();
        let big = s2
            .fetch(ContentId(2), 1 << 20, SimTime::ZERO, &svc)
            .duration_since(SimTime::ZERO);
        assert!(big > small);
    }
}
