//! # cpms-sim
//!
//! A discrete-event simulator for heterogeneous clustered web servers —
//! the substrate this reproduction uses in place of the paper's physical
//! 1999 testbed (nine PCs, 100 Mbps fast ethernet, WebBench load
//! generators).
//!
//! Modelled, per back-end node:
//!
//! - a **CPU** station (HTTP parsing plus CGI/ASP execution, scaled by the
//!   node's clock relative to the 350 MHz reference machine),
//! - a **disk** station (seek + transfer at IDE/SCSI rates),
//! - a byte-capacity **LRU memory cache** (the mechanism behind Figure 2's
//!   result: partitioning shrinks per-node working sets and raises hit
//!   rates),
//! - a **NIC** station (100 Mbps transfer of every response byte).
//!
//! Plus cluster-level components: the **dispatcher** as a serial station
//! (routing decision + relay overhead per request), an optional **NFS
//! server** (shared disk + NIC; configuration 2 of §5.3), a fixed-latency
//! LAN, and a population of **closed-loop clients** (WebBench semantics:
//! issue, wait for the full response, think, repeat).
//!
//! # Example
//!
//! ```
//! use cpms_sim::{SimConfig, Simulation};
//! use cpms_dispatch::WeightedLeastConnections;
//! use cpms_model::{NodeSpec, SimDuration};
//! use cpms_workload::{CorpusBuilder, WorkloadSpec};
//!
//! let corpus = CorpusBuilder::small_site().seed(1).build();
//! let table = cpms_sim::placement::replicate_everywhere(&corpus, 3);
//! let config = SimConfig::builder()
//!     .nodes(vec![NodeSpec::testbed_350(); 3])
//!     .clients(8)
//!     .seed(7)
//!     .build();
//! let mut sim = Simulation::new(
//!     config,
//!     &corpus,
//!     table,
//!     Box::new(WeightedLeastConnections::new()),
//!     &WorkloadSpec::workload_a(),
//! );
//! let report = sim.run(SimDuration::from_secs(2), SimDuration::from_secs(10));
//! assert!(report.throughput_rps() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod nfs;
pub mod node;
pub mod placement;
pub mod service;
pub mod sim;
pub mod station;

pub use metrics::{ClassReport, NodeReport, PriorityReport, SimReport};
pub use service::ServiceModel;
pub use sim::{Arrival, SimConfig, SimConfigBuilder, Simulation};
pub use station::Station;
