//! The cluster simulation: closed-loop clients, dispatcher, back-end
//! nodes, optional NFS server, all advanced by a deterministic
//! discrete-event loop.

use crate::engine::EventQueue;
use crate::metrics::{Collector, NfsReport, NodeReport, SimReport};
use crate::nfs::NfsServer;
use crate::node::SimNode;
use crate::service::ServiceModel;
use crate::station::Station;
use cpms_dispatch::{ClusterState, Router, RoutingRequest};
use cpms_model::{
    ContentId, ContentKind, LoadSample, NodeId, NodeSpec, RequestClass, RequestId, RequestOutcome,
    SimDuration, SimTime,
};
use cpms_urltable::UrlTable;
use cpms_workload::{Corpus, RequestSampler, Trace, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How requests arrive at the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// WebBench semantics: `clients` closed-loop clients, each issuing the
    /// next request `think_time` after receiving the previous response.
    ClosedLoop,
    /// Poisson arrivals at a fixed offered rate, independent of
    /// completions — for latency-vs-offered-load curves.
    OpenLoop {
        /// Offered load in requests/second.
        rate_rps: f64,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Back-end node hardware.
    pub nodes: Vec<NodeSpec>,
    /// Arrival process.
    pub arrival: Arrival,
    /// Closed-loop client population (WebBench clients); ignored under
    /// [`Arrival::OpenLoop`].
    pub clients: u32,
    /// Client think time between receiving a response and issuing the next
    /// request.
    pub think_time: SimDuration,
    /// `Some(spec)` switches on shared-NFS mode: static content is fetched
    /// from an NFS server with this hardware on every local cache miss.
    pub nfs: Option<NodeSpec>,
    /// Service-time model.
    pub service: ServiceModel,
    /// RNG seed (the run is fully deterministic given the seed).
    pub seed: u64,
    /// Client back-off after an unroutable or misrouted request.
    pub retry_delay: SimDuration,
}

impl SimConfig {
    /// Starts building a config.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            config: SimConfig {
                nodes: NodeSpec::paper_testbed(),
                arrival: Arrival::ClosedLoop,
                clients: 32,
                think_time: SimDuration::from_millis(25),
                nfs: None,
                service: ServiceModel::paper_defaults(),
                seed: 0,
                retry_delay: SimDuration::from_millis(100),
            },
        }
    }
}

impl SimConfigBuilder {
    /// Sets the back-end nodes.
    pub fn nodes(&mut self, nodes: Vec<NodeSpec>) -> &mut Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the closed-loop client count.
    pub fn clients(&mut self, clients: u32) -> &mut Self {
        self.config.clients = clients;
        self
    }

    /// Switches to open-loop Poisson arrivals at `rate_rps` offered
    /// requests/second.
    pub fn open_loop(&mut self, rate_rps: f64) -> &mut Self {
        assert!(
            rate_rps > 0.0 && rate_rps.is_finite(),
            "offered rate must be positive"
        );
        self.config.arrival = Arrival::OpenLoop { rate_rps };
        self
    }

    /// Sets the client think time.
    pub fn think_time(&mut self, think: SimDuration) -> &mut Self {
        self.config.think_time = think;
        self
    }

    /// Enables shared-NFS mode with the given server hardware.
    pub fn nfs(&mut self, spec: NodeSpec) -> &mut Self {
        self.config.nfs = Some(spec);
        self
    }

    /// Sets the service model.
    pub fn service(&mut self, service: ServiceModel) -> &mut Self {
        self.config.service = service;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Builds the config.
    ///
    /// # Panics
    ///
    /// Panics if the node list is empty or the client count is zero.
    pub fn build(&self) -> SimConfig {
        assert!(!self.config.nodes.is_empty(), "at least one node required");
        assert!(self.config.clients > 0, "at least one client required");
        self.config.clone()
    }
}

#[derive(Debug, Clone)]
struct Job {
    id: RequestId,
    client: u32,
    content: ContentId,
    kind: ContentKind,
    size: u64,
    node: NodeId,
    issued_at: SimTime,
    dispatched_at: SimTime,
    cache_hit: bool,
    priority: cpms_model::Priority,
}

#[derive(Debug)]
enum Event {
    Issue {
        client: u32,
    },
    ArriveNode(Job),
    CpuDone(Job),
    /// One disk granule read; `remaining` bytes still to read.
    DiskChunk {
        job: Job,
        remaining: u64,
    },
    DataReady(Job),
    /// One NIC granule sent; `remaining` bytes still to send.
    NicChunk {
        job: Job,
        remaining: u64,
    },
    Done(Job),
}

/// The simulation: owns the cluster state, the URL table, the routing
/// policy, and the event loop.
///
/// Run it in windows: [`Simulation::run_window`] advances simulated time by
/// a fixed span and returns that window's [`SimReport`]; the convenience
/// [`Simulation::run`] does a discarded warm-up window followed by a
/// measured window. Between windows callers may mutate the URL table
/// (auto-replication, management operations) — the running system picks the
/// changes up exactly as the paper's distributor does.
pub struct Simulation<'c> {
    corpus: &'c Corpus,
    table: UrlTable,
    router: Box<dyn Router>,
    sampler: RequestSampler,
    state: ClusterState,
    nodes: Vec<SimNode>,
    nfs: Option<NfsServer>,
    dispatcher: Station,
    queue: EventQueue<Event>,
    now: SimTime,
    collector: Collector,
    config: SimConfig,
    rng: StdRng,
    next_request: u64,
    in_flight: u64,
    started: bool,
    /// When set, requests come from this recorded trace instead of the
    /// sampler; clients stop issuing once it is exhausted.
    trace: Option<(Vec<ContentId>, usize)>,
}

impl<'c> Simulation<'c> {
    /// Creates a simulation over `corpus` with the given placement
    /// (`table`), routing policy, and workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload spec requests classes the corpus lacks (see
    /// [`RequestSampler::new`]) or the config is inconsistent.
    pub fn new(
        config: SimConfig,
        corpus: &'c Corpus,
        table: UrlTable,
        router: Box<dyn Router>,
        spec: &WorkloadSpec,
    ) -> Self {
        let weights: Vec<f64> = config.nodes.iter().map(NodeSpec::weight).collect();
        let nodes: Vec<SimNode> = config
            .nodes
            .iter()
            .map(|s| SimNode::new(s.clone(), &config.service))
            .collect();
        let nfs = config
            .nfs
            .as_ref()
            .map(|s| NfsServer::new(s.clone(), &config.service));
        let sampler = RequestSampler::new(corpus, spec, config.seed);
        let rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x00C0_FFEE));
        Simulation {
            corpus,
            table,
            router,
            sampler,
            state: ClusterState::new(weights),
            nodes,
            nfs,
            dispatcher: Station::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            collector: Collector::new(),
            config,
            rng,
            next_request: 0,
            in_flight: 0,
            started: false,
            trace: None,
        }
    }

    /// Switches the request source to a recorded [`Trace`]: clients replay
    /// its ids in order (interleaved across clients) and fall silent when
    /// it is exhausted — the exact same offered stream for every placement
    /// or routing policy under comparison.
    #[must_use]
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        self.trace = Some((trace.ids().to_vec(), 0));
        self
    }

    /// Replaces the request sampler mid-run — models a shift in the access
    /// pattern (new content going viral). Takes effect on each client's
    /// next issued request.
    pub fn replace_sampler(&mut self, sampler: RequestSampler) {
        self.sampler = sampler;
    }

    /// How many trace entries remain unissued (`None` in sampling mode).
    pub fn trace_remaining(&self) -> Option<usize> {
        self.trace
            .as_ref()
            .map(|(ids, cursor)| ids.len().saturating_sub(*cursor))
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The URL table (placement + hit counters).
    pub fn table(&self) -> &UrlTable {
        &self.table
    }

    /// Mutable access to the URL table, for management operations between
    /// windows (replication, offload). The running router observes changes
    /// immediately via the table generation.
    pub fn table_mut(&mut self) -> &mut UrlTable {
        &mut self.table
    }

    /// The routing policy's name.
    pub fn router_name(&self) -> &'static str {
        self.router.name()
    }

    /// Live cluster state (connection counts).
    pub fn cluster_state(&self) -> &ClusterState {
        &self.state
    }

    /// Injects a node failure or recovery.
    pub fn set_node_alive(&mut self, node: NodeId, alive: bool) {
        self.state.set_alive(node, alive);
    }

    /// Drops `content` from `node`'s file cache (management offload makes
    /// the bytes unavailable locally).
    pub fn evict_from_cache(&mut self, node: NodeId, content: ContentId) {
        self.nodes[node.index()].cache_evict(content);
    }

    /// Runs a discarded warm-up window then a measured window; returns the
    /// measured report.
    pub fn run(&mut self, warmup: SimDuration, measure: SimDuration) -> SimReport {
        let _ = self.run_window(warmup);
        self.run_window(measure)
    }

    /// Advances the simulation by `window` and returns that window's
    /// report. Client/cache/queue state carries over between windows.
    pub fn run_window(&mut self, window: SimDuration) -> SimReport {
        if !self.started {
            self.started = true;
            match self.config.arrival {
                Arrival::ClosedLoop => {
                    // Stagger client starts over the first few milliseconds
                    // so the dispatcher doesn't see one giant burst at t=0.
                    for client in 0..self.config.clients {
                        let offset = SimDuration::from_micros(50 * client as u64);
                        self.queue.push(self.now + offset, Event::Issue { client });
                    }
                }
                Arrival::OpenLoop { .. } => {
                    // One generator stream; each Issue schedules the next.
                    self.queue.push(self.now, Event::Issue { client: 0 });
                }
            }
        }
        let end = self.now + window;
        while let Some(t) = self.queue.peek_time() {
            if t > end {
                break;
            }
            let (t, event) = self.queue.pop().expect("peeked");
            self.now = t;
            self.handle(event);
        }
        self.now = end;
        self.finish_window(window)
    }

    fn finish_window(&mut self, window: SimDuration) -> SimReport {
        let mut report = self.collector.drain(window, self.in_flight);
        report.nodes = self
            .nodes
            .iter_mut()
            .enumerate()
            .map(|(i, n)| NodeReport {
                node: NodeId(i as u16),
                requests: n.cpu.jobs(),
                cpu_utilization: n.cpu.utilization(window),
                disk_utilization: n.disk.utilization(window),
                nic_utilization: n.nic.utilization(window),
                cache_hit_rate: n.window_cache_hit_rate(),
            })
            .collect();
        report.dispatcher_utilization = self.dispatcher.utilization(window);
        report.nfs = self.nfs.as_ref().map(|n| NfsReport {
            fetches: n.fetches(),
            disk_utilization: n.disk.utilization(window),
            nic_utilization: n.nic.utilization(window),
            cache_hit_rate: n.cache_hit_rate(),
        });
        // Reset per-window accounting (queue state persists).
        for n in &mut self.nodes {
            n.cpu.reset_accounting();
            n.disk.reset_accounting();
            n.nic.reset_accounting();
        }
        if let Some(nfs) = &mut self.nfs {
            nfs.disk.reset_accounting();
            nfs.nic.reset_accounting();
        }
        self.dispatcher.reset_accounting();
        report
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Issue { client } => self.handle_issue(client),
            Event::ArriveNode(job) => self.handle_arrive_node(job),
            Event::CpuDone(job) => self.handle_cpu_done(job),
            Event::DiskChunk { job, remaining } => self.handle_disk_chunk(job, remaining),
            Event::DataReady(job) => self.handle_data_ready(job),
            Event::NicChunk { job, remaining } => self.handle_nic_chunk(job, remaining),
            Event::Done(job) => self.handle_done(job),
        }
    }

    fn handle_issue(&mut self, client: u32) {
        if let Arrival::OpenLoop { rate_rps } = self.config.arrival {
            // Schedule the next arrival regardless of what happens to this
            // one (open loop: offered load is exogenous).
            use rand::Rng;
            let u: f64 = self.rng.gen::<f64>();
            let gap_secs = -(1.0 - u).ln() / rate_rps;
            self.queue.push(
                self.now + SimDuration::from_secs_f64(gap_secs),
                Event::Issue { client },
            );
        }
        let content = match &mut self.trace {
            Some((ids, cursor)) => {
                let Some(&id) = ids.get(*cursor) else {
                    return; // trace exhausted: this client falls silent
                };
                *cursor += 1;
                id
            }
            None => self.sampler.sample_id(&mut self.rng),
        };
        self.collector.on_issue();
        let item = self.corpus.get(content);
        let req = RoutingRequest {
            client,
            path: item.path(),
            kind: item.kind(),
        };
        let decision = match self.router.route(&req, &self.state, &self.table) {
            Some(d) => d,
            None => {
                self.collector.on_unroutable();
                if self.config.arrival == Arrival::ClosedLoop {
                    self.queue
                        .push(self.now + self.config.retry_delay, Event::Issue { client });
                }
                return;
            }
        };
        // Bump the URL-table hit counter exactly as the distributor does
        // (content-blind routers skip the table, so only charge it for
        // content-aware policies).
        if self.router.is_content_aware() {
            let _ = self.table.lookup_and_hit(item.path());
        }
        let size = item.size_bytes();
        // Response bytes occupy the dispatcher only when they are relayed
        // through it (splicing / L4 rewriting). Redirected and DNS-routed
        // responses flow directly from the node.
        let dispatch_cost = if decision.direct_response {
            decision.cost
        } else {
            decision.cost + self.config.service.relay_cost(size)
        };
        let dispatched_at =
            self.dispatcher.schedule(self.now, dispatch_cost) + decision.client_latency;
        self.state.connection_opened(decision.node);
        self.in_flight += 1;
        let job = Job {
            id: RequestId(self.next_request),
            client,
            content,
            kind: item.kind(),
            size,
            node: decision.node,
            issued_at: self.now,
            dispatched_at,
            cache_hit: false,
            priority: item.priority(),
        };
        self.next_request += 1;
        self.queue.push(
            dispatched_at + self.config.service.lan_latency,
            Event::ArriveNode(job),
        );
    }

    fn handle_arrive_node(&mut self, job: Job) {
        // Does this node actually hold the content? Under shared NFS every
        // node can serve everything (by fetching). A content-blind router
        // over partitioned placement can get this wrong — that mismatch is
        // exactly why the paper needs content-aware routing (§1.2).
        if self.nfs.is_none() {
            let hosted = self
                .table
                .lookup(self.corpus.get(job.content).path())
                .map(|e| e.hosted_on(job.node))
                .unwrap_or(false);
            if !hosted {
                self.collector.on_misroute();
                self.finish_errored(job);
                return;
            }
        }
        let node = &mut self.nodes[job.node.index()];
        let service = node.parse_time(&self.config.service)
            + node.exec_time(job.kind, job.content, &self.config.service);
        let done = node.cpu.schedule(self.now, service);
        self.queue.push(done, Event::CpuDone(job));
    }

    fn handle_cpu_done(&mut self, mut job: Job) {
        if job.kind.is_dynamic() {
            // Response generated in memory; nothing to read.
            self.queue.push(self.now, Event::DataReady(job));
            return;
        }
        let node = &mut self.nodes[job.node.index()];
        if node.cache_lookup(job.content) {
            job.cache_hit = true;
            self.queue.push(self.now, Event::DataReady(job));
            return;
        }
        if let Some(nfs) = &mut self.nfs {
            // Remote fetch: LAN out, NFS server, LAN back; then cache the
            // file locally (NFS client caching).
            let at_server = self.now + self.config.service.lan_latency;
            let served = nfs.fetch(job.content, job.size, at_server, &self.config.service);
            let back = served + self.config.service.lan_latency;
            let node = &mut self.nodes[job.node.index()];
            node.cache_insert(job.content, job.size, &self.config.service);
            self.queue.push(back, Event::DataReady(job));
        } else {
            // Read the file in granules so concurrent requests interleave
            // at the disk instead of waiting behind a whole video.
            let chunk = job.size.min(crate::node::TRANSFER_CHUNK_BYTES);
            let remaining = job.size - chunk;
            let done = node.disk.schedule(
                self.now,
                node.disk_chunk_time(chunk, true, &self.config.service),
            );
            node.cache_insert(job.content, job.size, &self.config.service);
            self.queue.push(done, Event::DiskChunk { job, remaining });
        }
    }

    fn handle_disk_chunk(&mut self, job: Job, remaining: u64) {
        if remaining == 0 {
            self.queue.push(self.now, Event::DataReady(job));
            return;
        }
        let node = &mut self.nodes[job.node.index()];
        let chunk = remaining.min(crate::node::TRANSFER_CHUNK_BYTES);
        let done = node.disk.schedule(
            self.now,
            node.disk_chunk_time(chunk, false, &self.config.service),
        );
        self.queue.push(
            done,
            Event::DiskChunk {
                job,
                remaining: remaining - chunk,
            },
        );
    }

    fn handle_data_ready(&mut self, job: Job) {
        // Transmit in granules: TCP fair-shares the NIC among concurrent
        // responses, so short responses are not head-of-line blocked.
        let node = &mut self.nodes[job.node.index()];
        let chunk = job.size.min(crate::node::TRANSFER_CHUNK_BYTES);
        let remaining = job.size - chunk;
        let done = node.nic.schedule(self.now, node.nic_time(chunk));
        self.queue.push(done, Event::NicChunk { job, remaining });
    }

    fn handle_nic_chunk(&mut self, job: Job, remaining: u64) {
        if remaining == 0 {
            self.queue
                .push(self.now + self.config.service.lan_latency, Event::Done(job));
            return;
        }
        let node = &mut self.nodes[job.node.index()];
        let chunk = remaining.min(crate::node::TRANSFER_CHUNK_BYTES);
        let done = node.nic.schedule(self.now, node.nic_time(chunk));
        self.queue.push(
            done,
            Event::NicChunk {
                job,
                remaining: remaining - chunk,
            },
        );
    }

    fn handle_done(&mut self, job: Job) {
        self.state.connection_closed(job.node);
        self.router.on_complete(job.node);
        self.in_flight -= 1;
        let outcome = RequestOutcome {
            id: job.id,
            class: RequestClass::from_kind(job.kind),
            served_by: job.node,
            issued_at: job.issued_at,
            completed_at: self.now,
            cache_hit: job.cache_hit,
            size_bytes: job.size,
            priority: job.priority,
        };
        let sample = LoadSample {
            node: job.node,
            content: job.content,
            kind: job.kind,
            processing_time: self.now.saturating_duration_since(job.dispatched_at),
        };
        self.collector.on_complete(&outcome, sample);
        if self.config.arrival == Arrival::ClosedLoop {
            self.queue.push(
                self.now + self.config.think_time,
                Event::Issue { client: job.client },
            );
        }
    }

    /// Completes a request in error (misroute): the client backs off and
    /// retries; no outcome is recorded.
    fn finish_errored(&mut self, job: Job) {
        self.state.connection_closed(job.node);
        self.router.on_complete(job.node);
        self.in_flight -= 1;
        if self.config.arrival == Arrival::ClosedLoop {
            self.queue.push(
                self.now + self.config.retry_delay,
                Event::Issue { client: job.client },
            );
        }
    }
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("router", &self.router.name())
            .field("nodes", &self.nodes.len())
            .field("clients", &self.config.clients)
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement;
    use cpms_dispatch::{ContentAwareRouter, RoundRobin, WeightedLeastConnections};
    use cpms_workload::CorpusBuilder;

    fn small_corpus() -> Corpus {
        CorpusBuilder::small_site().seed(1).build()
    }

    fn config(clients: u32) -> SimConfig {
        SimConfig::builder()
            .nodes(vec![NodeSpec::testbed_350(); 4])
            .clients(clients)
            .seed(9)
            .build()
    }

    #[test]
    fn smoke_full_replication_wlc() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 4);
        let mut sim = Simulation::new(
            config(16),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run(SimDuration::from_secs(2), SimDuration::from_secs(10));
        assert!(
            report.throughput_rps() > 50.0,
            "{}",
            report.throughput_rps()
        );
        assert_eq!(report.misroutes, 0);
        assert_eq!(report.unroutable, 0);
        assert!(report.class(RequestClass::Static).is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = small_corpus();
        let run = || {
            let table = placement::replicate_everywhere(&corpus, 4);
            let mut sim = Simulation::new(
                config(8),
                &corpus,
                table,
                Box::new(WeightedLeastConnections::new()),
                &WorkloadSpec::workload_a(),
            );
            sim.run(SimDuration::from_secs(1), SimDuration::from_secs(5))
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn warm_cache_beats_cold() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 2);
        let mut sim = Simulation::new(
            SimConfig::builder()
                .nodes(vec![NodeSpec::testbed_350(); 2])
                .clients(8)
                .seed(3)
                .build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let cold = sim.run_window(SimDuration::from_secs(5));
        let warm = sim.run_window(SimDuration::from_secs(5));
        assert!(
            warm.throughput_rps() > cold.throughput_rps(),
            "warm {} vs cold {}",
            warm.throughput_rps(),
            cold.throughput_rps()
        );
        let hit_rate = warm.nodes[0].cache_hit_rate;
        assert!(hit_rate > 0.5, "cache hit rate {hit_rate}");
    }

    #[test]
    fn content_blind_routing_over_partitioned_misroutes() {
        let corpus = small_corpus();
        let specs = vec![NodeSpec::testbed_350(); 4];
        let table =
            placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes);
        let mut sim = Simulation::new(
            config(8),
            &corpus,
            table,
            Box::new(RoundRobin::new()),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run(SimDuration::from_secs(1), SimDuration::from_secs(5));
        assert!(
            report.misroutes > 0,
            "an L4 router cannot honor partitioned placement"
        );
    }

    #[test]
    fn content_aware_routing_over_partitioned_never_misroutes() {
        let corpus = small_corpus();
        let specs = vec![NodeSpec::testbed_350(); 4];
        let table =
            placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes);
        let mut sim = Simulation::new(
            config(8),
            &corpus,
            table,
            Box::new(ContentAwareRouter::new(256)),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run(SimDuration::from_secs(1), SimDuration::from_secs(5));
        assert_eq!(report.misroutes, 0);
        assert_eq!(report.unroutable, 0);
        assert!(report.throughput_rps() > 50.0);
    }

    #[test]
    fn empty_table_makes_content_aware_unroutable() {
        let corpus = small_corpus();
        let mut sim = Simulation::new(
            config(4),
            &corpus,
            UrlTable::new(),
            Box::new(ContentAwareRouter::new(16)),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run_window(SimDuration::from_secs(2));
        assert_eq!(report.completed, 0);
        assert!(report.unroutable > 0);
        assert_eq!(report.in_flight_at_end, 0);
    }

    #[test]
    fn nfs_mode_slower_than_local_disk() {
        let corpus = CorpusBuilder::small_site()
            .seed(5)
            .total_objects(2_000)
            .build();
        let mk = |nfs: bool| {
            let mut b = SimConfig::builder();
            b.nodes(vec![NodeSpec::testbed_350(); 4])
                .clients(48)
                .seed(2);
            if nfs {
                b.nfs(NodeSpec::testbed_350());
            }
            let table = placement::replicate_everywhere(&corpus, 4);
            let mut sim = Simulation::new(
                b.build(),
                &corpus,
                table,
                Box::new(WeightedLeastConnections::new()),
                &WorkloadSpec::workload_a(),
            );
            sim.run(SimDuration::from_secs(2), SimDuration::from_secs(10))
        };
        let local = mk(false);
        let nfs = mk(true);
        assert!(
            local.throughput_rps() > nfs.throughput_rps(),
            "local {} vs nfs {}",
            local.throughput_rps(),
            nfs.throughput_rps()
        );
        assert!(nfs.nfs.is_some());
        assert!(nfs.nfs.as_ref().unwrap().fetches > 0);
    }

    #[test]
    fn node_failure_shifts_traffic() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 4);
        let mut sim = Simulation::new(
            config(8),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let _ = sim.run_window(SimDuration::from_secs(2));
        sim.set_node_alive(NodeId(0), false);
        let report = sim.run_window(SimDuration::from_secs(5));
        // node 0 may finish residual work but receives (almost) nothing new
        let n0 = report.nodes[0].requests;
        let n1 = report.nodes[1].requests;
        assert!(n0 < n1 / 4, "dead node got {n0}, live node {n1}");
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn load_samples_cover_completions() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 2);
        let mut sim = Simulation::new(
            SimConfig::builder()
                .nodes(vec![NodeSpec::testbed_350(); 2])
                .clients(4)
                .seed(1)
                .build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run_window(SimDuration::from_secs(3));
        assert_eq!(report.load_samples.len() as u64, report.completed);
        assert!(report
            .load_samples
            .iter()
            .all(|s| s.processing_time > SimDuration::ZERO));
    }

    #[test]
    fn conservation_of_requests() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 3);
        let mut sim = Simulation::new(
            SimConfig::builder()
                .nodes(vec![NodeSpec::testbed_350(); 3])
                .clients(12)
                .seed(4)
                .build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let mut prev_in_flight = 0u64;
        for _ in 0..4 {
            let r = sim.run_window(SimDuration::from_secs(2));
            // issued this window + carried-over in-flight
            //   = completed this window + in-flight at end
            assert_eq!(
                r.issued + prev_in_flight,
                r.completed + r.in_flight_at_end + r.misroutes,
                "request conservation"
            );
            prev_in_flight = r.in_flight_at_end;
        }
    }

    #[test]
    fn open_loop_offers_the_configured_rate() {
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 4);
        let mut config = SimConfig::builder();
        config
            .nodes(vec![NodeSpec::testbed_350(); 4])
            .open_loop(200.0)
            .seed(3);
        let mut sim = Simulation::new(
            config.build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run(SimDuration::from_secs(2), SimDuration::from_secs(20));
        let offered = report.issued as f64 / report.window.as_secs_f64();
        assert!(
            (offered - 200.0).abs() < 20.0,
            "offered {offered} rps, configured 200"
        );
        // Well below capacity: completions track arrivals.
        assert!(report.completed as f64 > report.issued as f64 * 0.95);
    }

    #[test]
    fn open_loop_latency_grows_with_offered_load() {
        let corpus = small_corpus();
        let run = |rate: f64| {
            let table = placement::replicate_everywhere(&corpus, 2);
            let mut config = SimConfig::builder();
            config
                .nodes(vec![NodeSpec::testbed_350(); 2])
                .open_loop(rate)
                .seed(3);
            let mut sim = Simulation::new(
                config.build(),
                &corpus,
                table,
                Box::new(WeightedLeastConnections::new()),
                &WorkloadSpec::workload_a(),
            );
            sim.run(SimDuration::from_secs(2), SimDuration::from_secs(15))
                .mean_response_ms()
        };
        let light = run(50.0);
        let heavy = run(400.0);
        assert!(
            heavy > light * 1.5,
            "queueing delay must grow: {light:.1}ms at 50rps vs {heavy:.1}ms at 400rps"
        );
    }

    #[test]
    fn trace_replay_is_identical_across_policies() {
        use cpms_workload::{RequestSampler, Trace};
        let corpus = small_corpus();
        let mut sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), 31);
        let trace = Trace::record(&mut sampler, 2_000);

        let run = |router: Box<dyn cpms_dispatch::Router>| {
            let table = placement::replicate_everywhere(&corpus, 3);
            let mut config = SimConfig::builder();
            config
                .nodes(vec![NodeSpec::testbed_350(); 3])
                .clients(8)
                .seed(2);
            let mut sim = Simulation::new(
                config.build(),
                &corpus,
                table,
                router,
                &WorkloadSpec::workload_a(),
            )
            .with_trace(&trace);
            // run long enough to drain the whole trace
            let mut total = 0u64;
            for _ in 0..50 {
                let r = sim.run_window(SimDuration::from_secs(5));
                total += r.completed;
                if sim.trace_remaining() == Some(0) && r.in_flight_at_end == 0 {
                    break;
                }
            }
            total
        };
        let wlc = run(Box::new(WeightedLeastConnections::new()));
        let ca = run(Box::new(ContentAwareRouter::new(128)));
        assert_eq!(wlc, trace.len() as u64, "every trace entry served");
        assert_eq!(ca, trace.len() as u64, "identical offered stream");
    }

    #[test]
    fn trace_remaining_reports_progress() {
        use cpms_model::ContentId;
        use cpms_workload::Trace;
        let corpus = small_corpus();
        let table = placement::replicate_everywhere(&corpus, 2);
        let trace = Trace::from_ids([ContentId(0), ContentId(1), ContentId(2)]);
        let mut config = SimConfig::builder();
        config
            .nodes(vec![NodeSpec::testbed_350(); 2])
            .clients(1)
            .seed(1);
        let mut sim = Simulation::new(
            config.build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        )
        .with_trace(&trace);
        assert_eq!(sim.trace_remaining(), Some(3));
        let r = sim.run_window(SimDuration::from_secs(5));
        assert_eq!(r.completed, 3);
        assert_eq!(sim.trace_remaining(), Some(0));
    }

    #[test]
    fn heterogeneous_cluster_respects_weights() {
        let corpus = small_corpus();
        let specs = NodeSpec::paper_testbed();
        let table = placement::replicate_everywhere(&corpus, specs.len());
        let mut sim = Simulation::new(
            SimConfig::builder()
                .nodes(specs)
                .clients(64)
                .seed(8)
                .build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_a(),
        );
        let report = sim.run(SimDuration::from_secs(2), SimDuration::from_secs(10));
        // Fast nodes (5..) should serve more requests than slow ones (0..3)
        let slow: u64 = report.nodes[..3].iter().map(|n| n.requests).sum();
        let fast: u64 = report.nodes[5..].iter().map(|n| n.requests).sum();
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }
}
