//! A deterministic discrete-event queue.

use cpms_model::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        // Ties break by insertion sequence for full determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        q.push(t, 1);
        q.push(t, 2);
        q.push(t, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3], "same-time events pop in insertion order");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
