//! Measurement collection and reports.
//!
//! The paper's metric is WebBench's: requests served per second, reported
//! in aggregate (Figures 2 and 3) and per request class (Figure 4). We
//! additionally expose response-time percentiles, per-node utilizations,
//! and cache hit rates — the quantities that *explain* the headline
//! orderings.

use cpms_model::{LoadSample, NodeId, Priority, RequestClass, RequestOutcome, SimDuration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-class results over a measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The request class.
    pub class: RequestClass,
    /// Requests completed in the window.
    pub completed: u64,
    /// Completions per second.
    pub throughput_rps: f64,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
    /// Median response time in milliseconds.
    pub p50_response_ms: f64,
    /// 95th-percentile response time in milliseconds.
    pub p95_response_ms: f64,
}

/// Per-priority results over a measurement window (differentiated QoS,
/// §1.2: "provide differentiated QoS according to the variety of
/// content").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityReport {
    /// The priority band.
    pub priority: Priority,
    /// Requests completed in the window.
    pub completed: u64,
    /// Mean response time in milliseconds.
    pub mean_response_ms: f64,
    /// 95th-percentile response time in milliseconds.
    pub p95_response_ms: f64,
}

/// Per-node results over a measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node.
    pub node: NodeId,
    /// Requests this node served.
    pub requests: u64,
    /// CPU busy fraction.
    pub cpu_utilization: f64,
    /// Disk busy fraction.
    pub disk_utilization: f64,
    /// NIC busy fraction.
    pub nic_utilization: f64,
    /// File-cache hit rate (lifetime of the node).
    pub cache_hit_rate: f64,
}

/// NFS server results, present under shared-filesystem placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NfsReport {
    /// Remote fetches served in total.
    pub fetches: u64,
    /// Disk busy fraction.
    pub disk_utilization: f64,
    /// NIC busy fraction.
    pub nic_utilization: f64,
    /// Server buffer-cache hit rate.
    pub cache_hit_rate: f64,
}

/// The complete result of one measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Length of the measurement window.
    pub window: SimDuration,
    /// Requests issued in the window.
    pub issued: u64,
    /// Requests completed in the window.
    pub completed: u64,
    /// Requests the router could not place (no location / all dead).
    pub unroutable: u64,
    /// Requests routed to a node that did not hold the content (possible
    /// with content-blind routing over partitioned placement).
    pub misroutes: u64,
    /// Requests still in flight when the window closed.
    pub in_flight_at_end: u64,
    /// Per-class breakdown (classes with zero traffic omitted).
    pub classes: Vec<ClassReport>,
    /// Per-priority breakdown (bands with zero traffic omitted).
    pub priorities: Vec<PriorityReport>,
    /// Per-node breakdown.
    pub nodes: Vec<NodeReport>,
    /// Dispatcher busy fraction.
    pub dispatcher_utilization: f64,
    /// NFS server report, if the run used shared-NFS placement.
    pub nfs: Option<NfsReport>,
    /// Raw per-request load samples (input to §3.3 auto-replication).
    pub load_samples: Vec<LoadSample>,
}

impl SimReport {
    /// Aggregate completions per second — the WebBench headline number.
    pub fn throughput_rps(&self) -> f64 {
        if self.window == SimDuration::ZERO {
            0.0
        } else {
            self.completed as f64 / self.window.as_secs_f64()
        }
    }

    /// The report for one class, if it saw traffic.
    pub fn class(&self, class: RequestClass) -> Option<&ClassReport> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// The report for one priority band, if it saw traffic.
    pub fn priority(&self, priority: Priority) -> Option<&PriorityReport> {
        self.priorities.iter().find(|p| p.priority == priority)
    }

    /// Mean response time across all classes, in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        let total: u64 = self.classes.iter().map(|c| c.completed).sum();
        if total == 0 {
            return 0.0;
        }
        self.classes
            .iter()
            .map(|c| c.mean_response_ms * c.completed as f64)
            .sum::<f64>()
            / total as f64
    }
}

impl std::fmt::Display for SimReport {
    /// Renders a compact human-readable summary: headline throughput, then
    /// per-class and per-node lines.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:.0} req/s over {} ({} completed, {} issued, {} unroutable, {} misroutes, {} in flight)",
            self.throughput_rps(),
            self.window,
            self.completed,
            self.issued,
            self.unroutable,
            self.misroutes,
            self.in_flight_at_end
        )?;
        for c in &self.classes {
            writeln!(
                f,
                "  {:>6}: {:>8.1} rps  mean {:>7.1}ms  p50 {:>7.1}ms  p95 {:>7.1}ms",
                c.class, c.throughput_rps, c.mean_response_ms, c.p50_response_ms, c.p95_response_ms
            )?;
        }
        for n in &self.nodes {
            writeln!(
                f,
                "  {:>6}: {:>6} reqs  cpu {:>4.0}%  disk {:>4.0}%  nic {:>4.0}%  cache hit {:>4.0}%",
                n.node,
                n.requests,
                n.cpu_utilization * 100.0,
                n.disk_utilization * 100.0,
                n.nic_utilization * 100.0,
                n.cache_hit_rate * 100.0
            )?;
        }
        if let Some(nfs) = &self.nfs {
            writeln!(
                f,
                "  nfs: {} fetches  disk {:.0}%  nic {:.0}%  cache hit {:.0}%",
                nfs.fetches,
                nfs.disk_utilization * 100.0,
                nfs.nic_utilization * 100.0,
                nfs.cache_hit_rate * 100.0
            )?;
        }
        write!(
            f,
            "  dispatcher {:.0}% busy",
            self.dispatcher_utilization * 100.0
        )
    }
}

/// Accumulates outcomes during a window; drained into a [`SimReport`].
#[derive(Debug, Default)]
pub struct Collector {
    issued: u64,
    completed: u64,
    unroutable: u64,
    misroutes: u64,
    response_micros: HashMap<RequestClass, Vec<u64>>,
    priority_micros: HashMap<Priority, Vec<u64>>,
    per_node_requests: HashMap<NodeId, u64>,
    load_samples: Vec<LoadSample>,
}

impl Collector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Counts an issued request.
    pub fn on_issue(&mut self) {
        self.issued += 1;
    }

    /// Counts an unroutable request.
    pub fn on_unroutable(&mut self) {
        self.unroutable += 1;
    }

    /// Counts a misrouted request.
    pub fn on_misroute(&mut self) {
        self.misroutes += 1;
    }

    /// Records a completed request and its §3.3 load sample.
    pub fn on_complete(&mut self, outcome: &RequestOutcome, sample: LoadSample) {
        self.completed += 1;
        self.response_micros
            .entry(outcome.class)
            .or_default()
            .push(outcome.response_time().as_micros());
        self.priority_micros
            .entry(outcome.priority)
            .or_default()
            .push(outcome.response_time().as_micros());
        *self.per_node_requests.entry(outcome.served_by).or_insert(0) += 1;
        self.load_samples.push(sample);
    }

    /// Requests completed so far in this window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Finalizes the window: produces class reports and the load samples,
    /// leaving the collector empty for the next window. Node/dispatcher/NFS
    /// figures are filled in by the simulation, which owns those resources.
    pub fn drain(&mut self, window: SimDuration, in_flight_at_end: u64) -> SimReport {
        let mut classes: Vec<ClassReport> = Vec::new();
        for class in RequestClass::ALL {
            let Some(mut times) = self.response_micros.remove(&class) else {
                continue;
            };
            if times.is_empty() {
                continue;
            }
            times.sort_unstable();
            let completed = times.len() as u64;
            let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
            classes.push(ClassReport {
                class,
                completed,
                throughput_rps: completed as f64 / window.as_secs_f64().max(f64::MIN_POSITIVE),
                mean_response_ms: mean / 1e3,
                p50_response_ms: percentile(&times, 0.50) / 1e3,
                p95_response_ms: percentile(&times, 0.95) / 1e3,
            });
        }
        let mut priorities: Vec<PriorityReport> = Vec::new();
        for priority in [Priority::Critical, Priority::Normal, Priority::Background] {
            let Some(mut times) = self.priority_micros.remove(&priority) else {
                continue;
            };
            if times.is_empty() {
                continue;
            }
            times.sort_unstable();
            let mean = times.iter().sum::<u64>() as f64 / times.len() as f64;
            priorities.push(PriorityReport {
                priority,
                completed: times.len() as u64,
                mean_response_ms: mean / 1e3,
                p95_response_ms: percentile(&times, 0.95) / 1e3,
            });
        }
        let report = SimReport {
            window,
            issued: self.issued,
            completed: self.completed,
            unroutable: self.unroutable,
            misroutes: self.misroutes,
            in_flight_at_end,
            classes,
            priorities,
            nodes: Vec::new(),
            dispatcher_utilization: 0.0,
            nfs: None,
            load_samples: std::mem::take(&mut self.load_samples),
        };
        self.issued = 0;
        self.completed = 0;
        self.unroutable = 0;
        self.misroutes = 0;
        self.response_micros.clear();
        self.priority_micros.clear();
        self.per_node_requests.clear();
        report
    }

    /// Requests served per node this window (consumed by the simulation
    /// when assembling node reports).
    pub fn node_requests(&self, node: NodeId) -> u64 {
        self.per_node_requests.get(&node).copied().unwrap_or(0)
    }
}

/// Linear-interpolated percentile of a sorted slice (in the slice's units).
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo] as f64
    } else {
        let frac = pos - lo as f64;
        sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind, RequestId, SimTime};

    fn outcome(class: RequestClass, node: u16, micros: u64) -> (RequestOutcome, LoadSample) {
        (
            RequestOutcome {
                id: RequestId(0),
                class,
                served_by: NodeId(node),
                issued_at: SimTime::ZERO,
                completed_at: SimTime::from_micros(micros),
                cache_hit: false,
                size_bytes: 100,
                priority: Priority::Normal,
            },
            LoadSample {
                node: NodeId(node),
                content: ContentId(0),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_micros(micros),
            },
        )
    }

    #[test]
    fn collects_and_drains() {
        let mut c = Collector::new();
        for _ in 0..3 {
            c.on_issue();
        }
        let (o, s) = outcome(RequestClass::Static, 0, 1_000);
        c.on_complete(&o, s);
        let (o, s) = outcome(RequestClass::Static, 0, 3_000);
        c.on_complete(&o, s);
        let (o, s) = outcome(RequestClass::Cgi, 1, 10_000);
        c.on_complete(&o, s);
        c.on_unroutable();

        let r = c.drain(SimDuration::from_secs(1), 0);
        assert_eq!(r.issued, 3);
        assert_eq!(r.completed, 3);
        assert_eq!(r.unroutable, 1);
        assert!((r.throughput_rps() - 3.0).abs() < 1e-9);
        let static_report = r.class(RequestClass::Static).unwrap();
        assert_eq!(static_report.completed, 2);
        assert!((static_report.mean_response_ms - 2.0).abs() < 1e-9);
        assert!(r.class(RequestClass::Asp).is_none());
        assert_eq!(r.load_samples.len(), 3);

        // drained: a second drain is empty
        let r2 = c.drain(SimDuration::from_secs(1), 0);
        assert_eq!(r2.completed, 0);
        assert!(r2.classes.is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&v, 0.5), 25.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.95), 7.0);
    }

    #[test]
    fn mean_response_weighted_by_class() {
        let mut c = Collector::new();
        let (o, s) = outcome(RequestClass::Static, 0, 1_000);
        c.on_complete(&o, s);
        let (o, s) = outcome(RequestClass::Cgi, 0, 3_000);
        c.on_complete(&o, s);
        let r = c.drain(SimDuration::from_secs(1), 0);
        assert!((r.mean_response_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes_report() {
        let mut c = Collector::new();
        c.on_issue();
        let (o, s) = outcome(RequestClass::Static, 0, 2_000);
        c.on_complete(&o, s);
        let r = c.drain(SimDuration::from_secs(1), 0);
        let text = r.to_string();
        assert!(text.contains("1 req/s") || text.contains("1 completed"));
        assert!(text.contains("static"));
        assert!(text.contains("dispatcher"));
    }

    #[test]
    fn zero_window_throughput_is_zero() {
        let mut c = Collector::new();
        let r = c.drain(SimDuration::ZERO, 0);
        assert_eq!(r.throughput_rps(), 0.0);
        assert_eq!(r.mean_response_ms(), 0.0);
    }
}
