//! Content placement: building URL tables that realize the paper's
//! placement schemes over a corpus and a cluster.
//!
//! - [`replicate_everywhere`] — configuration 1 (§5.3): full replication.
//! - [`shared_nfs`] — configuration 2: everything on the NFS server; any
//!   web node can serve any object (by fetching it remotely).
//! - [`partition_by_type`] — configuration 3: the paper's content-aware
//!   partitioning ("We placed dynamic content (CGI scripts and ASP) on the
//!   servers with powerful CPU, plain html content on the nodes with slow
//!   processor and disk. We also separated large file (e.g., video file)
//!   on the server nodes with fast disk.")
//! - [`replicate_hot_content`] — partial replication: extra copies of the
//!   hottest objects, the state auto-replication converges to.

use cpms_model::{ContentKind, NodeId, NodeSpec, RequestClass};
use cpms_urltable::{TableError, UrlEntry, UrlTable};
use cpms_workload::Corpus;

/// Builds the full-replication table: every object on every node.
///
/// Every node gets every object — the paper's configuration 1. Note that a
/// content-blind router over this placement still sends ASP requests to
/// non-IIS nodes in a mixed cluster; use
/// [`replicate_everywhere_capable`] to model full replication that
/// respects software capabilities (ASP installed only on IIS nodes).
pub fn replicate_everywhere(corpus: &Corpus, node_count: usize) -> UrlTable {
    let all: Vec<NodeId> = (0..node_count).map(|i| NodeId(i as u16)).collect();
    build_table(corpus, |_, _| all.clone())
}

/// Full replication constrained by node capability: each object is
/// replicated on every node that *can serve it* — ASP pages exist only on
/// the IIS nodes, everything else everywhere.
///
/// This is the honest configuration-1 baseline for a heterogeneous
/// NT+Linux cluster (§5.1): ASP physically cannot run under Apache, and a
/// content-blind layer-4 router has no way to know that, so ASP requests
/// it sends to Linux nodes fail — "the content placement scheme
/// (full-replication) does not take the heterogeneity on the capability of
/// each node into consideration" (§5.3).
pub fn replicate_everywhere_capable(corpus: &Corpus, specs: &[NodeSpec]) -> UrlTable {
    build_table(corpus, |_, item| {
        (0..specs.len())
            .map(|i| NodeId(i as u16))
            .filter(|n| specs[n.index()].can_serve_kind(item.kind()))
            .collect()
    })
}

/// Builds the shared-NFS table: every node is listed as a location (any
/// node can serve any object by fetching it from the NFS server); the
/// simulation's NFS mode charges the remote fetch.
pub fn shared_nfs(corpus: &Corpus, node_count: usize) -> UrlTable {
    replicate_everywhere(corpus, node_count)
}

/// How [`partition_by_type`] treats static content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticSpread {
    /// Static content spread over **all** nodes by capacity (the Workload A
    /// experiment, where there is nothing else to segregate).
    AllNodes,
    /// Static content concentrated on nodes **not** hosting dynamic
    /// content (the Workload B experiment: segregation keeps short static
    /// requests from queueing behind long CGI/ASP runs). Dynamic hosts
    /// still take a small, heavily discounted share so their caches and
    /// NICs are not wasted — "plain html content on the nodes with slow
    /// processor and disk".
    SegregateDynamic,
}

/// Builds the content-partitioned table (configuration 3).
///
/// Assignment rules, from the paper's §5.3 description:
///
/// - CGI → the highest-clocked non-IIS nodes (top quartile by MHz, at
///   least one),
/// - ASP → the IIS nodes (falling back to the fastest nodes if the cluster
///   has none),
/// - video → the nodes with the largest disks (ties broken by disk speed),
/// - other static → per `spread`, balanced by node capacity weight.
///
/// Within each group, objects go to the group node with the least
/// accumulated `bytes / weight` — a static analogue of weighted least
/// connections.
pub fn partition_by_type(corpus: &Corpus, specs: &[NodeSpec], spread: StaticSpread) -> UrlTable {
    assert!(!specs.is_empty(), "cluster must have at least one node");
    let ids: Vec<NodeId> = (0..specs.len()).map(|i| NodeId(i as u16)).collect();

    // --- group selection
    let iis: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|n| specs[n.index()].can_serve_kind(ContentKind::Asp))
        .collect();

    let mut by_cpu: Vec<NodeId> = ids.iter().copied().filter(|n| !iis.contains(n)).collect();
    by_cpu.sort_by(|a, b| specs[b.index()].cpu_mhz().cmp(&specs[a.index()].cpu_mhz()));
    let cgi_count = (by_cpu.len().div_ceil(2)).max(1).min(by_cpu.len().max(1));
    let cgi_hosts: Vec<NodeId> = if by_cpu.is_empty() {
        // Degenerate cluster of only IIS nodes: CGI runs there too.
        iis.clone()
    } else {
        by_cpu[..cgi_count].to_vec()
    };
    let asp_hosts: Vec<NodeId> = if iis.is_empty() {
        cgi_hosts.clone()
    } else {
        iis.clone()
    };

    let max_disk = specs
        .iter()
        .map(NodeSpec::disk_bytes)
        .max()
        .expect("nonempty");
    let video_hosts: Vec<NodeId> = ids
        .iter()
        .copied()
        .filter(|n| specs[n.index()].disk_bytes() == max_disk)
        .collect();

    let dynamic_hosts: Vec<NodeId> = {
        let mut v = cgi_hosts.clone();
        v.extend(asp_hosts.iter().copied());
        v.sort_unstable();
        v.dedup();
        v
    };
    // Static content uses the whole cluster in both modes; segregation is
    // expressed through the per-node weights below (dynamic hosts get a
    // strong discount so almost all static lands elsewhere).
    let static_hosts: Vec<NodeId> = ids.clone();

    // --- popularity-aware striping within groups
    //
    // Objects are assigned hottest-first (the corpus's per-class popularity
    // order), each to the group node with the least accumulated expected
    // request load per unit of capacity weight. This spreads the hot head
    // of the Zipf distribution across the group instead of letting one node
    // accumulate several hot objects — the administrator's "rough"
    // partition plus the first round of §3.3 rebalancing. Video balances by
    // bytes instead: its requests are rare but its transfers are huge.
    const POPULARITY_ALPHA: f64 = 0.8;
    // Video hosts spend much of their NIC and disk on multimedia
    // transfers, so they receive a reduced share of static content
    // ("plain html content on the nodes with slow processor and disk").
    const VIDEO_HOST_DISCOUNT: f64 = 0.7;
    // Under segregation, dynamic hosts take almost no static content so
    // short static requests don't queue behind CGI/ASP execution.
    const DYNAMIC_HOST_DISCOUNT: f64 = 0.5;
    let mut popularity_load = vec![0.0f64; specs.len()];
    let mut assigned_bytes = vec![0u64; specs.len()];
    let static_weight = |n: NodeId| {
        let mut w = specs[n.index()].weight();
        if video_hosts.contains(&n) {
            w *= VIDEO_HOST_DISCOUNT;
        }
        if spread == StaticSpread::SegregateDynamic && dynamic_hosts.contains(&n) {
            w *= DYNAMIC_HOST_DISCOUNT;
        }
        w
    };
    let mut assignment: std::collections::HashMap<cpms_model::ContentId, NodeId> =
        std::collections::HashMap::with_capacity(corpus.len());
    let mut assignment_multi: std::collections::HashMap<cpms_model::ContentId, Vec<NodeId>> =
        std::collections::HashMap::new();

    for class in RequestClass::ALL {
        for (rank, &id) in corpus.class_ids(class).iter().enumerate() {
            let item = corpus.get(id);
            let group = match item.kind() {
                ContentKind::Cgi => &cgi_hosts,
                ContentKind::Asp => &asp_hosts,
                ContentKind::Video => &video_hosts,
                _ => &static_hosts,
            };
            let node = if item.kind() == ContentKind::Video {
                let node = group
                    .iter()
                    .copied()
                    .min_by(|a, b| {
                        let la = assigned_bytes[a.index()] as f64 / specs[a.index()].weight();
                        let lb = assigned_bytes[b.index()] as f64 / specs[b.index()].weight();
                        la.partial_cmp(&lb).expect("finite")
                    })
                    .expect("groups are nonempty");
                assigned_bytes[node.index()] += item.size_bytes().max(1);
                node
            } else if item.kind().is_dynamic() && !item.is_mutable() {
                // Scripts are code, not data: they are installed on every
                // node of their group (app-server style), and the
                // content-aware distributor balances each invocation over
                // the group by least normalized load. Storage cost is
                // negligible and there is no consistency concern. Mutable
                // scripts are pinned to one node instead (§4: consistency
                // stays centralized).
                assignment_multi.insert(id, group.clone());
                continue;
            } else {
                let p = 1.0 / ((rank + 1) as f64).powf(POPULARITY_ALPHA);
                let node = group
                    .iter()
                    .copied()
                    .min_by(|a, b| {
                        let la = popularity_load[a.index()] / static_weight(*a);
                        let lb = popularity_load[b.index()] / static_weight(*b);
                        la.partial_cmp(&lb).expect("finite")
                    })
                    .expect("groups are nonempty");
                popularity_load[node.index()] += p;
                node
            };
            assignment.insert(id, node);
        }
    }

    build_table(corpus, |id, _| {
        assignment_multi
            .get(&id)
            .cloned()
            .unwrap_or_else(|| vec![assignment[&id]])
    })
}

/// Adds `copies − 1` extra replicas for the hottest `hot_fraction` of each
/// class's objects, spreading replicas over nodes not already hosting the
/// object (by capacity weight). Mutable objects are skipped: §4 keeps them
/// single-copy so consistency stays centralized.
///
/// # Panics
///
/// Panics if `hot_fraction` is outside `[0, 1]` or `copies` is 0.
pub fn replicate_hot_content(
    table: &mut UrlTable,
    corpus: &Corpus,
    specs: &[NodeSpec],
    hot_fraction: f64,
    copies: usize,
) {
    assert!((0.0..=1.0).contains(&hot_fraction), "hot_fraction in [0,1]");
    assert!(copies >= 1, "copies must be at least 1");
    for class in RequestClass::ALL {
        let ids = corpus.class_ids(class);
        let hot = (ids.len() as f64 * hot_fraction).round() as usize;
        for &id in &ids[..hot.min(ids.len())] {
            let item = corpus.get(id);
            if item.is_mutable() {
                continue;
            }
            // ASP can only be replicated onto IIS nodes.
            let eligible: Vec<NodeId> = (0..specs.len())
                .map(|i| NodeId(i as u16))
                .filter(|n| specs[n.index()].can_serve_kind(item.kind()))
                .collect();
            let path = item.path();
            let current: Vec<NodeId> = match table.lookup(path) {
                Some(e) => e.locations().to_vec(),
                None => continue,
            };
            let mut candidates: Vec<NodeId> = eligible
                .into_iter()
                .filter(|n| !current.contains(n))
                .collect();
            candidates.sort_by(|a, b| {
                specs[b.index()]
                    .weight()
                    .partial_cmp(&specs[a.index()].weight())
                    .expect("finite")
            });
            for n in candidates
                .into_iter()
                .take(copies.saturating_sub(current.len()))
            {
                table
                    .add_location(path, n)
                    .expect("entry exists: looked up above");
            }
        }
    }
}

/// Pins [`cpms_model::Priority::Critical`] content onto the most capable nodes and
/// replicates it `copies` ways — §1.2's differentiated QoS: "place critical
/// content on more powerful machines … provide differentiated QoS
/// according to the variety of content."
///
/// Existing placements for critical objects are *replaced*: the old
/// locations are dropped in favour of nodes drawn from the strongest
/// half of the capable nodes, rotating between objects so the (hot)
/// critical set does not all pile onto one fixed machine.
/// Mutable critical objects keep a single copy (§4).
///
/// # Panics
///
/// Panics if `copies` is 0.
pub fn pin_critical_content(
    table: &mut UrlTable,
    corpus: &Corpus,
    specs: &[NodeSpec],
    copies: usize,
) {
    use cpms_model::Priority;
    assert!(copies >= 1, "copies must be at least 1");
    let mut rotation = 0usize;
    for (id, item) in corpus.iter() {
        if item.priority() != Priority::Critical {
            continue;
        }
        let path = item.path();
        let Some(entry) = table.lookup(path) else {
            continue;
        };
        let _ = id;
        let old: Vec<NodeId> = entry.locations().to_vec();
        // Most capable nodes first, filtered by capability.
        let mut candidates: Vec<NodeId> = (0..specs.len())
            .map(|i| NodeId(i as u16))
            .filter(|n| specs[n.index()].can_serve_kind(item.kind()))
            .collect();
        candidates.sort_by(|a, b| {
            specs[b.index()]
                .weight()
                .partial_cmp(&specs[a.index()].weight())
                .expect("finite")
        });
        let target_copies = if item.is_mutable() { 1 } else { copies };
        // Critical content is the hottest content; spreading it across
        // the strong tier (rather than the same top nodes every time)
        // is what actually buys it better queueing behaviour.
        let pool = candidates
            .len()
            .min(candidates.len().div_ceil(2).max(target_copies));
        let new: Vec<NodeId> = (0..target_copies.min(pool))
            .map(|k| candidates[(rotation + k) % pool])
            .collect();
        rotation = rotation.wrapping_add(1);
        if new.is_empty() {
            continue;
        }
        for &n in &new {
            let _ = table.add_location(path, n);
        }
        for &n in &old {
            if !new.contains(&n) {
                let _ = table.remove_location(path, n);
            }
        }
    }
}

fn build_table<F>(corpus: &Corpus, mut locate: F) -> UrlTable
where
    F: FnMut(cpms_model::ContentId, &cpms_model::ContentItem) -> Vec<NodeId>,
{
    let mut table = UrlTable::new();
    for (id, item) in corpus.iter() {
        let locations = locate(id, item);
        let entry = UrlEntry::new(id, item.kind(), item.size_bytes())
            .with_priority(item.priority())
            .with_locations(locations);
        match table.insert(item.path().clone(), entry) {
            Ok(()) => {}
            Err(TableError::AlreadyExists { .. }) => {
                unreachable!("corpus paths are unique")
            }
            Err(e) => panic!("corpus produced an invalid table: {e}"),
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_workload::CorpusBuilder;

    fn corpus() -> Corpus {
        CorpusBuilder::small_site().seed(3).build()
    }

    #[test]
    fn full_replication_puts_everything_everywhere() {
        let c = corpus();
        let t = replicate_everywhere(&c, 4);
        assert_eq!(t.len(), c.len());
        for (_, e) in t.iter() {
            assert_eq!(e.replica_count(), 4);
        }
    }

    #[test]
    fn partition_assigns_single_locations_for_data() {
        let c = corpus();
        let specs = NodeSpec::paper_testbed();
        let t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        assert_eq!(t.len(), c.len());
        for (_, e) in t.iter() {
            if e.kind().is_dynamic() {
                // scripts are installed on their whole host group
                assert!(e.replica_count() >= 1);
            } else {
                assert_eq!(e.replica_count(), 1, "data objects are partitioned");
            }
        }
    }

    #[test]
    fn partition_respects_type_rules() {
        let c = corpus();
        let specs = NodeSpec::paper_testbed();
        let t = partition_by_type(&c, &specs, StaticSpread::SegregateDynamic);
        let max_disk = specs.iter().map(NodeSpec::disk_bytes).max().unwrap();
        for (path, e) in t.iter() {
            let node = e.locations()[0];
            let spec = &specs[node.index()];
            match e.kind() {
                ContentKind::Asp => {
                    assert!(
                        spec.can_serve_kind(ContentKind::Asp),
                        "ASP on IIS only: {path}"
                    )
                }
                ContentKind::Video => {
                    assert_eq!(spec.disk_bytes(), max_disk, "video on big disks: {path}")
                }
                ContentKind::Cgi => {
                    assert!(spec.cpu_mhz() >= 350, "CGI on fast CPUs: {path}")
                }
                _ => {}
            }
        }
    }

    #[test]
    fn segregation_reduces_static_on_dynamic_hosts() {
        let c = CorpusBuilder::paper_site().seed(7).build();
        let specs = NodeSpec::paper_testbed();
        let spread_share = |spread: StaticSpread| -> f64 {
            let t = partition_by_type(&c, &specs, spread);
            let mut dynamic_hosts = std::collections::HashSet::new();
            for (_, e) in t.iter() {
                if e.kind().is_dynamic() {
                    dynamic_hosts.extend(e.locations().iter().copied());
                }
            }
            assert!(!dynamic_hosts.is_empty());
            let (mut on_dynamic, mut total) = (0usize, 0usize);
            for (_, e) in t.iter() {
                if matches!(
                    e.kind(),
                    ContentKind::StaticHtml | ContentKind::Image | ContentKind::OtherStatic
                ) {
                    total += 1;
                    if dynamic_hosts.contains(&e.locations()[0]) {
                        on_dynamic += 1;
                    }
                }
            }
            on_dynamic as f64 / total as f64
        };
        let all = spread_share(StaticSpread::AllNodes);
        let seg = spread_share(StaticSpread::SegregateDynamic);
        assert!(
            seg < all - 0.1,
            "segregation must shift static off dynamic hosts: {seg:.2} vs {all:.2}"
        );
    }

    #[test]
    fn all_nodes_spread_uses_whole_cluster_for_static() {
        let c = CorpusBuilder::paper_site().seed(4).build();
        let specs = NodeSpec::paper_testbed();
        let t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        let mut static_hosts = std::collections::HashSet::new();
        for (_, e) in t.iter() {
            if !e.kind().is_dynamic() && e.kind() != ContentKind::Video {
                static_hosts.insert(e.locations()[0]);
            }
        }
        assert_eq!(static_hosts.len(), specs.len(), "all nodes host static");
    }

    #[test]
    fn capacity_weighting_skews_assignment() {
        let c = CorpusBuilder::paper_site().seed(5).build();
        let specs = NodeSpec::paper_testbed();
        let t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        let mut bytes = vec![0u64; specs.len()];
        for (_, e) in t.iter() {
            if !e.kind().is_dynamic() && e.kind() != ContentKind::Video {
                bytes[e.locations()[0].index()] += e.size_bytes();
            }
        }
        // a 350 MHz SCSI node should carry more static bytes than a
        // 150 MHz IDE node
        assert!(bytes[5] > bytes[0], "{bytes:?}");
    }

    #[test]
    fn hot_replication_adds_copies() {
        let c = corpus();
        let specs = NodeSpec::paper_testbed();
        let mut t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        replicate_hot_content(&mut t, &c, &specs, 0.10, 3);
        let replicated = t.iter().filter(|(_, e)| e.replica_count() > 1).count();
        assert!(replicated > 0, "some objects gained replicas");
        // every ASP replica is on an IIS node
        for (_, e) in t.iter() {
            if e.kind() == ContentKind::Asp {
                for &n in e.locations() {
                    assert!(specs[n.index()].can_serve_kind(ContentKind::Asp));
                }
            }
        }
    }

    #[test]
    fn hot_replication_skips_mutable() {
        let c = CorpusBuilder::small_site()
            .seed(6)
            .mutable_fraction(1.0)
            .build();
        let specs = NodeSpec::paper_testbed();
        let mut t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        replicate_hot_content(&mut t, &c, &specs, 1.0, 4);
        for (path, e) in t.iter() {
            assert_eq!(
                e.replica_count(),
                1,
                "mutable objects stay single-copy: {path}"
            );
        }
    }

    #[test]
    fn critical_content_pinned_to_strongest_nodes() {
        use cpms_model::Priority;
        let c = CorpusBuilder::paper_site()
            .seed(9)
            .critical_fraction(0.05)
            .build();
        let specs = NodeSpec::paper_testbed();
        let mut t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        pin_critical_content(&mut t, &c, &specs, 2);
        let max_weight = specs.iter().map(NodeSpec::weight).fold(0.0f64, f64::max);
        let mut checked = 0;
        for (_, item) in c.iter() {
            if item.priority() != Priority::Critical || item.is_mutable() {
                continue;
            }
            let entry = t.lookup(item.path()).expect("present");
            assert_eq!(entry.replica_count(), 2, "critical gets two copies");
            for &n in entry.locations() {
                assert!(
                    specs[n.index()].weight() >= max_weight * 0.99
                        || specs[n.index()].can_serve_kind(item.kind()),
                    "critical copy on weak node {n}"
                );
            }
            checked += 1;
        }
        assert!(checked > 0, "corpus has critical objects");
    }

    #[test]
    fn critical_mutable_stays_single_copy() {
        use cpms_model::Priority;
        let c = CorpusBuilder::small_site()
            .seed(10)
            .critical_fraction(0.2)
            .mutable_fraction(0.2)
            .build();
        let specs = NodeSpec::paper_testbed();
        let mut t = partition_by_type(&c, &specs, StaticSpread::AllNodes);
        pin_critical_content(&mut t, &c, &specs, 3);
        for (_, item) in c.iter() {
            if item.priority() == Priority::Critical && item.is_mutable() {
                let entry = t.lookup(item.path()).expect("present");
                assert_eq!(entry.replica_count(), 1, "{}", item.path());
            }
        }
    }

    #[test]
    fn shared_nfs_equals_full_replication_locations() {
        let c = corpus();
        let a = shared_nfs(&c, 3);
        let b = replicate_everywhere(&c, 3);
        assert_eq!(a.len(), b.len());
    }
}
