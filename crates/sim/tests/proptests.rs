//! Property tests for the simulator: conservation, determinism, and
//! sanity of reports across randomized configurations.

use cpms_dispatch::{ContentAwareRouter, RoundRobin, WeightedLeastConnections};
use cpms_model::{NodeSpec, SimDuration};
use cpms_sim::{placement, SimConfig, Simulation};
use cpms_workload::{CorpusBuilder, WorkloadSpec};
use proptest::prelude::*;

fn specs_strategy() -> impl Strategy<Value = Vec<NodeSpec>> {
    prop::collection::vec(
        prop_oneof![
            Just(NodeSpec::testbed_150()),
            Just(NodeSpec::testbed_200()),
            Just(NodeSpec::testbed_350()),
        ],
        2..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Requests are conserved across windows for random clusters, client
    /// counts, seeds, and routers.
    #[test]
    fn request_conservation(
        specs in specs_strategy(),
        clients in 1u32..24,
        seed in 0u64..1000,
        router_pick in 0u8..3,
    ) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let table = placement::replicate_everywhere(&corpus, specs.len());
        let router: Box<dyn cpms_dispatch::Router> = match router_pick {
            0 => Box::new(WeightedLeastConnections::new()),
            1 => Box::new(RoundRobin::new()),
            _ => Box::new(ContentAwareRouter::new(128)),
        };
        let mut config = SimConfig::builder();
        config.nodes(specs).clients(clients).seed(seed);
        let mut sim = Simulation::new(
            config.build(),
            &corpus,
            table,
            router,
            &WorkloadSpec::workload_a(),
        );
        let mut carried = 0u64;
        for _ in 0..3 {
            let r = sim.run_window(SimDuration::from_secs(2));
            prop_assert_eq!(
                r.issued + carried,
                r.completed + r.misroutes + r.in_flight_at_end,
                "window conservation"
            );
            prop_assert!(r.in_flight_at_end <= clients as u64);
            carried = r.in_flight_at_end;
            // Sanity: utilizations in range.
            for n in &r.nodes {
                prop_assert!((0.0..=1.0).contains(&n.cpu_utilization));
                prop_assert!((0.0..=1.0).contains(&n.disk_utilization));
                prop_assert!((0.0..=1.0).contains(&n.nic_utilization));
                prop_assert!((0.0..=1.0).contains(&n.cache_hit_rate));
            }
            // Per-class completions sum to the total.
            let by_class: u64 = r.classes.iter().map(|c| c.completed).sum();
            prop_assert_eq!(by_class, r.completed);
            // Load samples cover completions exactly.
            prop_assert_eq!(r.load_samples.len() as u64, r.completed);
        }
    }

    /// Two simulations with identical inputs produce identical reports.
    #[test]
    fn determinism(seed in 0u64..500, clients in 1u32..16) {
        let corpus = CorpusBuilder::small_site().seed(3).build();
        let run = || {
            let table = placement::partition_by_type(
                &corpus,
                &NodeSpec::paper_testbed(),
                placement::StaticSpread::AllNodes,
            );
            let mut config = SimConfig::builder();
            config.nodes(NodeSpec::paper_testbed()).clients(clients).seed(seed);
            let mut sim = Simulation::new(
                config.build(),
                &corpus,
                table,
                Box::new(ContentAwareRouter::new(64)),
                &WorkloadSpec::workload_a(),
            );
            sim.run_window(SimDuration::from_secs(3))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.issued, b.issued);
        prop_assert_eq!(&a.classes, &b.classes);
        prop_assert_eq!(&a.nodes, &b.nodes);
        prop_assert_eq!(a.load_samples.len(), b.load_samples.len());
    }

    /// Response times are strictly positive and mean <= p95 per class.
    #[test]
    fn response_time_sanity(seed in 0u64..200) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let table = placement::replicate_everywhere(&corpus, 3);
        let mut config = SimConfig::builder();
        config.nodes(vec![NodeSpec::testbed_350(); 3]).clients(6).seed(seed);
        let mut sim = Simulation::new(
            config.build(),
            &corpus,
            table,
            Box::new(WeightedLeastConnections::new()),
            &WorkloadSpec::workload_b(),
        );
        let r = sim.run_window(SimDuration::from_secs(4));
        for c in &r.classes {
            prop_assert!(c.mean_response_ms > 0.0, "{:?}", c);
            prop_assert!(c.p50_response_ms <= c.p95_response_ms + 1e-9);
            // mean can exceed p50 on skewed data, but never p95 by much
            // (p95 bounds all but the extreme tail).
            prop_assert!(
                c.mean_response_ms <= c.p95_response_ms * 2.0,
                "mean {} vs p95 {}",
                c.mean_response_ms,
                c.p95_response_ms
            );
        }
    }
}
