//! Copy-on-write snapshot publication of the URL table.
//!
//! The paper's distributor consults the URL table on *every* request
//! (§5.2 measures ~4.32 µs per lookup at peak), while the controller
//! mutates it only on management operations — a read-mostly workload
//! where a single `RwLock<UrlTable>` makes every worker's lookup contend
//! on one cache line. This module replaces the coarse lock with
//! immutable snapshots:
//!
//! * The [`TablePublisher`] (held by the controller) owns the only
//!   mutable path. Each management mutation clones the current table,
//!   applies the change, and publishes the result as a fresh
//!   `Arc<UrlTable>` with a generation tag.
//! * Any number of [`SnapshotHandle`]s (one per distributor worker)
//!   observe publications. The fast path is a single atomic generation
//!   load; only when the generation moved does a reader touch the lock
//!   to re-pin the new `Arc`.
//! * A [`SnapshotReader`] pins a snapshot and routes lookups through a
//!   **private** [`LookupCache`], so workers share no mutable state at
//!   all on the hot path — the cache's existing generation check
//!   doubles as the staleness detector across snapshots.
//!
//! Published snapshots are immutable: a reader mid-lookup keeps its
//! pinned `Arc` alive even if the publisher swaps and drops every other
//! reference, so readers are wait-free with respect to writers (they
//! never block a publication and a publication never invalidates a
//! borrow).

use crate::cache::LookupCache;
use crate::entry::UrlEntry;
use crate::table::UrlTable;
use cpms_model::UrlPath;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// State shared between the publisher and every handle: the current
/// snapshot plus its generation mirrored into an atomic so readers can
/// detect publications without touching the lock.
#[derive(Debug)]
struct Shared {
    current: RwLock<Arc<UrlTable>>,
    generation: AtomicU64,
}

/// The single writer: clones, mutates, and atomically publishes URL-table
/// snapshots. Held by the management controller ("the controller will
/// change the URL table to adapt to these changes").
#[derive(Debug)]
pub struct TablePublisher {
    shared: Arc<Shared>,
}

impl TablePublisher {
    /// Publishes `table` as the initial snapshot.
    pub fn new(table: UrlTable) -> Self {
        let generation = table.generation();
        TablePublisher {
            shared: Arc::new(Shared {
                current: RwLock::new(Arc::new(table)),
                generation: AtomicU64::new(generation),
            }),
        }
    }

    /// A handle for distributor workers to observe publications.
    pub fn handle(&self) -> SnapshotHandle {
        SnapshotHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// A second publisher over the same shared snapshot state, so two
    /// writers (e.g. the management controller and the proxy's hit-ledger
    /// flush) can mutate one logical table. Safe because `update` holds
    /// the shared write lock across the whole clone → mutate → publish
    /// sequence: concurrent updates from sibling publishers serialize
    /// rather than losing whichever publishes first.
    pub fn share(&self) -> TablePublisher {
        TablePublisher {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Arc<UrlTable> {
        Arc::clone(&self.shared.current.read())
    }

    /// The generation of the current snapshot.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// Applies `mutate` copy-on-write: clones the current table, runs the
    /// closure on the clone, and publishes the result — swap first, then
    /// generation tag, so a reader that observes the new generation is
    /// guaranteed to load a snapshot at least that new.
    ///
    /// The closure's return value is passed through, so fallible table
    /// operations compose directly:
    /// `publisher.update(|t| t.insert(path, entry))?`. The new snapshot is
    /// published even if the closure returns an error, matching the
    /// in-place semantics this replaces (a partially applied management
    /// operation must still stop the distributor from routing to copies
    /// that no longer exist).
    ///
    /// The write lock is held across the whole clone → mutate → publish
    /// sequence, so concurrent `update` calls (e.g. a management mutation
    /// racing a hit-ledger flush) serialize instead of both cloning the
    /// same base and silently discarding whichever publishes first. As a
    /// consequence, `mutate` must not call back into this publisher.
    pub fn update<T>(&self, mutate: impl FnOnce(&mut UrlTable) -> T) -> T {
        let mut current = self.shared.current.write();
        let mut table = UrlTable::clone(&current);
        let result = mutate(&mut table);
        let generation = table.generation();
        *current = Arc::new(table);
        self.shared.generation.store(generation, Ordering::Release);
        result
    }

    /// Publishes a fully built table, replacing the current snapshot.
    pub fn publish(&self, table: UrlTable) {
        let generation = table.generation();
        let mut current = self.shared.current.write();
        *current = Arc::new(table);
        // Store the generation while still holding the lock so table and
        // generation updates from racing publishers cannot interleave.
        self.shared.generation.store(generation, Ordering::Release);
    }
}

impl Default for TablePublisher {
    fn default() -> Self {
        TablePublisher::new(UrlTable::new())
    }
}

/// A cloneable, read-only view of the published snapshot sequence. One
/// per distributor worker.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    shared: Arc<Shared>,
}

impl SnapshotHandle {
    /// The current snapshot.
    pub fn load(&self) -> Arc<UrlTable> {
        Arc::clone(&self.shared.current.read())
    }

    /// The generation of the latest publication — a single atomic load,
    /// the only thing on a worker's per-request fast path.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// A reader pinning the current snapshot, with a private lookup cache
    /// of `cache_entries` records.
    pub fn reader(&self, cache_entries: u64) -> SnapshotReader {
        // Generation first, then table (matching `refresh`): a publication
        // landing in between pins a too-new table under a too-old tag, so
        // the next refresh re-pins. The opposite order would tag a stale
        // table with the new generation and never notice.
        let pinned_generation = self.generation();
        SnapshotReader {
            pinned: self.load(),
            pinned_generation,
            handle: self.clone(),
            cache: LookupCache::new(cache_entries),
            repins: 0,
        }
    }
}

/// A distributor worker's view: a pinned snapshot plus a private
/// [`LookupCache`]. Lookups are wait-free against the publisher — the
/// per-request cost is one atomic generation load, and the lock is
/// touched only to re-pin after an actual publication.
#[derive(Debug)]
pub struct SnapshotReader {
    handle: SnapshotHandle,
    pinned: Arc<UrlTable>,
    pinned_generation: u64,
    cache: LookupCache,
    repins: u64,
}

impl SnapshotReader {
    /// Re-pins if a newer snapshot was published, then returns the pinned
    /// table.
    pub fn table(&mut self) -> &UrlTable {
        self.refresh();
        &self.pinned
    }

    /// Looks `path` up in the freshest published snapshot, through this
    /// reader's private cache. Stale cached records are detected by the
    /// table's own generation counter, exactly as with a directly mutated
    /// table.
    pub fn lookup(&mut self, path: &UrlPath) -> Option<Arc<UrlEntry>> {
        self.refresh();
        self.cache.lookup(&self.pinned, path)
    }

    /// The generation of the snapshot this reader currently pins.
    pub fn pinned_generation(&self) -> u64 {
        self.pinned_generation
    }

    /// Hit rate of the private lookup cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Raw hits of the private lookup cache (including hits on stale
    /// records that were then refreshed).
    pub fn cache_hits(&self) -> u64 {
        self.cache.raw_hits()
    }

    /// Raw misses of the private lookup cache.
    pub fn cache_misses(&self) -> u64 {
        self.cache.raw_misses()
    }

    /// Times this reader re-pinned because a newer generation had been
    /// published — the cost the snapshot protocol pays off the fast path.
    pub fn repins(&self) -> u64 {
        self.repins
    }

    /// Table-wide statistics for the (freshest) pinned snapshot, with
    /// this reader's cache-hit and re-pin observations folded in — the
    /// full §5.2 measurement set from one call.
    pub fn stats(&mut self) -> crate::stats::TableStats {
        self.refresh();
        let mut stats = crate::stats::TableStats::collect(&self.pinned);
        stats.cache_hits = self.cache.raw_hits();
        stats.cache_misses = self.cache.raw_misses();
        stats.repins = self.repins;
        stats
    }

    fn refresh(&mut self) {
        let generation = self.handle.generation();
        if generation != self.pinned_generation {
            self.pinned = self.handle.load();
            self.pinned_generation = generation;
            self.repins += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind, NodeId};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn e(id: u32) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 64).with_locations([NodeId(0)])
    }

    #[test]
    fn publish_is_visible_to_handles() {
        let publisher = TablePublisher::default();
        let handle = publisher.handle();
        assert!(handle.load().is_empty());
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        assert_eq!(handle.load().len(), 1);
        assert!(handle.load().lookup(&p("/a")).is_some());
    }

    #[test]
    fn snapshots_are_immutable_views() {
        let publisher = TablePublisher::new(UrlTable::new());
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let before = publisher.snapshot();
        publisher.update(|t| t.remove(&p("/a"))).unwrap();
        // The old snapshot still routes /a; the new one does not.
        assert!(before.lookup(&p("/a")).is_some());
        assert!(publisher.snapshot().lookup(&p("/a")).is_none());
    }

    #[test]
    fn generation_tracks_publications() {
        let publisher = TablePublisher::default();
        let handle = publisher.handle();
        let g0 = handle.generation();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let g1 = handle.generation();
        assert!(g1 > g0);
        // A hit bump publishes a snapshot but is not a routing change.
        publisher.update(|t| t.record_hits(&p("/a"), 3));
        assert_eq!(handle.generation(), g1);
    }

    #[test]
    fn reader_repins_after_publication() {
        let publisher = TablePublisher::default();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let mut reader = publisher.handle().reader(16);
        assert_eq!(reader.lookup(&p("/a")).unwrap().content(), ContentId(1));
        // warm cache, then republish with a different location set
        publisher
            .update(|t| t.add_location(&p("/a"), NodeId(7)))
            .unwrap();
        let entry = reader.lookup(&p("/a")).unwrap();
        assert_eq!(entry.locations(), [NodeId(0), NodeId(7)]);
        assert_eq!(reader.pinned_generation(), publisher.generation());
    }

    #[test]
    fn reader_survives_publisher_swapping_under_it() {
        let publisher = TablePublisher::default();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let mut reader = publisher.handle().reader(16);
        let pinned = reader.lookup(&p("/a")).unwrap();
        for i in 0..10 {
            publisher
                .update(|t| t.insert(p(&format!("/x{i}")), e(i)))
                .unwrap();
        }
        // The entry obtained from the old pin is still valid.
        assert_eq!(pinned.content(), ContentId(1));
        // And the reader sees the newest snapshot on its next lookup.
        assert_eq!(reader.table().len(), 11);
    }

    #[test]
    fn update_passes_errors_through_but_still_publishes() {
        let publisher = TablePublisher::default();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let err = publisher.update(|t| t.insert(p("/a"), e(2)));
        assert!(err.is_err());
        assert_eq!(
            publisher.snapshot().lookup(&p("/a")).unwrap().content(),
            ContentId(1),
            "failed insert left the record alone"
        );
    }

    #[test]
    fn reader_stats_fold_in_cache_and_repin_observations() {
        let publisher = TablePublisher::default();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        let mut reader = publisher.handle().reader(16);
        reader.lookup(&p("/a")); // miss, fill
        reader.lookup(&p("/a")); // hit
        publisher.update(|t| t.insert(p("/b"), e(2))).unwrap();
        reader.lookup(&p("/b")); // re-pin + miss

        assert_eq!(reader.cache_hits(), 1);
        assert_eq!(reader.cache_misses(), 2);
        assert_eq!(reader.repins(), 1);

        let stats = reader.stats();
        assert_eq!(stats.entries, 2, "stats cover the freshest snapshot");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.repins, 1);
        assert!((stats.cache_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(stats.memory_bytes > 0);
    }

    #[test]
    fn shared_publishers_mutate_one_table() {
        let publisher = TablePublisher::default();
        let sibling = publisher.share();
        let handle = publisher.handle();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        sibling.update(|t| t.insert(p("/b"), e(2))).unwrap();
        // Both writes landed in the same snapshot sequence.
        let table = handle.load();
        assert!(table.lookup(&p("/a")).is_some());
        assert!(table.lookup(&p("/b")).is_some());
        assert_eq!(publisher.generation(), sibling.generation());
    }

    #[test]
    fn handles_are_cloneable_and_agree() {
        let publisher = TablePublisher::default();
        let a = publisher.handle();
        let b = a.clone();
        publisher.update(|t| t.insert(p("/a"), e(1))).unwrap();
        assert_eq!(a.generation(), b.generation());
        assert!(Arc::ptr_eq(&a.load(), &b.load()));
    }
}
