//! The recently-accessed-entry cache in front of the URL table.
//!
//! §5.2: "we also implemented a mechanism to cache recently accessed
//! entries, which is a proven technique for demultiplexing speedup"
//! (citing Mogul's *network locality at the scale of processes*).
//!
//! Invalidation uses the table's generation counter: each cached record
//! remembers the generation at which it was cached; any routing-relevant
//! table mutation bumps the generation, so stale records are detected in
//! O(1) at lookup time without tracking which paths changed.

use crate::entry::UrlEntry;
use crate::lru::LruCache;
use crate::table::UrlTable;
use cpms_model::UrlPath;
use std::sync::Arc;

/// An LRU cache of recently routed URL-table records.
#[derive(Debug)]
pub struct LookupCache {
    cache: LruCache<UrlPath, (u64, Arc<UrlEntry>)>,
}

impl LookupCache {
    /// Creates a cache holding up to `max_entries` records.
    pub fn new(max_entries: u64) -> Self {
        LookupCache {
            cache: LruCache::new(max_entries),
        }
    }

    /// Looks up `path`, consulting the cache first and falling back to the
    /// table on miss or staleness. Returns a shared handle to the record
    /// (the distributor immediately uses it for a routing decision).
    ///
    /// Records are cached behind an `Arc`: a table miss deep-clones the
    /// record exactly once, and every subsequent cache hit is a pointer
    /// bump rather than a clone of the whole entry (locations vector
    /// included).
    ///
    /// Stale entries (cached before the table's current generation) are
    /// treated as misses and refreshed.
    pub fn lookup(&mut self, table: &UrlTable, path: &UrlPath) -> Option<Arc<UrlEntry>> {
        let generation = table.generation();
        if let Some((cached_gen, entry)) = self.cache.get(path) {
            if *cached_gen == generation {
                return Some(Arc::clone(entry));
            }
        }
        match table.lookup(path) {
            Some(entry) => {
                let entry = Arc::new(entry.clone());
                self.cache
                    .insert(path.clone(), (generation, Arc::clone(&entry)), 1);
                Some(entry)
            }
            None => {
                // Negative results are not cached: the paper's distributor
                // rejects unknown URLs outright and they are rare.
                self.cache.remove(path);
                None
            }
        }
    }

    /// Number of cached records (including possibly stale ones that will be
    /// refreshed on next touch).
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Raw cache hits (including hits on stale entries that were then
    /// refreshed).
    pub fn raw_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Raw cache misses.
    pub fn raw_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Drops every cached record.
    pub fn clear(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind, NodeId};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn table_with(paths: &[&str]) -> UrlTable {
        let mut t = UrlTable::new();
        for (i, s) in paths.iter().enumerate() {
            t.insert(
                p(s),
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 100)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn caches_and_hits() {
        let t = table_with(&["/a.html", "/b.html"]);
        let mut c = LookupCache::new(16);
        assert!(c.lookup(&t, &p("/a.html")).is_some()); // miss, fill
        assert!(c.lookup(&t, &p("/a.html")).is_some()); // hit
        assert_eq!(c.raw_hits(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hits_share_one_allocation() {
        let t = table_with(&["/a.html"]);
        let mut c = LookupCache::new(16);
        let first = c.lookup(&t, &p("/a.html")).unwrap();
        let second = c.lookup(&t, &p("/a.html")).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "a hit returns the cached record, not a fresh clone"
        );
    }

    #[test]
    fn miss_on_absent_path() {
        let t = table_with(&["/a.html"]);
        let mut c = LookupCache::new(16);
        assert!(c.lookup(&t, &p("/zzz")).is_none());
        assert!(c.is_empty(), "negative results are not cached");
    }

    #[test]
    fn generation_invalidates() {
        let mut t = table_with(&["/a.html"]);
        let mut c = LookupCache::new(16);
        let before = c.lookup(&t, &p("/a.html")).unwrap();
        assert_eq!(before.locations(), [NodeId(0)]);

        // Replicate the object to node 7: routing data changed.
        t.add_location(&p("/a.html"), NodeId(7)).unwrap();
        let after = c.lookup(&t, &p("/a.html")).unwrap();
        assert_eq!(after.locations(), [NodeId(0), NodeId(7)]);
    }

    #[test]
    fn removal_invalidates() {
        let mut t = table_with(&["/a.html"]);
        let mut c = LookupCache::new(16);
        c.lookup(&t, &p("/a.html")).unwrap();
        t.remove(&p("/a.html")).unwrap();
        assert!(c.lookup(&t, &p("/a.html")).is_none());
    }

    #[test]
    fn hit_count_updates_do_not_invalidate() {
        let mut t = table_with(&["/a.html"]);
        let mut c = LookupCache::new(16);
        c.lookup(&t, &p("/a.html")).unwrap();
        t.lookup_and_hit(&p("/a.html")).unwrap();
        c.lookup(&t, &p("/a.html")).unwrap();
        assert_eq!(c.raw_hits(), 1, "second lookup is a (fresh) cache hit");
    }

    #[test]
    fn bounded_size() {
        let paths: Vec<String> = (0..100).map(|i| format!("/f{i}.html")).collect();
        let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
        let t = table_with(&refs);
        let mut c = LookupCache::new(10);
        for s in &paths {
            c.lookup(&t, &p(s));
        }
        assert!(c.len() <= 10);
    }
}
