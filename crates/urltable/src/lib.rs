//! # cpms-urltable
//!
//! The paper's **URL table** (§2.2, §5.2): the data structure the
//! content-aware distributor consults on every HTTP request to find which
//! back-end nodes host the requested object.
//!
//! > "we implemented the URL table as a multi-level hash table, in which
//! > each level corresponds to a level in the content tree. Each item of
//! > content in the Web site has a record corresponding to it in the URL
//! > table. ... we also implemented a mechanism to cache recently accessed
//! > entries, which is a proven technique for demultiplexing speedup."
//!
//! This crate provides:
//!
//! - [`UrlTable`] — the multi-level hash table (a hash-trie keyed by path
//!   segments) with per-object records ([`UrlEntry`]: locations, size,
//!   priority, hit count),
//! - [`LookupCache`] — the recently-accessed-entry cache, built on a
//!   generic O(1) [`lru::LruCache`],
//! - [`TablePublisher`] / [`SnapshotHandle`] / [`SnapshotReader`] — the
//!   copy-on-write snapshot protocol that lets many distributor workers
//!   read the table wait-free while the controller publishes mutations
//!   (see `snapshot`),
//! - memory-footprint accounting reproducing the §5.2 measurement
//!   (~8 700 objects ⇒ ~260 KB).
//!
//! # Example
//!
//! ```
//! use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
//! use cpms_urltable::{UrlTable, UrlEntry};
//!
//! let mut table = UrlTable::new();
//! let path: UrlPath = "/images/logo.gif".parse().unwrap();
//! table.insert(
//!     path.clone(),
//!     UrlEntry::new(ContentId(0), ContentKind::Image, 4_096)
//!         .with_locations([NodeId(1), NodeId(3)]),
//! )?;
//!
//! let entry = table.lookup(&path).expect("present");
//! assert_eq!(entry.locations(), [NodeId(1), NodeId(3)]);
//! # Ok::<(), cpms_urltable::TableError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod entry;
pub mod lru;
pub mod snapshot;
pub mod stats;
pub mod table;

pub use cache::LookupCache;
pub use entry::UrlEntry;
pub use snapshot::{SnapshotHandle, SnapshotReader, TablePublisher};
pub use stats::TableStats;
pub use table::{TableError, UrlTable};
