//! Per-object records of the URL table.

use cpms_model::{ContentId, ContentKind, NodeId, Priority};
use serde::{Deserialize, Serialize};

/// The record the URL table keeps per content object.
///
/// The paper (§2.2): "The URL table holds content-related information (e.g.,
/// location of the document, document sizes, priority, hits, etc.), which
/// helps the distributor to make the routing decisions."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UrlEntry {
    content: ContentId,
    kind: ContentKind,
    size_bytes: u64,
    priority: Priority,
    locations: Vec<NodeId>,
    hits: u64,
    checksum: u64,
}

impl UrlEntry {
    /// Creates an entry with no locations, normal priority, zero hits.
    pub fn new(content: ContentId, kind: ContentKind, size_bytes: u64) -> Self {
        UrlEntry {
            content,
            kind,
            size_bytes,
            priority: Priority::Normal,
            locations: Vec::new(),
            hits: 0,
            checksum: 0,
        }
    }

    /// Sets the hosting nodes (builder-style). Duplicates are removed,
    /// preserving first occurrence order.
    #[must_use]
    pub fn with_locations<I: IntoIterator<Item = NodeId>>(mut self, locations: I) -> Self {
        self.locations.clear();
        for n in locations {
            if !self.locations.contains(&n) {
                self.locations.push(n);
            }
        }
        self
    }

    /// Sets the priority (builder-style).
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the whole-object FNV-1a checksum recorded when the copy was
    /// committed to a node's content store (builder-style). `0` means
    /// "unknown" — entries published before any bytes were shipped.
    #[must_use]
    pub fn with_checksum(mut self, checksum: u64) -> Self {
        self.checksum = checksum;
        self
    }

    /// The identity of the content object.
    pub fn content(&self) -> ContentId {
        self.content
    }

    /// The content kind.
    pub fn kind(&self) -> ContentKind {
        self.kind
    }

    /// Document size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Administrative priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Nodes currently hosting a copy of the object, in insertion order.
    pub fn locations(&self) -> &[NodeId] {
        &self.locations
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.locations.len()
    }

    /// Accumulated hit count (bumped by the distributor on each routed
    /// request).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Whole-object checksum of the committed bytes, or `0` if unknown.
    /// The anti-entropy auditor compares this against each hosting
    /// node's store manifest to find stale copies.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Records one routed request.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records `count` routed requests at once (folding in a distributor
    /// worker's batched hit ledger).
    pub fn add_hits(&mut self, count: u64) {
        self.hits += count;
    }

    /// Adds a replica location. Returns `false` if the node already hosted
    /// the object.
    pub fn add_location(&mut self, node: NodeId) -> bool {
        if self.locations.contains(&node) {
            false
        } else {
            self.locations.push(node);
            true
        }
    }

    /// Removes a replica location. Returns `false` if the node did not host
    /// the object. Callers that must preserve availability should check
    /// [`UrlEntry::replica_count`] first — the table itself permits dropping
    /// the last copy (e.g. when deleting content), the *management* layer
    /// enforces the never-drop-last-copy policy.
    pub fn remove_location(&mut self, node: NodeId) -> bool {
        if let Some(pos) = self.locations.iter().position(|n| *n == node) {
            self.locations.remove(pos);
            true
        } else {
            false
        }
    }

    /// Whether `node` hosts a copy.
    pub fn hosted_on(&self, node: NodeId) -> bool {
        self.locations.contains(&node)
    }

    /// Approximate in-memory footprint of this record in bytes, used for the
    /// §5.2 memory accounting. Counts the struct plus the location vector's
    /// heap allocation.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<UrlEntry>() + self.locations.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> UrlEntry {
        UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 2048)
    }

    #[test]
    fn with_locations_dedups() {
        let e = entry().with_locations([NodeId(1), NodeId(2), NodeId(1)]);
        assert_eq!(e.locations(), [NodeId(1), NodeId(2)]);
        assert_eq!(e.replica_count(), 2);
    }

    #[test]
    fn add_remove_location() {
        let mut e = entry();
        assert!(e.add_location(NodeId(1)));
        assert!(!e.add_location(NodeId(1)));
        assert!(e.hosted_on(NodeId(1)));
        assert!(e.remove_location(NodeId(1)));
        assert!(!e.remove_location(NodeId(1)));
        assert!(!e.hosted_on(NodeId(1)));
        assert_eq!(e.replica_count(), 0);
    }

    #[test]
    fn hits_accumulate() {
        let mut e = entry();
        assert_eq!(e.hits(), 0);
        e.record_hit();
        e.record_hit();
        assert_eq!(e.hits(), 2);
    }

    #[test]
    fn memory_accounting_grows_with_replicas() {
        let small = entry().with_locations([NodeId(1)]);
        let large = entry().with_locations((0..64).map(NodeId));
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(small.memory_bytes() >= std::mem::size_of::<UrlEntry>());
    }

    #[test]
    fn builder_priority() {
        let e = entry().with_priority(Priority::Critical);
        assert_eq!(e.priority(), Priority::Critical);
    }

    #[test]
    fn builder_checksum() {
        assert_eq!(entry().checksum(), 0, "unknown by default");
        let e = entry().with_checksum(0xDEAD_BEEF);
        assert_eq!(e.checksum(), 0xDEAD_BEEF);
    }
}
