//! The multi-level hash URL table.
//!
//! Each level of the table is a hash map keyed by one path segment, so a
//! lookup for `/a/b/c.html` does exactly three hash probes — one per level
//! of the content tree, as described in §5.2 of the paper. Every content
//! object has exactly one record ([`UrlEntry`]); directories exist implicitly
//! as interior hash levels.

use crate::entry::UrlEntry;
use cpms_model::{NodeId, UrlPath};
use std::collections::HashMap;
use std::fmt;

/// Errors from URL-table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TableError {
    /// The path has no record in the table.
    NotFound {
        /// The missing path.
        path: UrlPath,
    },
    /// Inserting over an existing record.
    AlreadyExists {
        /// The conflicting path.
        path: UrlPath,
    },
    /// An interior segment of the path is a content record, not a directory
    /// (e.g. inserting `/a/b` when `/a` is a file).
    NotADirectory {
        /// The path whose interior segment is a file.
        path: UrlPath,
    },
    /// The operation is meaningless on the root path.
    IsRoot,
    /// A rename destination is already occupied.
    DestinationExists {
        /// The occupied destination path.
        path: UrlPath,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::NotFound { path } => write!(f, "no record for path {path}"),
            TableError::AlreadyExists { path } => write!(f, "record already exists for {path}"),
            TableError::NotADirectory { path } => {
                write!(f, "interior segment of {path} is a file, not a directory")
            }
            TableError::IsRoot => write!(f, "operation not valid on the root path"),
            TableError::DestinationExists { path } => {
                write!(f, "rename destination {path} already exists")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[derive(Debug, Clone)]
enum Child {
    Dir(Dir),
    Leaf(UrlEntry),
}

#[derive(Debug, Clone, Default)]
struct Dir {
    children: HashMap<String, Child>,
    /// Directory-level default record: requests for paths under this
    /// directory that have no exact record resolve here. Lets an
    /// administrator place a whole subtree with one table entry (plus
    /// per-object exceptions), shrinking the table dramatically.
    default: Option<Box<UrlEntry>>,
}

impl Dir {
    fn is_empty(&self) -> bool {
        self.children.is_empty() && self.default.is_none()
    }
}

/// The content-aware distributor's URL table: a multi-level hash table with
/// one level per level of the content tree.
///
/// Besides exact per-object records, interior directories may carry a
/// *default record* ([`UrlTable::set_dir_default`]): a lookup that finds no
/// exact match resolves to the deepest ancestor default instead. This is
/// how a whole subtree is placed with one entry.
///
/// Mutations bump an internal *generation* counter that lookup caches use
/// for O(1) invalidation (hit-count updates do not invalidate, since they
/// never change routing data).
#[derive(Debug, Clone, Default)]
pub struct UrlTable {
    root: Dir,
    len: usize,
    dir_defaults: usize,
    generation: u64,
}

impl UrlTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        UrlTable::default()
    }

    /// Number of content records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current mutation generation. Changes whenever routing-relevant data
    /// (records, locations) change.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Inserts a record for `path`.
    ///
    /// # Errors
    ///
    /// - [`TableError::IsRoot`] if `path` is `/`,
    /// - [`TableError::AlreadyExists`] if the path already has a record or
    ///   is an interior directory,
    /// - [`TableError::NotADirectory`] if an interior segment is a file.
    pub fn insert(&mut self, path: UrlPath, entry: UrlEntry) -> Result<(), TableError> {
        if path.is_root() {
            return Err(TableError::IsRoot);
        }
        let segments: Vec<&str> = path.segments().collect();
        let (last, interior) = segments.split_last().expect("non-root path has segments");
        let mut dir = &mut self.root;
        for seg in interior {
            dir = match dir
                .children
                .entry((*seg).to_string())
                .or_insert_with(|| Child::Dir(Dir::default()))
            {
                Child::Dir(d) => d,
                Child::Leaf(_) => return Err(TableError::NotADirectory { path: path.clone() }),
            };
        }
        match dir.children.get(*last) {
            Some(_) => Err(TableError::AlreadyExists { path }),
            None => {
                dir.children.insert((*last).to_string(), Child::Leaf(entry));
                self.len += 1;
                self.generation += 1;
                Ok(())
            }
        }
    }

    /// Looks up the record for `path`: the exact record if present, else
    /// the deepest ancestor directory's default record.
    pub fn lookup(&self, path: &UrlPath) -> Option<&UrlEntry> {
        let mut dir = &self.root;
        let mut best_default: Option<&UrlEntry> = self.root.default.as_deref();
        let mut segments = path.segments().peekable();
        while let Some(seg) = segments.next() {
            match dir.children.get(seg) {
                Some(Child::Leaf(e)) if segments.peek().is_none() => return Some(e),
                Some(Child::Dir(d)) => {
                    if let Some(default) = d.default.as_deref() {
                        best_default = Some(default);
                    }
                    dir = d;
                }
                _ => return best_default,
            }
        }
        best_default
    }

    /// Looks up only the exact record for `path`, ignoring directory
    /// defaults.
    pub fn lookup_exact(&self, path: &UrlPath) -> Option<&UrlEntry> {
        match self.find(path)? {
            Child::Leaf(e) => Some(e),
            Child::Dir(_) => None,
        }
    }

    /// Looks up the record for `path` (exact or ancestor default), bumping
    /// its hit counter — what the distributor does per routed request. Hit
    /// bumps do **not** change the table generation.
    pub fn lookup_and_hit(&mut self, path: &UrlPath) -> Option<&UrlEntry> {
        let entry = self.routed_entry_mut(path)?;
        entry.record_hit();
        Some(&*entry)
    }

    /// Adds `count` hits to the record routing `path` (exact or ancestor
    /// default), returning whether a record was found. Used by distributors
    /// that batch per-worker hit ledgers and fold them into the table
    /// periodically instead of taking a write path per request. Like
    /// [`UrlTable::lookup_and_hit`], this does **not** change the
    /// generation.
    pub fn record_hits(&mut self, path: &UrlPath, count: u64) -> bool {
        match self.routed_entry_mut(path) {
            Some(entry) => {
                entry.add_hits(count);
                true
            }
            None => false,
        }
    }

    /// The mutable record that `lookup` would resolve `path` to.
    fn routed_entry_mut(&mut self, path: &UrlPath) -> Option<&mut UrlEntry> {
        // Walk with indices to sidestep the borrow of the returned entry.
        enum Hit {
            Exact,
            Default { depth: usize },
            Miss,
        }
        let mut best_default_depth: Option<usize> = self.root.default.as_ref().map(|_| 0);
        let hit = {
            let mut dir = &self.root;
            let mut segments = path.segments().enumerate().peekable();
            let mut outcome = Hit::Miss;
            while let Some((depth, seg)) = segments.next() {
                match dir.children.get(seg) {
                    Some(Child::Leaf(_)) if segments.peek().is_none() => {
                        outcome = Hit::Exact;
                        break;
                    }
                    Some(Child::Dir(d)) => {
                        if d.default.is_some() {
                            best_default_depth = Some(depth + 1);
                        }
                        dir = d;
                    }
                    _ => break,
                }
            }
            match outcome {
                Hit::Exact => Hit::Exact,
                _ => match best_default_depth {
                    Some(depth) => Hit::Default { depth },
                    None => Hit::Miss,
                },
            }
        };
        match hit {
            Hit::Exact => match self.find_mut(path)? {
                Child::Leaf(e) => Some(e),
                Child::Dir(_) => None,
            },
            Hit::Default { depth } => {
                let mut dir = &mut self.root;
                for seg in path.segments().take(depth) {
                    dir = match dir.children.get_mut(seg) {
                        Some(Child::Dir(d)) => d,
                        _ => unreachable!("default depth walked a directory chain"),
                    };
                }
                Some(dir.default.as_deref_mut().expect("default at this depth"))
            }
            Hit::Miss => None,
        }
    }

    /// Sets (or replaces) the default record of a directory: lookups under
    /// `dir_path` with no exact record resolve to it. The root path sets a
    /// table-wide default.
    ///
    /// # Errors
    ///
    /// [`TableError::NotADirectory`] if `dir_path` (or an interior segment)
    /// is a file.
    pub fn set_dir_default(
        &mut self,
        dir_path: &UrlPath,
        entry: UrlEntry,
    ) -> Result<(), TableError> {
        let mut dir = &mut self.root;
        for seg in dir_path.segments() {
            dir = match dir
                .children
                .entry(seg.to_string())
                .or_insert_with(|| Child::Dir(Dir::default()))
            {
                Child::Dir(d) => d,
                Child::Leaf(_) => {
                    return Err(TableError::NotADirectory {
                        path: dir_path.clone(),
                    })
                }
            };
        }
        if dir.default.replace(Box::new(entry)).is_none() {
            self.dir_defaults += 1;
        }
        self.generation += 1;
        Ok(())
    }

    /// Removes a directory default, returning it.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] if the directory has no default.
    pub fn remove_dir_default(&mut self, dir_path: &UrlPath) -> Result<UrlEntry, TableError> {
        let mut dir = &mut self.root;
        for seg in dir_path.segments() {
            dir = match dir.children.get_mut(seg) {
                Some(Child::Dir(d)) => d,
                _ => {
                    return Err(TableError::NotFound {
                        path: dir_path.clone(),
                    })
                }
            };
        }
        match dir.default.take() {
            Some(entry) => {
                self.dir_defaults -= 1;
                self.generation += 1;
                Ok(*entry)
            }
            None => Err(TableError::NotFound {
                path: dir_path.clone(),
            }),
        }
    }

    /// Number of directory default records.
    pub fn dir_default_count(&self) -> usize {
        self.dir_defaults
    }

    /// Removes the record for `path`, pruning now-empty interior
    /// directories.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] if the path has no record.
    pub fn remove(&mut self, path: &UrlPath) -> Result<UrlEntry, TableError> {
        if path.is_root() {
            return Err(TableError::IsRoot);
        }
        let segments: Vec<String> = path.segments().map(str::to_string).collect();
        let entry = Self::remove_rec(&mut self.root, &segments, path)?;
        self.len -= 1;
        self.generation += 1;
        Ok(entry)
    }

    fn remove_rec(
        dir: &mut Dir,
        segments: &[String],
        path: &UrlPath,
    ) -> Result<UrlEntry, TableError> {
        let (first, rest) = segments.split_first().expect("segments nonempty");
        if rest.is_empty() {
            match dir.children.get(first) {
                Some(Child::Leaf(_)) => match dir.children.remove(first) {
                    Some(Child::Leaf(e)) => Ok(e),
                    _ => unreachable!("checked leaf above"),
                },
                _ => Err(TableError::NotFound { path: path.clone() }),
            }
        } else {
            let child = dir
                .children
                .get_mut(first)
                .ok_or_else(|| TableError::NotFound { path: path.clone() })?;
            match child {
                Child::Dir(sub) => {
                    let entry = Self::remove_rec(sub, rest, path)?;
                    if sub.is_empty() {
                        dir.children.remove(first);
                    }
                    Ok(entry)
                }
                Child::Leaf(_) => Err(TableError::NotFound { path: path.clone() }),
            }
        }
    }

    /// Renames a record or an entire subtree from `from` to `to`.
    ///
    /// # Errors
    ///
    /// - [`TableError::NotFound`] if `from` does not exist (as record or
    ///   directory),
    /// - [`TableError::DestinationExists`] if `to` is occupied,
    /// - [`TableError::NotADirectory`] if `to`'s interior hits a file,
    /// - [`TableError::IsRoot`] for root source or destination.
    pub fn rename(&mut self, from: &UrlPath, to: &UrlPath) -> Result<(), TableError> {
        if from.is_root() || to.is_root() {
            return Err(TableError::IsRoot);
        }
        if self.find(to).is_some() {
            return Err(TableError::DestinationExists { path: to.clone() });
        }
        // Detach the source child (leaf or whole dir).
        let from_segments: Vec<String> = from.segments().map(str::to_string).collect();
        let child = Self::detach(&mut self.root, &from_segments)
            .ok_or_else(|| TableError::NotFound { path: from.clone() })?;
        // Attach at destination.
        let to_segments: Vec<&str> = to.segments().collect();
        let (last, interior) = to_segments.split_last().expect("non-root");
        let mut dir = &mut self.root;
        for seg in interior {
            dir = match dir
                .children
                .entry((*seg).to_string())
                .or_insert_with(|| Child::Dir(Dir::default()))
            {
                Child::Dir(d) => d,
                Child::Leaf(_) => {
                    // Roll back is complex; reject paths through files before
                    // detaching instead. Defensive: restore by re-attaching
                    // at the source (source interior still exists or can be
                    // recreated).
                    Self::attach(&mut self.root, &from_segments, child);
                    return Err(TableError::NotADirectory { path: to.clone() });
                }
            };
        }
        dir.children.insert((*last).to_string(), child);
        self.generation += 1;
        Ok(())
    }

    fn detach(root: &mut Dir, segments: &[String]) -> Option<Child> {
        fn rec(dir: &mut Dir, segments: &[String]) -> Option<Child> {
            let (first, rest) = segments.split_first()?;
            if rest.is_empty() {
                dir.children.remove(first)
            } else {
                let sub = match dir.children.get_mut(first)? {
                    Child::Dir(d) => d,
                    Child::Leaf(_) => return None,
                };
                let detached = rec(sub, rest)?;
                if sub.is_empty() {
                    dir.children.remove(first);
                }
                Some(detached)
            }
        }
        rec(root, segments)
    }

    fn attach(root: &mut Dir, segments: &[String], child: Child) {
        let (last, interior) = segments.split_last().expect("nonempty");
        let mut dir = root;
        for seg in interior {
            dir = match dir
                .children
                .entry(seg.clone())
                .or_insert_with(|| Child::Dir(Dir::default()))
            {
                Child::Dir(d) => d,
                Child::Leaf(_) => return, // cannot restore through a file; drop
            };
        }
        dir.children.insert(last.clone(), child);
    }

    /// Adds a replica location to `path`'s record. Returns whether the
    /// location set changed.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] if the path has no record.
    pub fn add_location(&mut self, path: &UrlPath, node: NodeId) -> Result<bool, TableError> {
        let entry = match self.find_mut(path) {
            Some(Child::Leaf(e)) => e,
            _ => return Err(TableError::NotFound { path: path.clone() }),
        };
        let changed = entry.add_location(node);
        if changed {
            self.generation += 1;
        }
        Ok(changed)
    }

    /// Removes a replica location from `path`'s record. Returns whether the
    /// location set changed.
    ///
    /// # Errors
    ///
    /// [`TableError::NotFound`] if the path has no record.
    pub fn remove_location(&mut self, path: &UrlPath, node: NodeId) -> Result<bool, TableError> {
        let entry = match self.find_mut(path) {
            Some(Child::Leaf(e)) => e,
            _ => return Err(TableError::NotFound { path: path.clone() }),
        };
        let changed = entry.remove_location(node);
        if changed {
            self.generation += 1;
        }
        Ok(changed)
    }

    /// Whether `path` exists as a directory (interior level) in the table.
    pub fn is_dir(&self, path: &UrlPath) -> bool {
        if path.is_root() {
            return true;
        }
        matches!(self.find(path), Some(Child::Dir(_)))
    }

    /// Iterates over every `(path, entry)` record, in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (UrlPath, &UrlEntry)> {
        let mut out = Vec::with_capacity(self.len);
        Self::collect(&self.root, UrlPath::root(), &mut out);
        out.into_iter()
    }

    /// Iterates over records under `prefix` (inclusive), in unspecified
    /// order. An empty iterator if the prefix does not exist.
    pub fn subtree(&self, prefix: &UrlPath) -> impl Iterator<Item = (UrlPath, &UrlEntry)> {
        let mut out = Vec::new();
        if prefix.is_root() {
            Self::collect(&self.root, UrlPath::root(), &mut out);
        } else {
            match self.find(prefix) {
                Some(Child::Dir(d)) => Self::collect(d, prefix.clone(), &mut out),
                Some(Child::Leaf(e)) => out.push((prefix.clone(), e)),
                None => {}
            }
        }
        out.into_iter()
    }

    fn collect<'a>(dir: &'a Dir, base: UrlPath, out: &mut Vec<(UrlPath, &'a UrlEntry)>) {
        for (name, child) in &dir.children {
            let child_path = base.join(name).expect("table segments are valid");
            match child {
                Child::Leaf(e) => out.push((child_path, e)),
                Child::Dir(d) => Self::collect(d, child_path, out),
            }
        }
    }

    /// Approximate resident memory of the table in bytes: hash-level
    /// overhead, key strings, and entry records. This is the figure §5.2
    /// reports (~260 KB for ~8 700 objects in the authors' C
    /// implementation).
    pub fn memory_bytes(&self) -> usize {
        fn rec(dir: &Dir) -> usize {
            let mut total = std::mem::size_of::<Dir>()
                + dir.children.capacity()
                    * (std::mem::size_of::<String>() + std::mem::size_of::<Child>());
            if let Some(default) = &dir.default {
                total += default.memory_bytes();
            }
            for (name, child) in &dir.children {
                total += name.len();
                match child {
                    Child::Leaf(e) => total += e.memory_bytes() - std::mem::size_of::<UrlEntry>(),
                    Child::Dir(d) => total += rec(d),
                }
            }
            total
        }
        std::mem::size_of::<UrlTable>() + rec(&self.root)
    }

    fn find(&self, path: &UrlPath) -> Option<&Child> {
        let mut dir = &self.root;
        let mut segments = path.segments().peekable();
        loop {
            let seg = segments.next()?;
            let child = dir.children.get(seg)?;
            if segments.peek().is_none() {
                return Some(child);
            }
            match child {
                Child::Dir(d) => dir = d,
                Child::Leaf(_) => return None,
            }
        }
    }

    fn find_mut(&mut self, path: &UrlPath) -> Option<&mut Child> {
        let mut dir = &mut self.root;
        let mut segments = path.segments().peekable();
        loop {
            let seg = segments.next()?;
            let child = dir.children.get_mut(seg)?;
            if segments.peek().is_none() {
                return Some(child);
            }
            match child {
                Child::Dir(d) => dir = d,
                Child::Leaf(_) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpms_model::{ContentId, ContentKind};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    fn e(id: u32) -> UrlEntry {
        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 1024).with_locations([NodeId(0)])
    }

    #[test]
    fn insert_lookup_remove() {
        let mut t = UrlTable::new();
        t.insert(p("/a/b/c.html"), e(1)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(&p("/a/b/c.html")).unwrap().content(), ContentId(1));
        assert!(
            t.lookup(&p("/a/b")).is_none(),
            "directories are not records"
        );
        assert!(t.is_dir(&p("/a/b")));
        let removed = t.remove(&p("/a/b/c.html")).unwrap();
        assert_eq!(removed.content(), ContentId(1));
        assert!(t.is_empty());
        assert!(!t.is_dir(&p("/a")), "empty interior dirs are pruned");
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = UrlTable::new();
        t.insert(p("/x"), e(1)).unwrap();
        assert_eq!(
            t.insert(p("/x"), e(2)),
            Err(TableError::AlreadyExists { path: p("/x") })
        );
        assert_eq!(t.lookup(&p("/x")).unwrap().content(), ContentId(1));
    }

    #[test]
    fn file_blocks_interior() {
        let mut t = UrlTable::new();
        t.insert(p("/x"), e(1)).unwrap();
        assert_eq!(
            t.insert(p("/x/y"), e(2)),
            Err(TableError::NotADirectory { path: p("/x/y") })
        );
    }

    #[test]
    fn root_operations_rejected() {
        let mut t = UrlTable::new();
        assert_eq!(t.insert(UrlPath::root(), e(1)), Err(TableError::IsRoot));
        assert_eq!(t.remove(&UrlPath::root()), Err(TableError::IsRoot));
    }

    #[test]
    fn lookup_and_hit_bumps_counter_not_generation() {
        let mut t = UrlTable::new();
        t.insert(p("/x"), e(1)).unwrap();
        let g = t.generation();
        t.lookup_and_hit(&p("/x")).unwrap();
        t.lookup_and_hit(&p("/x")).unwrap();
        assert_eq!(t.lookup(&p("/x")).unwrap().hits(), 2);
        assert_eq!(t.generation(), g, "hit bumps must not invalidate caches");
    }

    #[test]
    fn locations_update_generation() {
        let mut t = UrlTable::new();
        t.insert(p("/x"), e(1)).unwrap();
        let g = t.generation();
        assert!(t.add_location(&p("/x"), NodeId(5)).unwrap());
        assert_eq!(t.generation(), g + 1);
        assert!(!t.add_location(&p("/x"), NodeId(5)).unwrap());
        assert_eq!(t.generation(), g + 1, "no-op does not bump generation");
        assert!(t.remove_location(&p("/x"), NodeId(5)).unwrap());
        assert_eq!(t.generation(), g + 2);
        assert!(t.add_location(&p("/missing"), NodeId(1)).is_err());
    }

    #[test]
    fn rename_file() {
        let mut t = UrlTable::new();
        t.insert(p("/old/name.html"), e(1)).unwrap();
        t.rename(&p("/old/name.html"), &p("/new/dir/name.html"))
            .unwrap();
        assert!(t.lookup(&p("/old/name.html")).is_none());
        assert_eq!(
            t.lookup(&p("/new/dir/name.html")).unwrap().content(),
            ContentId(1)
        );
        assert!(!t.is_dir(&p("/old")), "source dir pruned");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rename_subtree() {
        let mut t = UrlTable::new();
        t.insert(p("/img/a.gif"), e(1)).unwrap();
        t.insert(p("/img/sub/b.gif"), e(2)).unwrap();
        t.rename(&p("/img"), &p("/media")).unwrap();
        assert_eq!(
            t.lookup(&p("/media/a.gif")).unwrap().content(),
            ContentId(1)
        );
        assert_eq!(
            t.lookup(&p("/media/sub/b.gif")).unwrap().content(),
            ContentId(2)
        );
        assert!(t.lookup(&p("/img/a.gif")).is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rename_errors() {
        let mut t = UrlTable::new();
        t.insert(p("/a"), e(1)).unwrap();
        t.insert(p("/b"), e(2)).unwrap();
        assert_eq!(
            t.rename(&p("/a"), &p("/b")),
            Err(TableError::DestinationExists { path: p("/b") })
        );
        assert_eq!(
            t.rename(&p("/missing"), &p("/c")),
            Err(TableError::NotFound {
                path: p("/missing")
            })
        );
        assert_eq!(
            t.rename(&UrlPath::root(), &p("/c")),
            Err(TableError::IsRoot)
        );
    }

    #[test]
    fn subtree_listing() {
        let mut t = UrlTable::new();
        t.insert(p("/img/a.gif"), e(1)).unwrap();
        t.insert(p("/img/b.gif"), e(2)).unwrap();
        t.insert(p("/doc/c.html"), e(3)).unwrap();
        let mut under_img: Vec<String> = t
            .subtree(&p("/img"))
            .map(|(path, _)| path.to_string())
            .collect();
        under_img.sort();
        assert_eq!(under_img, ["/img/a.gif", "/img/b.gif"]);
        assert_eq!(t.subtree(&UrlPath::root()).count(), 3);
        assert_eq!(t.subtree(&p("/missing")).count(), 0);
        // subtree of a file is the file itself
        assert_eq!(t.subtree(&p("/doc/c.html")).count(), 1);
    }

    #[test]
    fn iter_covers_all() {
        let mut t = UrlTable::new();
        for i in 0..50u32 {
            t.insert(p(&format!("/d{}/f{}.html", i % 5, i)), e(i))
                .unwrap();
        }
        assert_eq!(t.iter().count(), 50);
        let ids: std::collections::HashSet<u32> =
            t.iter().map(|(_, entry)| entry.content().0).collect();
        assert_eq!(ids.len(), 50);
    }

    #[test]
    fn memory_scales_with_entries() {
        let mut t = UrlTable::new();
        let m0 = t.memory_bytes();
        for i in 0..1000u32 {
            t.insert(p(&format!("/dir{}/file{}.html", i % 10, i)), e(i))
                .unwrap();
        }
        let m1 = t.memory_bytes();
        assert!(m1 > m0 + 1000 * std::mem::size_of::<UrlEntry>());
    }

    #[test]
    fn dir_defaults_resolve_lookups() {
        let mut t = UrlTable::new();
        t.set_dir_default(
            &p("/img"),
            UrlEntry::new(ContentId(100), ContentKind::Image, 0).with_locations([NodeId(4)]),
        )
        .unwrap();
        // any path under /img resolves to the default...
        let hit = t.lookup(&p("/img/deep/dir/x.gif")).unwrap();
        assert_eq!(hit.content(), ContentId(100));
        assert_eq!(hit.locations(), [NodeId(4)]);
        // ...but exact records win
        t.insert(p("/img/hot.gif"), e(7)).unwrap();
        assert_eq!(
            t.lookup(&p("/img/hot.gif")).unwrap().content(),
            ContentId(7)
        );
        assert!(t.lookup_exact(&p("/img/cold.gif")).is_none());
        // outside the subtree, nothing resolves
        assert!(t.lookup(&p("/doc/y.html")).is_none());
        assert_eq!(t.dir_default_count(), 1);
    }

    #[test]
    fn nested_defaults_deepest_wins() {
        let mut t = UrlTable::new();
        t.set_dir_default(
            &UrlPath::root(),
            UrlEntry::new(ContentId(1), ContentKind::OtherStatic, 0).with_locations([NodeId(0)]),
        )
        .unwrap();
        t.set_dir_default(
            &p("/video"),
            UrlEntry::new(ContentId(2), ContentKind::Video, 0).with_locations([NodeId(8)]),
        )
        .unwrap();
        assert_eq!(
            t.lookup(&p("/anything.txt")).unwrap().content(),
            ContentId(1)
        );
        assert_eq!(
            t.lookup(&p("/video/clip.mpg")).unwrap().content(),
            ContentId(2),
            "deepest ancestor default wins"
        );
    }

    #[test]
    fn dir_default_hits_accumulate() {
        let mut t = UrlTable::new();
        t.set_dir_default(
            &p("/img"),
            UrlEntry::new(ContentId(1), ContentKind::Image, 0).with_locations([NodeId(0)]),
        )
        .unwrap();
        t.insert(p("/img/exact.gif"), e(2)).unwrap();
        let g = t.generation();
        assert!(t.lookup_and_hit(&p("/img/a.gif")).is_some());
        assert!(t.lookup_and_hit(&p("/img/b.gif")).is_some());
        assert!(t.lookup_and_hit(&p("/img/exact.gif")).is_some());
        assert_eq!(t.generation(), g, "hit bumps do not invalidate");
        // default got 2 hits, exact record 1
        let removed = t.remove_dir_default(&p("/img")).unwrap();
        assert_eq!(removed.hits(), 2);
        assert_eq!(t.lookup(&p("/img/exact.gif")).unwrap().hits(), 1);
        assert!(t.lookup(&p("/img/a.gif")).is_none(), "default removed");
    }

    #[test]
    fn dir_default_errors_and_generation() {
        let mut t = UrlTable::new();
        t.insert(p("/file"), e(1)).unwrap();
        assert!(matches!(
            t.set_dir_default(&p("/file"), e(2)),
            Err(TableError::NotADirectory { .. })
        ));
        assert!(matches!(
            t.remove_dir_default(&p("/missing")),
            Err(TableError::NotFound { .. })
        ));
        let g = t.generation();
        t.set_dir_default(&p("/d"), e(3)).unwrap();
        assert_eq!(t.generation(), g + 1, "defaults are routing data");
    }

    #[test]
    fn dir_defaults_count_in_memory() {
        let mut t = UrlTable::new();
        let m0 = t.memory_bytes();
        t.set_dir_default(&p("/a"), e(1)).unwrap();
        assert!(t.memory_bytes() > m0);
    }

    #[test]
    fn deep_paths() {
        let mut t = UrlTable::new();
        let deep = p("/a/b/c/d/e/f/g/h/i/j/file.html");
        t.insert(deep.clone(), e(1)).unwrap();
        assert!(t.lookup(&deep).is_some());
        t.remove(&deep).unwrap();
        assert!(t.is_empty());
        assert!(!t.is_dir(&p("/a")), "deep prune removes whole chain");
    }
}
