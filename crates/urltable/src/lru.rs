//! A weight-bounded LRU cache with O(1) operations.
//!
//! Used twice in this system, matching two uses in the paper:
//!
//! 1. the URL table's recently-accessed-entry cache (§5.2, "a proven
//!    technique for demultiplexing speedup") — weight = 1 per entry,
//! 2. the simulator's per-node file memory cache — weight = object size in
//!    bytes, which is what makes content partitioning shrink working sets
//!    and raise hit rates (the mechanism behind Figure 2).
//!
//! Implementation: a slab of nodes forming an intrusive doubly-linked list
//! (most-recent at head), with a `HashMap` from key to slab index.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    weight: u64,
    prev: usize,
    next: usize,
}

/// An LRU cache holding entries up to a total weight capacity.
///
/// Each entry carries a caller-supplied weight; inserting evicts
/// least-recently-used entries until the total fits. An entry heavier than
/// the whole capacity is rejected rather than evicting everything.
///
/// # Example
///
/// ```
/// use cpms_urltable::lru::LruCache;
///
/// let mut cache: LruCache<&str, u32> = LruCache::new(2);
/// cache.insert("a", 1, 1);
/// cache.insert("b", 2, 1);
/// cache.get(&"a");           // "a" is now most recent
/// cache.insert("c", 3, 1);   // evicts "b"
/// assert!(cache.contains(&"a"));
/// assert!(!cache.contains(&"b"));
/// assert!(cache.contains(&"c"));
/// ```
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: u64,
    used: u64,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    index: HashMap<K, usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache with the given total weight capacity.
    ///
    /// A capacity of 0 creates a cache that stores nothing (all inserts are
    /// rejected), which is useful for "cache disabled" ablations.
    pub fn new(capacity: u64) -> Self {
        LruCache {
            capacity,
            used: 0,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Total weight capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Total weight currently stored.
    pub fn used_weight(&self) -> u64 {
        self.used
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Cache hits recorded by [`LruCache::get`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses recorded by [`LruCache::get`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate over all `get` calls so far (0.0 if none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up `key`, marking it most-recently-used on hit and counting
    /// hit/miss statistics.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.index.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.move_to_front(idx);
                self.slots[idx].value.as_ref()
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching recency or statistics.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.index
            .get(key)
            .and_then(|&idx| self.slots[idx].value.as_ref())
    }

    /// Whether `key` is cached (does not touch recency or statistics).
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Inserts `key → value` with the given weight, evicting LRU entries as
    /// needed. Returns `true` if the entry was stored, `false` if its weight
    /// exceeds the whole capacity (in which case nothing is evicted).
    ///
    /// Re-inserting an existing key replaces its value and weight and marks
    /// it most-recently-used.
    pub fn insert(&mut self, key: K, value: V, weight: u64) -> bool {
        if weight > self.capacity {
            return false;
        }
        if let Some(&idx) = self.index.get(&key) {
            self.used = self.used - self.slots[idx].weight + weight;
            self.slots[idx].value = Some(value);
            self.slots[idx].weight = weight;
            self.move_to_front(idx);
            self.evict_to_fit();
            return true;
        }
        self.used += weight;
        let idx = self.alloc_slot(key.clone(), value, weight);
        self.index.insert(key, idx);
        self.push_front(idx);
        self.evict_to_fit();
        true
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.index.remove(key)?;
        self.unlink(idx);
        self.used -= self.slots[idx].weight;
        self.free.push(idx);
        self.slots[idx].value.take()
    }

    /// Removes every entry (statistics are preserved).
    pub fn clear(&mut self) {
        self.index.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }

    /// Iterates from most- to least-recently-used.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            cache: self,
            cursor: self.head,
        }
    }

    fn alloc_slot(&mut self, key: K, value: V, weight: u64) -> usize {
        let slot = Slot {
            key,
            value: Some(value),
            weight,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.slots[idx] = slot;
            idx
        } else {
            self.slots.push(slot);
            self.slots.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over capacity with empty list");
            let key = self.slots[victim].key.clone();
            self.index.remove(&key);
            self.unlink(victim);
            self.used -= self.slots[victim].weight;
            self.slots[victim].value = None;
            self.free.push(victim);
            self.evictions += 1;
        }
    }
}

/// Iterator over cache entries from most- to least-recently-used.
#[derive(Debug)]
pub struct Iter<'a, K, V> {
    cache: &'a LruCache<K, V>,
    cursor: usize,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let slot = &self.cache.slots[self.cursor];
        self.cursor = slot.next;
        Some((
            &slot.key,
            slot.value.as_ref().expect("linked slot holds a value"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get() {
        let mut c: LruCache<u32, String> = LruCache::new(10);
        assert!(c.insert(1, "one".into(), 1));
        assert_eq!(c.get(&1), Some(&"one".to_string()));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        c.insert(3, 30, 1);
        c.get(&1); // 1 most recent; LRU order now 2, 3, 1
        c.insert(4, 40, 1); // evicts 2
        assert!(!c.contains(&2));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
        assert!(c.contains(&4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn weighted_eviction() {
        let mut c: LruCache<u32, ()> = LruCache::new(100);
        c.insert(1, (), 60);
        c.insert(2, (), 30);
        assert_eq!(c.used_weight(), 90);
        c.insert(3, (), 50); // must evict 1 (LRU, weight 60): 30+50=80 fits
        assert!(!c.contains(&1));
        assert_eq!(c.used_weight(), 80);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c: LruCache<u32, ()> = LruCache::new(10);
        c.insert(1, (), 5);
        assert!(!c.insert(2, (), 11));
        // nothing was evicted
        assert!(c.contains(&1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c: LruCache<u32, ()> = LruCache::new(0);
        assert!(!c.insert(1, (), 1));
        assert!(c.is_empty());
        // zero-weight entries do fit in a zero-capacity cache? weight 0 <= 0
        assert!(c.insert(2, (), 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_updates_value_and_weight() {
        let mut c: LruCache<u32, u32> = LruCache::new(10);
        c.insert(1, 100, 4);
        c.insert(1, 200, 8);
        assert_eq!(c.peek(&1), Some(&200));
        assert_eq!(c.used_weight(), 8);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_larger_weight_can_evict_others() {
        let mut c: LruCache<u32, ()> = LruCache::new(10);
        c.insert(1, (), 5);
        c.insert(2, (), 5);
        c.insert(2, (), 9); // now 5+9 > 10: evict LRU (=1)
        assert!(!c.contains(&1));
        assert!(c.contains(&2));
        assert_eq!(c.used_weight(), 9);
    }

    #[test]
    fn remove_returns_value_and_frees_weight() {
        let mut c: LruCache<u32, String> = LruCache::new(10);
        c.insert(1, "x".into(), 7);
        assert_eq!(c.remove(&1), Some("x".to_string()));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.used_weight(), 0);
        assert!(c.is_empty());
        // slot is reused
        c.insert(2, "y".into(), 3);
        assert_eq!(c.get(&2), Some(&"y".to_string()));
    }

    #[test]
    fn iter_is_mru_first() {
        let mut c: LruCache<u32, ()> = LruCache::new(10);
        c.insert(1, (), 1);
        c.insert(2, (), 1);
        c.insert(3, (), 1);
        c.get(&1);
        let order: Vec<u32> = c.iter().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let mut c: LruCache<u32, ()> = LruCache::new(2);
        c.insert(1, (), 1);
        c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_weight(), 0);
        assert_eq!(c.hits(), 1);
        c.insert(2, (), 1);
        assert!(c.contains(&2));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c: LruCache<u32, ()> = LruCache::new(2);
        c.insert(1, (), 1);
        c.insert(2, (), 1);
        c.peek(&1); // no promotion
        c.insert(3, (), 1); // evicts 1 (still LRU)
        assert!(!c.contains(&1));
        assert_eq!(c.hits(), 0, "peek does not count hits");
    }

    #[test]
    fn heavy_churn_consistency() {
        let mut c: LruCache<u32, u32> = LruCache::new(50);
        for i in 0..1_000u32 {
            c.insert(i, i, (i % 7 + 1) as u64);
            if i % 3 == 0 {
                c.remove(&(i / 2));
            }
            assert!(c.used_weight() <= 50);
            let n_linked = c.iter().count();
            assert_eq!(n_linked, c.len());
        }
    }
}
