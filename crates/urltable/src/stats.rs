//! Aggregate statistics over a URL table, used by the §5.2 reproduction and
//! management reports.

use crate::table::UrlTable;
use cpms_model::{ContentKind, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A snapshot of table-wide statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Number of content records.
    pub entries: usize,
    /// Approximate resident memory in bytes (§5.2 reports ~260 KB for
    /// ~8 700 objects).
    pub memory_bytes: usize,
    /// Total hits across all records.
    pub total_hits: u64,
    /// Records per content kind.
    pub entries_by_kind: HashMap<ContentKind, usize>,
    /// Replica count per node: how many objects each node hosts.
    pub objects_per_node: HashMap<NodeId, usize>,
    /// Mean replicas per object (1.0 = pure partitioning, n = full
    /// replication on an n-node cluster).
    pub mean_replication_factor: f64,
    /// Lookup-cache hits of the reader these stats were collected
    /// through (0 when collected directly from a table, see
    /// [`SnapshotReader::stats`](crate::SnapshotReader::stats)).
    pub cache_hits: u64,
    /// Lookup-cache misses of the collecting reader.
    pub cache_misses: u64,
    /// Snapshot re-pins performed by the collecting reader.
    pub repins: u64,
}

impl TableStats {
    /// Computes statistics for `table`.
    pub fn collect(table: &UrlTable) -> Self {
        let mut total_hits = 0;
        let mut entries_by_kind: HashMap<ContentKind, usize> = HashMap::new();
        let mut objects_per_node: HashMap<NodeId, usize> = HashMap::new();
        let mut replica_sum = 0usize;
        let mut entries = 0usize;
        for (_, entry) in table.iter() {
            entries += 1;
            total_hits += entry.hits();
            *entries_by_kind.entry(entry.kind()).or_insert(0) += 1;
            replica_sum += entry.replica_count();
            for &node in entry.locations() {
                *objects_per_node.entry(node).or_insert(0) += 1;
            }
        }
        TableStats {
            entries,
            memory_bytes: table.memory_bytes(),
            total_hits,
            entries_by_kind,
            objects_per_node,
            mean_replication_factor: if entries == 0 {
                0.0
            } else {
                replica_sum as f64 / entries as f64
            },
            cache_hits: 0,
            cache_misses: 0,
            repins: 0,
        }
    }

    /// Hit ratio of the collecting reader's lookup cache (0.0 when the
    /// stats were collected without a reader).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::UrlEntry;
    use cpms_model::{ContentId, UrlPath};

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    #[test]
    fn collects_counts() {
        let mut t = UrlTable::new();
        t.insert(
            p("/a.html"),
            UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 10)
                .with_locations([NodeId(0), NodeId(1)]),
        )
        .unwrap();
        t.insert(
            p("/b.cgi"),
            UrlEntry::new(ContentId(1), ContentKind::Cgi, 10).with_locations([NodeId(1)]),
        )
        .unwrap();
        t.lookup_and_hit(&p("/a.html"));

        let s = TableStats::collect(&t);
        assert_eq!(s.entries, 2);
        assert_eq!(s.total_hits, 1);
        assert_eq!(s.entries_by_kind[&ContentKind::StaticHtml], 1);
        assert_eq!(s.entries_by_kind[&ContentKind::Cgi], 1);
        assert_eq!(s.objects_per_node[&NodeId(1)], 2);
        assert_eq!(s.objects_per_node[&NodeId(0)], 1);
        assert!((s.mean_replication_factor - 1.5).abs() < 1e-12);
        assert!(s.memory_bytes > 0);
    }

    #[test]
    fn empty_table() {
        let s = TableStats::collect(&UrlTable::new());
        assert_eq!(s.entries, 0);
        assert_eq!(s.mean_replication_factor, 0.0);
    }
}
