//! Property-based tests for the URL table and LRU cache invariants.

use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_urltable::lru::LruCache;
use cpms_urltable::{LookupCache, UrlEntry, UrlTable};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn segment_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,4}"
}

fn path_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec(segment_strategy(), 1..5).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(UrlPath, u32),
    Remove(UrlPath),
    AddLoc(UrlPath, u16),
    RemoveLoc(UrlPath, u16),
    Hit(UrlPath),
}

fn dir_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec(segment_strategy(), 0..3).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (path_strategy(), any::<u32>()).prop_map(|(p, id)| Op::Insert(p, id)),
        path_strategy().prop_map(Op::Remove),
        (path_strategy(), 0u16..8).prop_map(|(p, n)| Op::AddLoc(p, n)),
        (path_strategy(), 0u16..8).prop_map(|(p, n)| Op::RemoveLoc(p, n)),
        path_strategy().prop_map(Op::Hit),
    ]
}

proptest! {
    /// The table agrees with a flat HashMap model under arbitrary operation
    /// sequences (ignoring operations the table rejects).
    #[test]
    fn table_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut table = UrlTable::new();
        let mut model: HashMap<UrlPath, (u32, HashSet<u16>, u64)> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(p, id) => {
                    let r = table.insert(
                        p.clone(),
                        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 64),
                    );
                    if r.is_ok() {
                        prop_assert!(!model.contains_key(&p));
                        model.insert(p, (id, HashSet::new(), 0));
                    }
                }
                Op::Remove(p) => {
                    let r = table.remove(&p);
                    prop_assert_eq!(r.is_ok(), model.remove(&p).is_some());
                }
                Op::AddLoc(p, n) => {
                    let r = table.add_location(&p, NodeId(n));
                    match model.get_mut(&p) {
                        Some((_, locs, _)) => {
                            prop_assert_eq!(r.unwrap(), locs.insert(n));
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::RemoveLoc(p, n) => {
                    let r = table.remove_location(&p, NodeId(n));
                    match model.get_mut(&p) {
                        Some((_, locs, _)) => {
                            prop_assert_eq!(r.unwrap(), locs.remove(&n));
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::Hit(p) => {
                    let r = table.lookup_and_hit(&p);
                    match model.get_mut(&p) {
                        Some((_, _, hits)) => {
                            *hits += 1;
                            prop_assert!(r.is_some());
                        }
                        None => prop_assert!(r.is_none()),
                    }
                }
            }
        }

        // Final state equivalence.
        prop_assert_eq!(table.len(), model.len());
        for (p, (id, locs, hits)) in &model {
            let entry = table.lookup(p).expect("model entry present in table");
            prop_assert_eq!(entry.content(), ContentId(*id));
            prop_assert_eq!(entry.hits(), *hits);
            let table_locs: HashSet<u16> = entry.locations().iter().map(|n| n.0).collect();
            prop_assert_eq!(&table_locs, locs);
        }
        // And the iterator covers exactly the model keys.
        let iter_paths: HashSet<UrlPath> = table.iter().map(|(p, _)| p).collect();
        let model_paths: HashSet<UrlPath> = model.keys().cloned().collect();
        prop_assert_eq!(iter_paths, model_paths);
    }

    /// Renaming a subtree preserves record count and relocates every path.
    #[test]
    fn rename_preserves_records(
        files in prop::collection::hash_set("[a-z]{1,4}", 1..10),
    ) {
        let mut table = UrlTable::new();
        let src: UrlPath = "/src".parse().unwrap();
        for f in &files {
            let p = src.join(f).unwrap();
            table.insert(p, UrlEntry::new(ContentId(0), ContentKind::Image, 1)).unwrap();
        }
        let dst: UrlPath = "/dst/deep".parse().unwrap();
        table.rename(&src, &dst).unwrap();
        prop_assert_eq!(table.len(), files.len());
        for f in &files {
            prop_assert!(table.lookup(&dst.join(f).unwrap()).is_some());
            prop_assert!(table.lookup(&src.join(f).unwrap()).is_none());
        }
    }

    /// The LRU cache never exceeds its weight capacity and its length always
    /// matches the number of reachable (linked) entries.
    #[test]
    fn lru_respects_capacity(
        capacity in 1u64..100,
        ops in prop::collection::vec((0u32..50, 1u64..20, any::<bool>()), 1..300),
    ) {
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        for (key, weight, is_insert) in ops {
            if is_insert {
                let stored = cache.insert(key, key, weight);
                prop_assert_eq!(stored, weight <= capacity);
            } else {
                cache.remove(&key);
            }
            prop_assert!(cache.used_weight() <= capacity);
            prop_assert_eq!(cache.iter().count(), cache.len());
        }
    }

    /// The routing view (exact record, else deepest ancestor default) is
    /// exactly what `lookup` returns, modelled independently from the set
    /// of inserted records and defaults.
    #[test]
    fn dir_defaults_match_reference_model(
        records in prop::collection::hash_map(path_strategy(), any::<u32>(), 0..20),
        defaults in prop::collection::hash_map(dir_strategy(), any::<u32>(), 0..6),
        probes in prop::collection::vec(path_strategy(), 1..40),
    ) {
        let mut table = UrlTable::new();
        let mut inserted: HashMap<UrlPath, u32> = HashMap::new();
        for (p, id) in &records {
            if table
                .insert(p.clone(), UrlEntry::new(ContentId(*id), ContentKind::StaticHtml, 1))
                .is_ok()
            {
                inserted.insert(p.clone(), *id);
            }
        }
        let mut set_defaults: HashMap<UrlPath, u32> = HashMap::new();
        for (d, id) in &defaults {
            if table
                .set_dir_default(d, UrlEntry::new(ContentId(*id), ContentKind::Image, 1))
                .is_ok()
            {
                set_defaults.insert(d.clone(), *id);
            }
        }
        for probe in probes {
            let got = table.lookup(&probe).map(|e| e.content().0);
            // Reference model: exact record wins; else the default of the
            // deepest ancestor directory (root included, probing the
            // directory itself included) that has one.
            let expected = inserted.get(&probe).copied().or_else(|| {
                let mut best: Option<(usize, u32)> = None;
                for (d, id) in &set_defaults {
                    if probe.starts_with(d) {
                        let depth = d.depth();
                        if best.map(|(bd, _)| depth > bd).unwrap_or(true) {
                            best = Some((depth, *id));
                        }
                    }
                }
                best.map(|(_, id)| id)
            });
            prop_assert_eq!(got, expected, "probe {}", probe);
        }
    }

    /// A cached lookup always returns exactly what an uncached table lookup
    /// returns, under interleaved mutations (cache coherence).
    #[test]
    fn lookup_cache_is_coherent(
        ops in prop::collection::vec(op_strategy(), 1..150),
        probes in prop::collection::vec(path_strategy(), 1..50),
    ) {
        let mut table = UrlTable::new();
        let mut cache = LookupCache::new(8);
        let mut probe_iter = probes.into_iter().cycle();
        for op in ops {
            match op {
                Op::Insert(p, id) => {
                    let _ = table.insert(
                        p,
                        UrlEntry::new(ContentId(id), ContentKind::Cgi, 8),
                    );
                }
                Op::Remove(p) => { let _ = table.remove(&p); }
                Op::AddLoc(p, n) => { let _ = table.add_location(&p, NodeId(n)); }
                Op::RemoveLoc(p, n) => { let _ = table.remove_location(&p, NodeId(n)); }
                Op::Hit(p) => { let _ = table.lookup_and_hit(&p); }
            }
            // After every mutation, a probe through the cache must agree
            // with the table (for routing-relevant fields).
            let probe = probe_iter.next().unwrap();
            let via_cache = cache.lookup(&table, &probe);
            let via_table = table.lookup(&probe);
            match (via_cache, via_table) {
                (None, None) => {}
                (Some(c), Some(t)) => {
                    prop_assert_eq!(c.content(), t.content());
                    prop_assert_eq!(c.locations(), t.locations());
                    prop_assert_eq!(c.size_bytes(), t.size_bytes());
                }
                (c, t) => prop_assert!(false, "cache {:?} vs table {:?}", c.is_some(), t.is_some()),
            }
        }
    }
}
