//! Property-based tests for the URL table and LRU cache invariants.

use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_urltable::lru::LruCache;
use cpms_urltable::{LookupCache, TableError, UrlEntry, UrlTable};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

fn segment_strategy() -> impl Strategy<Value = String> {
    "[a-z]{1,4}"
}

fn path_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec(segment_strategy(), 1..5).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(UrlPath, u32),
    Remove(UrlPath),
    AddLoc(UrlPath, u16),
    RemoveLoc(UrlPath, u16),
    Hit(UrlPath),
}

fn dir_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec(segment_strategy(), 0..3).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (path_strategy(), any::<u32>()).prop_map(|(p, id)| Op::Insert(p, id)),
        path_strategy().prop_map(Op::Remove),
        (path_strategy(), 0u16..8).prop_map(|(p, n)| Op::AddLoc(p, n)),
        (path_strategy(), 0u16..8).prop_map(|(p, n)| Op::RemoveLoc(p, n)),
        path_strategy().prop_map(Op::Hit),
    ]
}

proptest! {
    /// The table agrees with a flat HashMap model under arbitrary operation
    /// sequences (ignoring operations the table rejects).
    #[test]
    fn table_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut table = UrlTable::new();
        let mut model: HashMap<UrlPath, (u32, HashSet<u16>, u64)> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(p, id) => {
                    let r = table.insert(
                        p.clone(),
                        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 64),
                    );
                    if r.is_ok() {
                        prop_assert!(!model.contains_key(&p));
                        model.insert(p, (id, HashSet::new(), 0));
                    }
                }
                Op::Remove(p) => {
                    let r = table.remove(&p);
                    prop_assert_eq!(r.is_ok(), model.remove(&p).is_some());
                }
                Op::AddLoc(p, n) => {
                    let r = table.add_location(&p, NodeId(n));
                    match model.get_mut(&p) {
                        Some((_, locs, _)) => {
                            prop_assert_eq!(r.unwrap(), locs.insert(n));
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::RemoveLoc(p, n) => {
                    let r = table.remove_location(&p, NodeId(n));
                    match model.get_mut(&p) {
                        Some((_, locs, _)) => {
                            prop_assert_eq!(r.unwrap(), locs.remove(&n));
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
                Op::Hit(p) => {
                    let r = table.lookup_and_hit(&p);
                    match model.get_mut(&p) {
                        Some((_, _, hits)) => {
                            *hits += 1;
                            prop_assert!(r.is_some());
                        }
                        None => prop_assert!(r.is_none()),
                    }
                }
            }
        }

        // Final state equivalence.
        prop_assert_eq!(table.len(), model.len());
        for (p, (id, locs, hits)) in &model {
            let entry = table.lookup(p).expect("model entry present in table");
            prop_assert_eq!(entry.content(), ContentId(*id));
            prop_assert_eq!(entry.hits(), *hits);
            let table_locs: HashSet<u16> = entry.locations().iter().map(|n| n.0).collect();
            prop_assert_eq!(&table_locs, locs);
        }
        // And the iterator covers exactly the model keys.
        let iter_paths: HashSet<UrlPath> = table.iter().map(|(p, _)| p).collect();
        let model_paths: HashSet<UrlPath> = model.keys().cloned().collect();
        prop_assert_eq!(iter_paths, model_paths);
    }

    /// Renaming a subtree preserves record count and relocates every path.
    #[test]
    fn rename_preserves_records(
        files in prop::collection::hash_set("[a-z]{1,4}", 1..10),
    ) {
        let mut table = UrlTable::new();
        let src: UrlPath = "/src".parse().unwrap();
        for f in &files {
            let p = src.join(f).unwrap();
            table.insert(p, UrlEntry::new(ContentId(0), ContentKind::Image, 1)).unwrap();
        }
        let dst: UrlPath = "/dst/deep".parse().unwrap();
        table.rename(&src, &dst).unwrap();
        prop_assert_eq!(table.len(), files.len());
        for f in &files {
            prop_assert!(table.lookup(&dst.join(f).unwrap()).is_some());
            prop_assert!(table.lookup(&src.join(f).unwrap()).is_none());
        }
    }

    /// The LRU cache never exceeds its weight capacity and its length always
    /// matches the number of reachable (linked) entries.
    #[test]
    fn lru_respects_capacity(
        capacity in 1u64..100,
        ops in prop::collection::vec((0u32..50, 1u64..20, any::<bool>()), 1..300),
    ) {
        let mut cache: LruCache<u32, u32> = LruCache::new(capacity);
        for (key, weight, is_insert) in ops {
            if is_insert {
                let stored = cache.insert(key, key, weight);
                prop_assert_eq!(stored, weight <= capacity);
            } else {
                cache.remove(&key);
            }
            prop_assert!(cache.used_weight() <= capacity);
            prop_assert_eq!(cache.iter().count(), cache.len());
        }
    }

    /// The routing view (exact record, else deepest ancestor default) is
    /// exactly what `lookup` returns, modelled independently from the set
    /// of inserted records and defaults.
    #[test]
    fn dir_defaults_match_reference_model(
        records in prop::collection::hash_map(path_strategy(), any::<u32>(), 0..20),
        defaults in prop::collection::hash_map(dir_strategy(), any::<u32>(), 0..6),
        probes in prop::collection::vec(path_strategy(), 1..40),
    ) {
        let mut table = UrlTable::new();
        let mut inserted: HashMap<UrlPath, u32> = HashMap::new();
        for (p, id) in &records {
            if table
                .insert(p.clone(), UrlEntry::new(ContentId(*id), ContentKind::StaticHtml, 1))
                .is_ok()
            {
                inserted.insert(p.clone(), *id);
            }
        }
        let mut set_defaults: HashMap<UrlPath, u32> = HashMap::new();
        for (d, id) in &defaults {
            if table
                .set_dir_default(d, UrlEntry::new(ContentId(*id), ContentKind::Image, 1))
                .is_ok()
            {
                set_defaults.insert(d.clone(), *id);
            }
        }
        for probe in probes {
            let got = table.lookup(&probe).map(|e| e.content().0);
            // Reference model: exact record wins; else the default of the
            // deepest ancestor directory (root included, probing the
            // directory itself included) that has one.
            let expected = inserted.get(&probe).copied().or_else(|| {
                let mut best: Option<(usize, u32)> = None;
                for (d, id) in &set_defaults {
                    if probe.starts_with(d) {
                        let depth = d.depth();
                        if best.map(|(bd, _)| depth > bd).unwrap_or(true) {
                            best = Some((depth, *id));
                        }
                    }
                }
                best.map(|(_, id)| id)
            });
            prop_assert_eq!(got, expected, "probe {}", probe);
        }
    }

    /// A cached lookup always returns exactly what an uncached table lookup
    /// returns, under interleaved mutations (cache coherence).
    #[test]
    fn lookup_cache_is_coherent(
        ops in prop::collection::vec(op_strategy(), 1..150),
        probes in prop::collection::vec(path_strategy(), 1..50),
    ) {
        let mut table = UrlTable::new();
        let mut cache = LookupCache::new(8);
        let mut probe_iter = probes.into_iter().cycle();
        for op in ops {
            match op {
                Op::Insert(p, id) => {
                    let _ = table.insert(
                        p,
                        UrlEntry::new(ContentId(id), ContentKind::Cgi, 8),
                    );
                }
                Op::Remove(p) => { let _ = table.remove(&p); }
                Op::AddLoc(p, n) => { let _ = table.add_location(&p, NodeId(n)); }
                Op::RemoveLoc(p, n) => { let _ = table.remove_location(&p, NodeId(n)); }
                Op::Hit(p) => { let _ = table.lookup_and_hit(&p); }
            }
            // After every mutation, a probe through the cache must agree
            // with the table (for routing-relevant fields).
            let probe = probe_iter.next().unwrap();
            let via_cache = cache.lookup(&table, &probe);
            let via_table = table.lookup(&probe);
            match (via_cache, via_table) {
                (None, None) => {}
                (Some(c), Some(t)) => {
                    prop_assert_eq!(c.content(), t.content());
                    prop_assert_eq!(c.locations(), t.locations());
                    prop_assert_eq!(c.size_bytes(), t.size_bytes());
                }
                (c, t) => prop_assert!(false, "cache {:?} vs table {:?}", c.is_some(), t.is_some()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Full mutation-op model: every public mutation (insert, remove, rename,
// add/remove_location, set/remove_dir_default, hit) against a flat reference
// model that also predicts the exact error variant and the generation
// counter.
// ---------------------------------------------------------------------------

/// Paths over a deliberately tiny alphabet so that collisions — and with
/// them the AlreadyExists / DestinationExists / NotADirectory / NotFound
/// error paths — occur constantly.
fn tight_path_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec("[abc]", 1..4).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

/// Directory paths for defaults; may be the root.
fn tight_dir_strategy() -> impl Strategy<Value = UrlPath> {
    prop::collection::vec("[abc]", 0..3).prop_map(|segs| {
        let mut p = UrlPath::root();
        for s in segs {
            p = p.join(&s).expect("generated segments are valid");
        }
        p
    })
}

#[derive(Debug, Clone)]
enum FullOp {
    Insert(UrlPath, u32),
    Remove(UrlPath),
    Rename(UrlPath, UrlPath),
    AddLoc(UrlPath, u16),
    RemoveLoc(UrlPath, u16),
    SetDefault(UrlPath, u32),
    RemoveDefault(UrlPath),
    Hit(UrlPath),
}

fn full_op_strategy() -> impl Strategy<Value = FullOp> {
    prop_oneof![
        (tight_path_strategy(), any::<u32>()).prop_map(|(p, id)| FullOp::Insert(p, id)),
        tight_path_strategy().prop_map(FullOp::Remove),
        (tight_path_strategy(), tight_path_strategy()).prop_map(|(f, t)| FullOp::Rename(f, t)),
        (tight_path_strategy(), 0u16..8).prop_map(|(p, n)| FullOp::AddLoc(p, n)),
        (tight_path_strategy(), 0u16..8).prop_map(|(p, n)| FullOp::RemoveLoc(p, n)),
        (tight_dir_strategy(), any::<u32>()).prop_map(|(d, id)| FullOp::SetDefault(d, id)),
        tight_dir_strategy().prop_map(FullOp::RemoveDefault),
        tight_path_strategy().prop_map(FullOp::Hit),
    ]
}

/// Every non-root strict prefix of `path`, shallowest first.
fn strict_prefixes(path: &UrlPath) -> Vec<UrlPath> {
    let segs: Vec<&str> = path.segments().collect();
    let mut out = Vec::new();
    let mut cur = UrlPath::root();
    for seg in &segs[..segs.len().saturating_sub(1)] {
        cur = cur.join(seg).expect("prefix of a valid path is valid");
        out.push(cur.clone());
    }
    out
}

/// `path` with the `from` prefix replaced by `to` (callers guarantee
/// `path.starts_with(from)`).
fn replace_prefix(path: &UrlPath, from: &UrlPath, to: &UrlPath) -> UrlPath {
    let mut out = to.clone();
    for seg in path.segments().skip(from.depth()) {
        out = out.join(seg).expect("segments of a valid path are valid");
    }
    out
}

#[derive(Debug, Clone)]
struct Rec {
    id: u32,
    locs: HashSet<u16>,
    hits: u64,
}

impl Rec {
    fn new(id: u32) -> Self {
        Rec {
            id,
            locs: HashSet::new(),
            hits: 0,
        }
    }
}

/// Flat reference model of the trie: records and directory defaults as maps,
/// plus the set of *currently existing* interior directory nodes. The dirs
/// set is what lets the model predict DestinationExists / NotFound exactly:
/// the table prunes emptied directories after remove/detach but deliberately
/// keeps them after `remove_dir_default`, so node existence is not derivable
/// from the two maps alone.
#[derive(Debug, Default)]
struct RefModel {
    records: HashMap<UrlPath, Rec>,
    defaults: HashMap<UrlPath, Rec>,
    dirs: HashSet<UrlPath>,
}

impl RefModel {
    fn node_exists(&self, p: &UrlPath) -> bool {
        p.is_root() || self.records.contains_key(p) || self.dirs.contains(p)
    }

    /// Whether directory `q` still holds anything: a default of its own or
    /// any record / directory / default strictly below it.
    fn occupied(&self, q: &UrlPath) -> bool {
        self.defaults.keys().any(|d| d.starts_with(q))
            || self.records.keys().any(|r| r != q && r.starts_with(q))
            || self.dirs.iter().any(|d| d != q && d.starts_with(q))
    }

    /// Mirrors the table's bottom-up pruning of emptied directories along
    /// `p`'s ancestry after a detach/remove at `p`.
    fn prune_above(&mut self, p: &UrlPath) {
        for q in strict_prefixes(p).into_iter().rev() {
            if self.occupied(&q) {
                break;
            }
            self.dirs.remove(&q);
        }
    }

    fn add_dir_chain(&mut self, prefixes: Vec<UrlPath>) {
        for q in prefixes {
            self.dirs.insert(q);
        }
    }
}

proptest! {
    /// The table agrees with the reference model under arbitrary sequences
    /// of *all* public mutation ops — including the exact error variant for
    /// every rejected operation and the generation counter after every op.
    #[test]
    fn mutation_ops_match_reference_model(
        ops in prop::collection::vec(full_op_strategy(), 1..250),
    ) {
        let mut table = UrlTable::new();
        let mut model = RefModel::default();

        for op in ops {
            let g0 = table.generation();
            let mut bumped = false;
            match op {
                FullOp::Insert(p, id) => {
                    let r = table.insert(
                        p.clone(),
                        UrlEntry::new(ContentId(id), ContentKind::StaticHtml, 64),
                    );
                    if strict_prefixes(&p).iter().any(|q| model.records.contains_key(q)) {
                        prop_assert!(
                            matches!(r, Err(TableError::NotADirectory { .. })),
                            "insert {} through a file: {:?}", p, r
                        );
                    } else if model.node_exists(&p) {
                        prop_assert!(
                            matches!(r, Err(TableError::AlreadyExists { .. })),
                            "insert {} onto existing node: {:?}", p, r
                        );
                    } else {
                        prop_assert!(r.is_ok(), "insert {} should succeed: {:?}", p, r);
                        model.add_dir_chain(strict_prefixes(&p));
                        model.records.insert(p, Rec::new(id));
                        bumped = true;
                    }
                }
                FullOp::Remove(p) => {
                    let r = table.remove(&p);
                    match model.records.remove(&p) {
                        Some(rec) => {
                            let entry = r.expect("model says a record exists");
                            prop_assert_eq!(entry.content(), ContentId(rec.id));
                            prop_assert_eq!(entry.hits(), rec.hits);
                            model.prune_above(&p);
                            bumped = true;
                        }
                        None => prop_assert!(
                            matches!(r, Err(TableError::NotFound { .. })),
                            "remove {}: {:?}", p, r
                        ),
                    }
                }
                FullOp::Rename(from, to) => {
                    let r = table.rename(&from, &to);
                    if model.node_exists(&to) {
                        prop_assert!(
                            matches!(r, Err(TableError::DestinationExists { .. })),
                            "rename {} -> {}: {:?}", from, to, r
                        );
                    } else if !model.node_exists(&from) {
                        prop_assert!(
                            matches!(r, Err(TableError::NotFound { .. })),
                            "rename {} -> {}: {:?}", from, to, r
                        );
                    } else if strict_prefixes(&to)
                        .iter()
                        .any(|q| model.records.contains_key(q) && !q.starts_with(&from))
                    {
                        // The attach walk runs on the post-detach tree, so
                        // leaves inside the moved subtree cannot block it.
                        prop_assert!(
                            matches!(r, Err(TableError::NotADirectory { .. })),
                            "rename {} -> {} through a file: {:?}", from, to, r
                        );
                    } else {
                        prop_assert!(r.is_ok(), "rename {} -> {} should succeed: {:?}", from, to, r);
                        let rewrite = |k: &UrlPath| {
                            if k.starts_with(&from) {
                                replace_prefix(k, &from, &to)
                            } else {
                                k.clone()
                            }
                        };
                        model.records =
                            model.records.drain().map(|(k, v)| (rewrite(&k), v)).collect();
                        model.defaults =
                            model.defaults.drain().map(|(k, v)| (rewrite(&k), v)).collect();
                        model.dirs = model.dirs.drain().map(|k| rewrite(&k)).collect();
                        model.prune_above(&from);
                        model.add_dir_chain(strict_prefixes(&to));
                        bumped = true;
                    }
                }
                FullOp::AddLoc(p, n) => {
                    let r = table.add_location(&p, NodeId(n));
                    match model.records.get_mut(&p) {
                        Some(rec) => {
                            let changed = rec.locs.insert(n);
                            prop_assert_eq!(r.unwrap(), changed);
                            bumped = changed;
                        }
                        None => prop_assert!(
                            matches!(r, Err(TableError::NotFound { .. })),
                            "add_location {}: {:?}", p, r
                        ),
                    }
                }
                FullOp::RemoveLoc(p, n) => {
                    let r = table.remove_location(&p, NodeId(n));
                    match model.records.get_mut(&p) {
                        Some(rec) => {
                            let changed = rec.locs.remove(&n);
                            prop_assert_eq!(r.unwrap(), changed);
                            bumped = changed;
                        }
                        None => prop_assert!(
                            matches!(r, Err(TableError::NotFound { .. })),
                            "remove_location {}: {:?}", p, r
                        ),
                    }
                }
                FullOp::SetDefault(d, id) => {
                    let r = table.set_dir_default(
                        &d,
                        UrlEntry::new(ContentId(id), ContentKind::Image, 32),
                    );
                    if model.records.keys().any(|rec| d.starts_with(rec)) {
                        prop_assert!(
                            matches!(r, Err(TableError::NotADirectory { .. })),
                            "set_dir_default {} through a file: {:?}", d, r
                        );
                    } else {
                        prop_assert!(r.is_ok(), "set_dir_default {} should succeed: {:?}", d, r);
                        if !d.is_root() {
                            model.add_dir_chain(strict_prefixes(&d));
                            model.dirs.insert(d.clone());
                        }
                        // Replacing an existing default installs a fresh
                        // entry (hit count restarts at zero).
                        model.defaults.insert(d, Rec::new(id));
                        bumped = true;
                    }
                }
                FullOp::RemoveDefault(d) => {
                    let r = table.remove_dir_default(&d);
                    match model.defaults.remove(&d) {
                        Some(rec) => {
                            let entry = r.expect("model says a default exists");
                            prop_assert_eq!(entry.content(), ContentId(rec.id));
                            prop_assert_eq!(entry.hits(), rec.hits);
                            // The table keeps the now-possibly-empty
                            // directory chain alive; the model's dirs set is
                            // deliberately not pruned here.
                            bumped = true;
                        }
                        None => prop_assert!(
                            matches!(r, Err(TableError::NotFound { .. })),
                            "remove_dir_default {}: {:?}", d, r
                        ),
                    }
                }
                FullOp::Hit(p) => {
                    let got = table.lookup_and_hit(&p).map(|e| (e.content().0, e.hits()));
                    let expected = if let Some(rec) = model.records.get_mut(&p) {
                        rec.hits += 1;
                        Some((rec.id, rec.hits))
                    } else {
                        match model
                            .defaults
                            .iter_mut()
                            .filter(|(d, _)| p.starts_with(d))
                            .max_by_key(|(d, _)| d.depth())
                        {
                            Some((_, rec)) => {
                                rec.hits += 1;
                                Some((rec.id, rec.hits))
                            }
                            None => None,
                        }
                    };
                    prop_assert_eq!(got, expected, "hit {}", p);
                }
            }
            prop_assert_eq!(
                table.generation(),
                g0 + u64::from(bumped),
                "generation after {:?}", (&bumped,)
            );
        }

        // Final state equivalence: counts, every record, every default, and
        // the iterator's view.
        prop_assert_eq!(table.len(), model.records.len());
        prop_assert_eq!(table.dir_default_count(), model.defaults.len());
        for (p, rec) in &model.records {
            let entry = table.lookup(p).expect("model record present in table");
            prop_assert_eq!(entry.content(), ContentId(rec.id));
            prop_assert_eq!(entry.hits(), rec.hits);
            let locs: HashSet<u16> = entry.locations().iter().map(|n| n.0).collect();
            prop_assert_eq!(&locs, &rec.locs);
        }
        for (d, rec) in &model.defaults {
            // Looking up the directory itself resolves its own default.
            let entry = table.lookup(d).expect("model default present in table");
            prop_assert_eq!(entry.content(), ContentId(rec.id));
            prop_assert_eq!(entry.hits(), rec.hits);
        }
        let iter_paths: HashSet<UrlPath> = table.iter().map(|(p, _)| p).collect();
        let model_paths: HashSet<UrlPath> = model.records.keys().cloned().collect();
        prop_assert_eq!(iter_paths, model_paths);
    }

    /// `set_dir_default` through a file and `insert` below a file always
    /// fail with NotADirectory and leave the table untouched.
    #[test]
    fn paths_through_files_are_rejected(
        file in tight_path_strategy(),
        below in prop::collection::vec("[abc]", 1..3),
    ) {
        let mut table = UrlTable::new();
        table
            .insert(file.clone(), UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 8))
            .unwrap();
        let mut deeper = file.clone();
        for seg in below {
            deeper = deeper.join(&seg).unwrap();
        }
        let g = table.generation();

        let r = table.set_dir_default(&deeper, UrlEntry::new(ContentId(2), ContentKind::Image, 8));
        prop_assert!(matches!(r, Err(TableError::NotADirectory { .. })));
        let r = table.insert(deeper.clone(), UrlEntry::new(ContentId(3), ContentKind::Cgi, 8));
        prop_assert!(matches!(r, Err(TableError::NotADirectory { .. })));

        prop_assert_eq!(table.generation(), g);
        prop_assert_eq!(table.len(), 1);
        prop_assert_eq!(table.dir_default_count(), 0);
        prop_assert_eq!(table.lookup(&file).unwrap().content(), ContentId(1));
        prop_assert!(table.lookup(&deeper).is_none());
    }

    /// Renaming onto any existing node — record or directory — fails with
    /// DestinationExists and both subtrees survive unchanged.
    #[test]
    fn rename_onto_existing_node_is_rejected(
        src in tight_path_strategy(),
        dst_file in tight_path_strategy(),
        dst_child in "[abc]",
    ) {
        prop_assume!(!src.starts_with(&dst_file) && !dst_file.starts_with(&src));
        let mut table = UrlTable::new();
        table
            .insert(src.clone(), UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 8))
            .unwrap();
        table
            .insert(
                dst_file.join(&dst_child).unwrap(),
                UrlEntry::new(ContentId(2), ContentKind::StaticHtml, 8),
            )
            .unwrap();
        let g = table.generation();

        // Destination is an existing record.
        let r = table.rename(&src, &dst_file.join(&dst_child).unwrap());
        prop_assert!(matches!(r, Err(TableError::DestinationExists { .. })));
        // Destination is an existing directory.
        let r = table.rename(&src, &dst_file);
        prop_assert!(matches!(r, Err(TableError::DestinationExists { .. })));

        prop_assert_eq!(table.generation(), g);
        prop_assert_eq!(table.lookup(&src).unwrap().content(), ContentId(1));
        prop_assert_eq!(
            table.lookup(&dst_file.join(&dst_child).unwrap()).unwrap().content(),
            ContentId(2)
        );
    }
}
