//! Concurrency stress tests for the snapshot-publication protocol:
//! reader threads with private per-thread caches race a writer that
//! publishes table mutations through [`TablePublisher`].
//!
//! The invariants checked here are the ones the multi-worker distributor
//! relies on:
//!
//! 1. **Generation monotonicity** — a reader's pinned generation never goes
//!    backwards, and the handle's published generation only advances.
//! 2. **Publication visibility** — once a delete has been *published*
//!    (`update` returned and the fact was made visible to the reader via a
//!    Release/Acquire flag), no subsequent lookup may still route the
//!    deleted path.
//! 3. **Snapshot atomicity** — mutations applied inside one `update`
//!    closure become visible together or not at all.

use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_urltable::{TablePublisher, UrlEntry, UrlTable};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

fn stress_paths(n: usize) -> Vec<UrlPath> {
    (0..n).map(|i| p(&format!("/stress/obj{i}"))).collect()
}

/// Readers with small private caches hammer every path while the writer
/// churns replica sets and then deletes each record. After a delete has
/// been published, readers must never route the path again; pinned and
/// published generations must be monotone throughout.
#[test]
fn published_deletes_are_never_resurrected() {
    const PATHS: usize = 48;
    const READERS: usize = 4;

    let paths = stress_paths(PATHS);
    let mut table = UrlTable::new();
    for (i, path) in paths.iter().enumerate() {
        table
            .insert(
                path.clone(),
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 64)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
    }
    let publisher = TablePublisher::new(table);
    // Two flags per path bracket its delete: `delete_started` is raised
    // before the remove is applied, `deleted` after the remove has been
    // published. A lookup may miss only once the delete has started, and
    // may route only until it was published — comparing against a single
    // flag on both sides would race the flag read against the publication
    // and fail spuriously.
    let delete_started: Arc<Vec<AtomicBool>> =
        Arc::new((0..PATHS).map(|_| AtomicBool::new(false)).collect());
    let deleted: Arc<Vec<AtomicBool>> =
        Arc::new((0..PATHS).map(|_| AtomicBool::new(false)).collect());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let handle = publisher.handle();
            let delete_started = Arc::clone(&delete_started);
            let deleted = Arc::clone(&deleted);
            let stop = Arc::clone(&stop);
            let paths = &paths;
            scope.spawn(move || {
                // A cache much smaller than the path set keeps evictions and
                // refills in play while snapshots swap underneath.
                let mut reader = handle.reader(16);
                let mut last_pinned = reader.pinned_generation();
                let mut last_published = handle.generation();
                while !stop.load(Ordering::Relaxed) {
                    for (i, path) in paths.iter().enumerate() {
                        let was_deleted = deleted[i].load(Ordering::Acquire);
                        let entry = reader.lookup(path);
                        let pinned = reader.pinned_generation();
                        assert!(
                            pinned >= last_pinned,
                            "pinned generation went backwards: {last_pinned} -> {pinned}"
                        );
                        last_pinned = pinned;
                        let published = handle.generation();
                        assert!(
                            published >= last_published,
                            "published generation went backwards"
                        );
                        last_published = published;
                        match entry {
                            Some(e) => {
                                assert!(
                                    !was_deleted,
                                    "lookup routed {path} after its delete was published"
                                );
                                assert_eq!(e.content(), ContentId(i as u32));
                                assert!(
                                    !e.locations().is_empty(),
                                    "published snapshots never have empty replica sets"
                                );
                            }
                            None => {
                                // The record is present from the initial
                                // table until its single delete, so a miss
                                // proves the remove's publication preceded
                                // this lookup — which requires the delete to
                                // have started. (Checked *after* the lookup;
                                // `deleted` may still lag the publication.)
                                assert!(
                                    delete_started[i].load(Ordering::Acquire),
                                    "lookup missed {path} before its delete began"
                                );
                            }
                        }
                    }
                }
            });
        }

        // Writer: churn each record's replica set, then delete it and only
        // afterwards raise the flag the readers check (Release pairs with
        // the readers' Acquire loads).
        for (i, path) in paths.iter().enumerate() {
            for round in 1u16..4 {
                publisher
                    .update(|t| t.add_location(path, NodeId(round)))
                    .unwrap();
                publisher
                    .update(|t| t.remove_location(path, NodeId(round)))
                    .unwrap();
            }
            delete_started[i].store(true, Ordering::Release);
            publisher.update(|t| t.remove(path)).unwrap();
            deleted[i].store(true, Ordering::Release);
            if i % 8 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Everything was deleted; the final snapshot agrees.
    assert_eq!(publisher.snapshot().len(), 0);
}

/// Mutations grouped in a single `update` closure are published as one
/// snapshot: readers pinning a table can never see the pair half-applied.
#[test]
fn multi_mutation_updates_are_atomic() {
    const CYCLES: usize = 400;
    const READERS: usize = 3;

    let a = p("/pair/a.html");
    let b = p("/pair/b.html");
    let publisher = TablePublisher::new(UrlTable::new());
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let handle = publisher.handle();
            let stop = Arc::clone(&stop);
            let (a, b) = (a.clone(), b.clone());
            scope.spawn(move || {
                let mut reader = handle.reader(8);
                while !stop.load(Ordering::Relaxed) {
                    // One pinned snapshot for both probes.
                    let table = reader.table();
                    let has_a = table.lookup(&a).is_some();
                    let has_b = table.lookup(&b).is_some();
                    assert_eq!(
                        has_a, has_b,
                        "insert/remove pair observed half-applied (a={has_a}, b={has_b})"
                    );
                }
            });
        }

        for i in 0..CYCLES {
            publisher
                .update(|t| {
                    t.insert(
                        a.clone(),
                        UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 8)
                            .with_locations([NodeId(0)]),
                    )?;
                    t.insert(
                        b.clone(),
                        UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 8)
                            .with_locations([NodeId(1)]),
                    )
                })
                .unwrap();
            publisher
                .update(|t| {
                    t.remove(&a)?;
                    t.remove(&b).map(|_| ())
                })
                .unwrap();
            if i % 64 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(publisher.snapshot().len(), 0);
    assert_eq!(publisher.generation(), publisher.handle().generation());
}

/// Concurrent writers going through `update` are serialized: the
/// clone → mutate → publish sequence of one writer can never discard a
/// mutation another writer already published. (With an unserialized
/// read-modify-write, two racing writers clone the same base snapshot and
/// the later publish silently drops the earlier insert.)
#[test]
fn concurrent_updates_are_never_lost() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 64;

    let publisher = TablePublisher::new(UrlTable::new());
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let publisher = &publisher;
            scope.spawn(move || {
                for i in 0..PER_WRITER {
                    publisher
                        .update(|t| {
                            t.insert(
                                p(&format!("/writer{w}/obj{i}")),
                                UrlEntry::new(
                                    ContentId((w * PER_WRITER + i) as u32),
                                    ContentKind::StaticHtml,
                                    8,
                                )
                                .with_locations([NodeId(w as u16)]),
                            )
                        })
                        .unwrap();
                }
            });
        }
    });
    assert_eq!(
        publisher.snapshot().len(),
        WRITERS * PER_WRITER,
        "a racing writer's published insert was discarded"
    );
}

/// Management deletes racing a hit-count flush (the proxy's `flush_hits`
/// publishes through the same `update` path) must stay deleted — the
/// flush's copy-on-write publication may not resurrect a record whose
/// delete was already published.
#[test]
fn deletes_racing_hit_flushes_stay_deleted() {
    const PATHS: usize = 64;

    let paths = stress_paths(PATHS);
    let hot = p("/stress/hot.html");
    let mut table = UrlTable::new();
    for (i, path) in paths.iter().enumerate() {
        table
            .insert(
                path.clone(),
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 64)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
    }
    table
        .insert(
            hot.clone(),
            UrlEntry::new(ContentId(PATHS as u32), ContentKind::StaticHtml, 64)
                .with_locations([NodeId(0)]),
        )
        .unwrap();
    let publisher = TablePublisher::new(table);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let flusher_stop = Arc::clone(&stop);
        let flusher_publisher = &publisher;
        let flusher_hot = hot.clone();
        scope.spawn(move || {
            while !flusher_stop.load(Ordering::Relaxed) {
                flusher_publisher.update(|t| t.record_hits(&flusher_hot, 1));
            }
        });

        for path in &paths {
            publisher.update(|t| t.remove(path)).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    let last = publisher.snapshot();
    for path in &paths {
        assert!(
            last.lookup(path).is_none(),
            "hit flush resurrected published delete of {path}"
        );
    }
    assert!(
        last.lookup(&hot).is_some(),
        "hit flush lost the live record"
    );
}

/// Hit-count publications (e.g. the proxy's `flush_hits`) do not advance the
/// routing generation, so readers keep their pins and caches; a routing
/// mutation immediately afterwards still re-pins them.
#[test]
fn hit_publications_do_not_force_repins() {
    let path = p("/hot/page.html");
    let mut table = UrlTable::new();
    table
        .insert(
            path.clone(),
            UrlEntry::new(ContentId(7), ContentKind::StaticHtml, 16).with_locations([NodeId(0)]),
        )
        .unwrap();
    let publisher = TablePublisher::new(table);
    let handle = publisher.handle();
    let mut reader = handle.reader(8);
    assert!(reader.lookup(&path).is_some());
    let pinned = reader.pinned_generation();

    // Fold in hit counts: a publication, but not a routing change.
    publisher.update(|t| t.record_hits(&path, 1000));
    assert!(reader.lookup(&path).is_some());
    assert_eq!(
        reader.pinned_generation(),
        pinned,
        "hit-only publications must not move the routing generation"
    );

    // A genuine routing mutation does re-pin, and the reader sees both the
    // new replica and the accumulated hits.
    publisher
        .update(|t| t.add_location(&path, NodeId(3)))
        .unwrap();
    let entry = reader.lookup(&path).expect("record still routed");
    assert!(reader.pinned_generation() > pinned);
    assert!(entry.locations().contains(&NodeId(3)));
    assert_eq!(entry.hits(), 1000);
}
