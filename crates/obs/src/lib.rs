//! # cpms-obs
//!
//! End-to-end observability for the CPMS runtime: a dependency-free
//! metrics registry ([`MetricsRegistry`]) of named counters, gauges, and
//! sharded log-scale latency histograms ([`Histogram`]), RAII span
//! timers and a bounded post-mortem event log ([`trace`]), and exporters
//! rendering a registry snapshot as JSON, Prometheus text, or a console
//! report ([`export`]).
//!
//! The design constraint is the same one that shaped PR 1's snapshot
//! URL table: **nothing on the request path may take a lock**. Counters
//! and gauges are single relaxed atomics; histograms are per-worker
//! shards (a record is a handful of relaxed atomics on a private cache
//! line) folded only when a snapshot is taken. The §5.2 measurements the
//! paper reports — per-lookup latency and URL-table memory — become a
//! histogram and a gauge in this registry, so every future PR can check
//! them release-over-release.
//!
//! # Example
//!
//! ```
//! use cpms_obs::{MetricsRegistry, Span};
//!
//! let registry = MetricsRegistry::new();
//! let requests = registry.counter("proxy_requests_total");
//! let latency = registry.histogram("proxy_request_ns").recorder(0);
//!
//! // per-request hot path: atomics only
//! requests.inc();
//! {
//!     let _span = Span::enter("request", &latency); // records on drop
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("proxy_requests_total"), Some(1));
//! assert_eq!(snap.histogram("proxy_request_ns").unwrap().count, 1);
//! println!("{}", snap.to_prometheus());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod series;
pub mod slo;
pub mod spans;
pub mod trace;

pub use hist::{Histogram, HistogramRecorder, HistogramSummary};
pub use registry::{Counter, Gauge, MetricsRegistry, RegistrySnapshot};
pub use series::{
    Sampler, SeriesPoint, SeriesRecorder, DEFAULT_MAX_SERIES, DEFAULT_RECORD_INTERVAL,
    DEFAULT_SERIES_CAPACITY,
};
pub use slo::{SloRule, SloVerdict, SloWatchdog};
pub use spans::{
    OwnedSpan, ScopedTrace, SpanCollector, SpanId, SpanRecord, TraceContext, TraceId, TracedSpan,
    CONTEXT_WIRE_LEN,
};
pub use trace::{Event, EventLog, RequestId, Span};
