//! Distributed-trace context, propagation, and the span collector.
//!
//! A [`TraceContext`] identifies one position in one cluster-wide trace:
//! a 128-bit trace id shared by every span of the trace, a 64-bit span
//! id for this hop, the parent span id that caused it, and the head
//! sampling decision made at the trace root. The context rides three
//! carriers — a thread-local cell within a process (see
//! [`TraceContext::current`] / [`ScopedTrace`]), a versioned `cpms-wire`
//! frame extension between processes, and an `x-cpms-trace` HTTP header
//! on the proxy→origin relay — so one request or one management
//! operation yields a single causally-linked tree across the cluster.
//!
//! Finished spans land in the process-local [`SpanCollector`]: a
//! lock-sharded, bounded store with *tail sampling* — error spans are
//! always kept, the slowest spans displace the fastest once a shard is
//! full, and a small fraction of ordinary spans survive regardless so
//! the healthy baseline stays visible. The collector renders itself as
//! the `/_cpms/trace.json` surface that `cpms-lab` scrapes and merges
//! into the cluster-wide `traces.json`.

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The trace id shared by every span in one distributed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl TraceId {
    /// Parses the canonical 32-hex-digit rendering.
    #[must_use]
    pub fn parse(text: &str) -> Option<TraceId> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(TraceId)
    }
}

/// One hop's span id within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh, never-zero 64-bit id: a per-process random seed (time ×
/// pid, so concurrent lab processes diverge) mixed with a global
/// counter. Not cryptographic — unique enough for trace correlation.
fn fresh_u64() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default();
        let pid = u64::from(std::process::id());
        splitmix64(u64::try_from(now.as_nanos() & u128::from(u64::MAX)).unwrap_or(0) ^ (pid << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed ^ n.wrapping_mul(0xD605_0B1C_9C3A_415B)).max(1)
}

/// Microseconds since the Unix epoch right now — the cross-process
/// clock the lab uses to causally order merged spans.
#[must_use]
pub fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Bytes of the binary context encoding carried in wire-frame
/// extensions: trace (16) + span (8) + parent (8, zero = none) +
/// flags (1, bit 0 = sampled).
pub const CONTEXT_WIRE_LEN: usize = 33;

/// One position in a distributed trace, as carried between hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of this tree shares.
    pub trace: TraceId,
    /// This hop's span id.
    pub span: SpanId,
    /// The span that caused this hop (`None` at the trace root).
    pub parent: Option<SpanId>,
    /// Head sampling decision made at the root; children inherit it so
    /// trees are recorded whole or not at all.
    pub sampled: bool,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

impl TraceContext {
    /// Starts a brand-new trace rooted here.
    #[must_use]
    pub fn root(sampled: bool) -> TraceContext {
        TraceContext {
            trace: TraceId((u128::from(fresh_u64()) << 64) | u128::from(fresh_u64())),
            span: SpanId(fresh_u64()),
            parent: None,
            sampled,
        }
    }

    /// A child context: same trace and sampling, fresh span id,
    /// parented by this context's span.
    #[must_use]
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            span: SpanId(fresh_u64()),
            parent: Some(self.span),
            sampled: self.sampled,
        }
    }

    /// The context active on this thread, if any.
    #[must_use]
    pub fn current() -> Option<TraceContext> {
        CURRENT.with(Cell::get)
    }

    /// Serializes to the fixed-size wire-extension encoding.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; CONTEXT_WIRE_LEN] {
        let mut out = [0u8; CONTEXT_WIRE_LEN];
        out[..16].copy_from_slice(&self.trace.0.to_be_bytes());
        out[16..24].copy_from_slice(&self.span.0.to_be_bytes());
        out[24..32].copy_from_slice(&self.parent.map_or(0, |p| p.0).to_be_bytes());
        out[32] = u8::from(self.sampled);
        out
    }

    /// Deserializes the wire-extension encoding. Returns `None` for
    /// semantically invalid contexts (zero trace or span id) so
    /// receivers degrade to untraced rather than building broken trees.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != CONTEXT_WIRE_LEN {
            return None;
        }
        let trace = u128::from_be_bytes(bytes[..16].try_into().ok()?);
        let span = u64::from_be_bytes(bytes[16..24].try_into().ok()?);
        let parent = u64::from_be_bytes(bytes[24..32].try_into().ok()?);
        if trace == 0 || span == 0 {
            return None;
        }
        Some(TraceContext {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: (parent != 0).then_some(SpanId(parent)),
            sampled: bytes[32] & 1 == 1,
        })
    }

    /// Renders the `x-cpms-trace` HTTP header value:
    /// `trace-span-parent-flags` in fixed-width hex (parent `0…0` at
    /// the root).
    #[must_use]
    pub fn to_header(&self) -> String {
        format!(
            "{:032x}-{:016x}-{:016x}-{:02x}",
            self.trace.0,
            self.span.0,
            self.parent.map_or(0, |p| p.0),
            u8::from(self.sampled)
        )
    }

    /// Parses the `x-cpms-trace` header value; malformed or
    /// semantically invalid values yield `None` (untraced), never an
    /// error — a bad header must not fail the request.
    #[must_use]
    pub fn from_header(text: &str) -> Option<TraceContext> {
        let mut parts = text.trim().split('-');
        let (t, s, p, f) = (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
        if parts.next().is_some() || t.len() != 32 || s.len() != 16 || p.len() != 16 {
            return None;
        }
        let trace = u128::from_str_radix(t, 16).ok()?;
        let span = u64::from_str_radix(s, 16).ok()?;
        let parent = u64::from_str_radix(p, 16).ok()?;
        let flags = u8::from_str_radix(f, 16).ok()?;
        if trace == 0 || span == 0 {
            return None;
        }
        Some(TraceContext {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: (parent != 0).then_some(SpanId(parent)),
            sampled: flags & 1 == 1,
        })
    }
}

/// RAII activation of a [`TraceContext`] on the current thread; the
/// previous context (if any) is restored on drop. `!Send`: the guard
/// must drop on the thread that created it.
#[derive(Debug)]
pub struct ScopedTrace {
    prev: Option<TraceContext>,
    _not_send: PhantomData<*const ()>,
}

impl ScopedTrace {
    /// Makes `ctx` the current context for this thread until drop.
    #[must_use]
    pub fn activate(ctx: TraceContext) -> ScopedTrace {
        ScopedTrace {
            prev: CURRENT.with(|c| c.replace(Some(ctx))),
            _not_send: PhantomData,
        }
    }

    /// Clears the current context for this thread until drop — used by
    /// executors between requests so a context never leaks across
    /// unrelated work.
    #[must_use]
    pub fn clear() -> ScopedTrace {
        ScopedTrace {
            prev: CURRENT.with(|c| c.replace(None)),
            _not_send: PhantomData,
        }
    }
}

impl Drop for ScopedTrace {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One finished span as stored and exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The causing span, if any.
    pub parent: Option<SpanId>,
    /// Stage name, e.g. `proxy.request` or `wire.attempt`.
    pub name: String,
    /// Free-form specifics (path, node, error text).
    pub detail: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_unix_micros: u64,
    /// Elapsed nanoseconds.
    pub duration_ns: u64,
    /// Whether the spanned operation failed.
    pub error: bool,
}

/// How many shards a collector spreads its spans over.
const SPAN_SHARDS: usize = 8;
/// Default retained-span bound across all shards.
pub const DEFAULT_SPAN_CAPACITY: usize = 16_384;
/// One in this many unsampled-by-duration spans is kept anyway once a
/// shard is full, so the healthy fast path stays represented.
const TAIL_KEEP_ONE_IN: u64 = 16;
/// Default head-sampling rate for high-volume roots
/// ([`TracedSpan::enter_head_sampled`]): one request trace in this many
/// is sampled; error spans record regardless of the roll.
pub const DEFAULT_HEAD_SAMPLE_ONE_IN: u64 = 4;

/// A lock-sharded, bounded store of finished [`SpanRecord`]s with
/// tail sampling (see module docs). Shards are keyed by trace id so one
/// trace's spans age together.
#[derive(Debug)]
pub struct SpanCollector {
    shards: Vec<Mutex<Vec<SpanRecord>>>,
    per_shard: usize,
    enabled: AtomicBool,
    recorded: AtomicU64,
    dropped: AtomicU64,
    process: Mutex<String>,
    tiebreak: AtomicU64,
    head_one_in: AtomicU64,
    head_counter: AtomicU64,
    scrape_seq: AtomicU64,
    started: Instant,
}

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanCollector {
    /// A collector retaining at most `capacity` spans process-wide.
    #[must_use]
    pub fn new(capacity: usize) -> SpanCollector {
        let per_shard = capacity.div_ceil(SPAN_SHARDS).max(1);
        SpanCollector {
            shards: (0..SPAN_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            per_shard,
            enabled: AtomicBool::new(true),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            process: Mutex::new(String::from("proc")),
            tiebreak: AtomicU64::new(0),
            head_one_in: AtomicU64::new(DEFAULT_HEAD_SAMPLE_ONE_IN),
            head_counter: AtomicU64::new(0),
            scrape_seq: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// Sets the head-sampling rate for [`TracedSpan::enter_head_sampled`]
    /// roots: 1 samples every request trace, `n` samples one in `n`
    /// (clamped to at least 1). Management-plane roots via
    /// [`TracedSpan::enter`] are always sampled and unaffected.
    pub fn set_head_sample_one_in(&self, n: u64) {
        self.head_one_in.store(n.max(1), Ordering::Relaxed);
    }

    /// The head-sampling decision for one fresh high-volume root.
    fn head_roll(&self) -> bool {
        let n = self.head_one_in.load(Ordering::Relaxed).max(1);
        self.head_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
    }

    /// Whether recording is on. Off means [`TracedSpan::enter`] is a
    /// no-op — the untraced baseline the latency bench compares against.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Labels this process in exports (`proxy`, `broker-n3`, …).
    pub fn set_process(&self, label: &str) {
        *self.process.lock().expect("span process lock") = label.to_string();
    }

    /// The process label.
    #[must_use]
    pub fn process(&self) -> String {
        self.process.lock().expect("span process lock").clone()
    }

    /// Spans accepted into shards (including later-evicted ones).
    #[must_use]
    pub fn recorded_total(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans rejected or evicted by tail sampling.
    #[must_use]
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Stores one finished span, applying tail sampling once the
    /// shard is full: errors always stay, slower spans displace the
    /// fastest non-error span of a bounded random probe set, and one in
    /// [`TAIL_KEEP_ONE_IN`] of the rest survives regardless.
    pub fn record(&self, record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let shard_index =
            usize::try_from(splitmix64(record.trace.0 as u64)).unwrap_or(0) % self.shards.len();
        let mut shard = self.shards[shard_index].lock().expect("span shard lock");
        if shard.len() < self.per_shard {
            shard.push(record);
            return;
        }
        // Full shard: find a cheap victim (a fastest non-error span).
        // Scanning the whole shard for the exact minimum is O(shard)
        // *under the lock* — a convoy once the collector saturates on
        // the request path — so large shards probe a bounded random
        // sample instead and evict the fastest non-error span among the
        // probes; the probed minimum sits in the fast tail with high
        // probability, which is all tail sampling needs.
        const EVICTION_PROBES: usize = 8;
        let roll_base = splitmix64(self.tiebreak.fetch_add(1, Ordering::Relaxed));
        let probe = |j: usize| {
            if shard.len() <= EVICTION_PROBES * 2 {
                (j < shard.len()).then_some(j)
            } else {
                (j < EVICTION_PROBES).then(|| {
                    usize::try_from(
                        splitmix64(roll_base ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                            % shard.len() as u64,
                    )
                    .unwrap_or(0)
                })
            }
        };
        let probed: Vec<usize> = (0..).map_while(probe).collect();
        let victim = probed
            .iter()
            .map(|&i| (i, &shard[i]))
            .filter(|(_, r)| !r.error)
            .min_by_key(|(_, r)| r.duration_ns)
            .map(|(i, r)| (i, r.duration_ns));
        match victim {
            Some((i, fastest)) if record.error || record.duration_ns > fastest => {
                shard[i] = record;
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Some((i, _)) => {
                if roll_base.is_multiple_of(TAIL_KEEP_ONE_IN) {
                    shard[i] = record;
                }
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            // Every probed span is an error: drop the newcomer unless it
            // is an error too, in which case displace the fastest probed.
            None if record.error => {
                if let Some(&i) = probed.iter().min_by_key(|&&i| shard[i].duration_ns) {
                    shard[i] = record;
                }
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// All retained spans, in no particular order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().expect("span shard lock").iter().cloned());
        }
        out
    }

    /// Retained spans of one trace.
    #[must_use]
    pub fn spans_of(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .snapshot()
            .into_iter()
            .filter(|r| r.trace == trace)
            .collect();
        out.sort_by_key(|r| (r.start_unix_micros, r.span.0));
        out
    }

    /// Renders the `/_cpms/trace.json` document: the process label, a
    /// monotonic per-render `scrape_seq` plus collector uptime (so the
    /// lab orders scrapes without trusting its own clock), collector
    /// counters, and every retained span.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"process\":\"");
        out.push_str(&crate::export::json_escape(&self.process()));
        out.push_str("\",\"scrape_seq\":");
        out.push_str(&self.scrape_seq.fetch_add(1, Ordering::Relaxed).to_string());
        out.push_str(",\"uptime_micros\":");
        out.push_str(
            &u64::try_from(self.started.elapsed().as_micros())
                .unwrap_or(u64::MAX)
                .to_string(),
        );
        out.push_str(",\"recorded\":");
        out.push_str(&self.recorded_total().to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped_total().to_string());
        out.push_str(",\"spans\":[");
        let mut spans = self.snapshot();
        spans.sort_by_key(|r| (r.start_unix_micros, r.span.0));
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"trace\":\"");
            out.push_str(&s.trace.to_string());
            out.push_str("\",\"span\":\"");
            out.push_str(&s.span.to_string());
            out.push_str("\",\"parent\":");
            match s.parent {
                Some(p) => {
                    out.push('"');
                    out.push_str(&p.to_string());
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":\"");
            out.push_str(&crate::export::json_escape(&s.name));
            out.push_str("\",\"detail\":\"");
            out.push_str(&crate::export::json_escape(&s.detail));
            out.push_str("\",\"start_unix_micros\":");
            out.push_str(&s.start_unix_micros.to_string());
            out.push_str(",\"duration_ns\":");
            out.push_str(&s.duration_ns.to_string());
            out.push_str(",\"error\":");
            out.push_str(if s.error { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// An RAII distributed span: on entry it derives a child of the
/// thread's current [`TraceContext`] (or roots a new trace) and makes
/// that child current; on drop it restores the previous context and
/// records a [`SpanRecord`] into the collector. When the collector is
/// disabled the whole thing is a no-op — no clock reads, no context.
#[derive(Debug)]
pub struct TracedSpan<'c> {
    collector: &'c SpanCollector,
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    ctx: TraceContext,
    _scope: ScopedTrace,
    name: String,
    detail: String,
    error: bool,
    started: Instant,
    start_unix_micros: u64,
}

impl<'c> TracedSpan<'c> {
    /// Opens a span named `name`: a child of the current context, or a
    /// fresh sampled root when no trace is active on this thread.
    #[must_use]
    pub fn enter(collector: &'c SpanCollector, name: impl Into<String>) -> TracedSpan<'c> {
        TracedSpan::enter_rooting(collector, name, || TraceContext::root(true))
    }

    /// Like [`TracedSpan::enter`], but a fresh root's sampling flag
    /// comes from the collector's head-sampling roll instead of being
    /// unconditionally on — the entry point for high-volume roots (the
    /// proxy's per-request trace). Unsampled spans stay active as
    /// context (children inherit the decision across the cluster) and
    /// still record if they end in error; they just skip the collector
    /// on the happy path, which is what keeps tracing cheap at rate.
    #[must_use]
    pub fn enter_head_sampled(
        collector: &'c SpanCollector,
        name: impl Into<String>,
    ) -> TracedSpan<'c> {
        TracedSpan::enter_rooting(collector, name, || {
            TraceContext::root(collector.head_roll())
        })
    }

    fn enter_rooting(
        collector: &'c SpanCollector,
        name: impl Into<String>,
        root: impl FnOnce() -> TraceContext,
    ) -> TracedSpan<'c> {
        if !collector.is_enabled() {
            return TracedSpan {
                collector,
                live: None,
            };
        }
        let ctx = TraceContext::current().map_or_else(root, |c| c.child());
        TracedSpan {
            collector,
            live: Some(LiveSpan {
                ctx,
                _scope: ScopedTrace::activate(ctx),
                name: name.into(),
                detail: String::new(),
                error: false,
                started: Instant::now(),
                start_unix_micros: unix_micros_now(),
            }),
        }
    }

    /// The context this span made current (`None` when disabled).
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.live.as_ref().map(|l| l.ctx)
    }

    /// Replaces the span's detail text.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(live) = self.live.as_mut() {
            live.detail = detail.into();
        }
    }

    /// Marks the span failed (error spans always survive sampling).
    pub fn set_error(&mut self, error: bool) {
        if let Some(live) = self.live.as_mut() {
            live.error = error;
        }
    }
}

impl Drop for TracedSpan<'_> {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        // Record sampled spans, plus errors even when the head
        // sampling decision said no — failures are always worth keeping.
        if live.ctx.sampled || live.error {
            self.collector.record(SpanRecord {
                trace: live.ctx.trace,
                span: live.ctx.span,
                parent: live.ctx.parent,
                name: live.name,
                detail: live.detail,
                start_unix_micros: live.start_unix_micros,
                duration_ns: u64::try_from(live.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                error: live.error,
            });
        }
    }
}

/// A `Send` span for event-loop state machines.
///
/// [`TracedSpan`] is built around thread-local context propagation
/// (`ScopedTrace` pins it to one thread) and a borrow of the collector,
/// neither of which survives inside connection state stored across poller
/// wakeups. `OwnedSpan` drops both: it holds an `Arc` of the collector and
/// carries its [`TraceContext`] explicitly — callers thread the context to
/// children by hand (e.g. via the `x-cpms-trace` relay header) instead of
/// relying on the ambient thread-local. Recording semantics are identical to
/// [`TracedSpan`]: the record lands on drop (or [`OwnedSpan::finish`]) when
/// the context is sampled or the span errored.
#[derive(Debug)]
pub struct OwnedSpan {
    collector: Arc<SpanCollector>,
    live: Option<OwnedLive>,
}

#[derive(Debug)]
struct OwnedLive {
    ctx: TraceContext,
    name: String,
    detail: String,
    error: bool,
    started: Instant,
    start_unix_micros: u64,
}

impl OwnedSpan {
    fn open(
        collector: Arc<SpanCollector>,
        name: impl Into<String>,
        ctx: TraceContext,
    ) -> OwnedSpan {
        OwnedSpan {
            collector,
            live: Some(OwnedLive {
                ctx,
                name: name.into(),
                detail: String::new(),
                error: false,
                started: Instant::now(),
                start_unix_micros: unix_micros_now(),
            }),
        }
    }

    /// Opens a fresh root whose sampling flag comes from the collector's
    /// head-sampling roll — the owned counterpart of
    /// [`TracedSpan::enter_head_sampled`]. A disabled collector yields an
    /// inert span (no clock reads, `context()` is `None`).
    #[must_use]
    pub fn root_head_sampled(collector: Arc<SpanCollector>, name: impl Into<String>) -> OwnedSpan {
        if !collector.is_enabled() {
            return OwnedSpan {
                collector,
                live: None,
            };
        }
        let ctx = TraceContext::root(collector.head_roll());
        OwnedSpan::open(collector, name, ctx)
    }

    /// Opens a child of an explicit parent context (e.g. one recovered from
    /// an inbound `x-cpms-trace` header, or another span's `context()`).
    #[must_use]
    pub fn child_of(
        collector: Arc<SpanCollector>,
        parent: TraceContext,
        name: impl Into<String>,
    ) -> OwnedSpan {
        if !collector.is_enabled() {
            return OwnedSpan {
                collector,
                live: None,
            };
        }
        OwnedSpan::open(collector, name, parent.child())
    }

    /// The span's own context, for parenting children or stamping onto the
    /// wire (`None` when the collector was disabled at open).
    #[must_use]
    pub fn context(&self) -> Option<TraceContext> {
        self.live.as_ref().map(|l| l.ctx)
    }

    /// Replaces the span's detail text.
    pub fn set_detail(&mut self, detail: impl Into<String>) {
        if let Some(live) = self.live.as_mut() {
            live.detail = detail.into();
        }
    }

    /// Marks the span failed (error spans always survive sampling).
    pub fn set_error(&mut self, error: bool) {
        if let Some(live) = self.live.as_mut() {
            live.error = error;
        }
    }

    /// Closes the span now instead of at drop.
    pub fn finish(self) {}
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        if live.ctx.sampled || live.error {
            self.collector.record(SpanRecord {
                trace: live.ctx.trace,
                span: live.ctx.span,
                parent: live.ctx.parent,
                name: live.name,
                detail: live.detail,
                start_unix_micros: live.start_unix_micros,
                duration_ns: u64::try_from(live.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                error: live.error,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_binary_round_trip() {
        let root = TraceContext::root(true);
        let child = root.child();
        for ctx in [root, child] {
            let back = TraceContext::from_bytes(&ctx.to_bytes()).expect("valid bytes");
            assert_eq!(back, ctx);
        }
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.parent, Some(root.span));
        assert!(child.sampled);
    }

    #[test]
    fn invalid_contexts_degrade_to_none() {
        assert_eq!(TraceContext::from_bytes(&[0u8; CONTEXT_WIRE_LEN]), None);
        assert_eq!(TraceContext::from_bytes(&[1u8; 7]), None);
        let mut zero_span = TraceContext::root(true).to_bytes();
        zero_span[16..24].copy_from_slice(&[0u8; 8]);
        assert_eq!(TraceContext::from_bytes(&zero_span), None);
    }

    #[test]
    fn header_round_trip_and_rejection() {
        let ctx = TraceContext::root(false).child();
        let header = ctx.to_header();
        assert_eq!(TraceContext::from_header(&header), Some(ctx));
        assert_eq!(TraceContext::from_header("nonsense"), None);
        assert_eq!(TraceContext::from_header(""), None);
        let all_zero = format!("{:032x}-{:016x}-{:016x}-00", 0u128, 0u64, 0u64);
        assert_eq!(TraceContext::from_header(&all_zero), None);
    }

    #[test]
    fn scoped_activation_nests_and_restores() {
        assert_eq!(TraceContext::current(), None);
        let outer = TraceContext::root(true);
        {
            let _a = ScopedTrace::activate(outer);
            assert_eq!(TraceContext::current(), Some(outer));
            let inner = outer.child();
            {
                let _b = ScopedTrace::activate(inner);
                assert_eq!(TraceContext::current(), Some(inner));
            }
            assert_eq!(TraceContext::current(), Some(outer));
            {
                let _c = ScopedTrace::clear();
                assert_eq!(TraceContext::current(), None);
            }
            assert_eq!(TraceContext::current(), Some(outer));
        }
        assert_eq!(TraceContext::current(), None);
    }

    #[test]
    fn traced_spans_build_a_tree_in_the_collector() {
        let collector = SpanCollector::new(64);
        collector.set_process("test");
        let root_ctx;
        {
            let mut root = TracedSpan::enter(&collector, "proxy.request");
            root.set_detail("/index.html");
            root_ctx = root.context().expect("enabled");
            {
                let _child = TracedSpan::enter(&collector, "proxy.relay");
            }
        }
        let spans = collector.spans_of(root_ctx.trace);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "proxy.request").unwrap();
        let child = spans.iter().find(|s| s.name == "proxy.relay").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span));
        assert_eq!(root.detail, "/index.html");
        let json = collector.to_json();
        assert!(json.contains("\"process\":\"test\""));
        assert!(json.contains("proxy.relay"));
        assert!(json.contains("\"scrape_seq\":0"), "{json}");
        assert!(json.contains("\"uptime_micros\":"), "{json}");
        assert!(
            collector.to_json().contains("\"scrape_seq\":1"),
            "render seq advances"
        );
    }

    #[test]
    fn owned_spans_build_the_same_tree_without_thread_locals() {
        let collector = Arc::new(SpanCollector::new(64));
        collector.set_head_sample_one_in(1);
        let mut root = OwnedSpan::root_head_sampled(Arc::clone(&collector), "proxy.request");
        root.set_detail("/index.html");
        let root_ctx = root.context().expect("enabled");
        assert!(
            TraceContext::current().is_none(),
            "owned spans never touch the ambient thread-local"
        );
        let child = OwnedSpan::child_of(Arc::clone(&collector), root_ctx, "proxy.relay");
        let child_ctx = child.context().expect("enabled");
        assert_eq!(child_ctx.trace, root_ctx.trace);
        assert_eq!(child_ctx.parent, Some(root_ctx.span));
        child.finish();
        drop(root);

        let spans = collector.spans_of(root_ctx.trace);
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "proxy.request").unwrap();
        let relay = spans.iter().find(|s| s.name == "proxy.relay").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(relay.parent, Some(root.span));
        assert_eq!(root.detail, "/index.html");
    }

    #[test]
    fn owned_spans_respect_sampling_but_always_keep_errors() {
        let collector = Arc::new(SpanCollector::new(64));
        // Roll 1: sampled (counter starts at zero). Roll 2+: not sampled.
        collector.set_head_sample_one_in(1_000_000);
        let first = OwnedSpan::root_head_sampled(Arc::clone(&collector), "r");
        assert!(first.context().expect("enabled").sampled);
        drop(first);
        let quiet = OwnedSpan::root_head_sampled(Arc::clone(&collector), "r");
        let quiet_ctx = quiet.context().expect("enabled");
        assert!(!quiet_ctx.sampled);
        drop(quiet);
        assert!(collector.spans_of(quiet_ctx.trace).is_empty());

        let mut failed = OwnedSpan::root_head_sampled(Arc::clone(&collector), "r");
        let failed_ctx = failed.context().expect("enabled");
        assert!(!failed_ctx.sampled);
        failed.set_error(true);
        drop(failed);
        assert_eq!(collector.spans_of(failed_ctx.trace).len(), 1);

        let disabled = Arc::new(SpanCollector::new(64));
        disabled.set_enabled(false);
        let inert = OwnedSpan::root_head_sampled(Arc::clone(&disabled), "r");
        assert_eq!(inert.context(), None);
    }

    #[test]
    fn disabled_collector_records_nothing_and_sets_no_context() {
        let collector = SpanCollector::new(64);
        collector.set_enabled(false);
        {
            let span = TracedSpan::enter(&collector, "noop");
            assert_eq!(span.context(), None);
            assert_eq!(TraceContext::current(), None);
        }
        assert!(collector.snapshot().is_empty());
        assert_eq!(collector.recorded_total(), 0);
    }

    #[test]
    fn tail_sampling_keeps_errors_and_slow_spans() {
        let collector = SpanCollector::new(8);
        let make = |duration_ns: u64, error: bool| SpanRecord {
            trace: TraceId(u128::from(duration_ns) + 1),
            span: SpanId(duration_ns + 1),
            parent: None,
            name: "x".to_string(),
            detail: String::new(),
            start_unix_micros: 0,
            duration_ns,
            error,
        };
        // Overfill with fast spans, then add one slow and one error span.
        for i in 0..200 {
            collector.record(make(10 + i, false));
        }
        collector.record(make(1_000_000, false));
        collector.record(make(5, true));
        let kept = collector.snapshot();
        assert!(
            kept.iter().any(|r| r.duration_ns == 1_000_000),
            "slowest kept"
        );
        assert!(
            kept.iter().any(|r| r.error),
            "error span kept despite being fastest"
        );
        assert!(collector.dropped_total() > 0);
        assert!(kept.len() <= 8 * 2, "bounded (shard rounding tolerated)");
    }

    #[test]
    fn head_sampling_keeps_one_root_in_n() {
        let collector = SpanCollector::new(256);
        collector.set_head_sample_one_in(4);
        for _ in 0..16 {
            let _span = TracedSpan::enter_head_sampled(&collector, "proxy.request");
        }
        assert_eq!(collector.snapshot().len(), 4, "one in four roots kept");
        // The very first roll always samples, so single-request flows
        // (tests, quiet clusters) still produce a trace.
        let fresh = SpanCollector::new(256);
        fresh.set_head_sample_one_in(1000);
        {
            let span = TracedSpan::enter_head_sampled(&fresh, "proxy.request");
            assert!(span.context().expect("enabled").sampled);
        }
        assert_eq!(fresh.snapshot().len(), 1);
        // Inherited contexts bypass the roll entirely: the caller's
        // decision wins, sampled or not.
        let inherited = TraceContext::root(true);
        {
            let _scope = ScopedTrace::activate(inherited);
            let span = TracedSpan::enter_head_sampled(&fresh, "proxy.request");
            assert_eq!(span.context().map(|c| c.trace), Some(inherited.trace));
        }
        assert_eq!(fresh.snapshot().len(), 2);
    }

    #[test]
    fn unsampled_spans_are_recorded_only_on_error() {
        let collector = SpanCollector::new(64);
        let unsampled = TraceContext::root(false);
        {
            let _scope = ScopedTrace::activate(unsampled);
            {
                let _quiet = TracedSpan::enter(&collector, "quiet");
            }
            {
                let mut noisy = TracedSpan::enter(&collector, "noisy");
                noisy.set_error(true);
            }
        }
        let kept = collector.snapshot();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].name, "noisy");
        assert!(kept[0].error);
    }
}
