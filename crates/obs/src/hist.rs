//! Fixed-bucket log-scale latency histograms with a lock-free record path.
//!
//! The record path is one relaxed atomic increment plus two relaxed
//! atomic read-modify-writes (sum and max) on a **per-worker shard** —
//! no locks, no allocation, no cross-worker cache-line traffic when each
//! worker records through its own [`HistogramRecorder`]. Shards are
//! folded only when a summary is taken, the same shard-and-fold pattern
//! the proxy already uses for its hit ledgers.
//!
//! Bucket layout: values `0..=15` map to exact buckets; above that each
//! power-of-two octave is split into four linear sub-buckets, giving a
//! worst-case relative quantile error of about 12.5% across the full
//! `u64` range with a fixed 256-slot table. Nanosecond latencies from
//! 16 ns to minutes therefore land in well-resolved buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets in every histogram.
pub const BUCKETS: usize = 256;

/// Values `0..=LINEAR_MAX` get an exact bucket each.
const LINEAR_MAX: u64 = 15;

/// Sub-bucket resolution: each octave above `LINEAR_MAX` is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 2;

/// The bucket a value lands in.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value <= LINEAR_MAX {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = ((value >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    let octave_base = 16 + (((msb - 4) as usize) << SUB_BITS);
    (octave_base + sub).min(BUCKETS - 1)
}

/// The smallest value that lands in `index` (inverse of [`bucket_index`]).
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index <= LINEAR_MAX as usize {
        return index as u64;
    }
    let msb = ((index - 16) >> SUB_BITS) as u32 + 4;
    let sub = ((index - 16) & ((1 << SUB_BITS) - 1)) as u64;
    (1u64 << msb) + sub * (1u64 << (msb - SUB_BITS))
}

/// The largest value that lands in `index`.
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// One worker's private bucket array. Written with relaxed atomics so a
/// fold can run concurrently with recording without a lock.
#[derive(Debug)]
struct Shard {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// A sharded log-scale histogram. Create one per metric with as many
/// shards as concurrent recorders, hand each worker a
/// [`HistogramRecorder`] for its own shard, and fold on demand with
/// [`Histogram::summary`].
#[derive(Debug)]
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Histogram {
    /// A histogram with `shards` independent recording shards (≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Histogram {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records `value` into shard `shard % shard_count` — lock-free.
    /// Prefer a per-worker [`HistogramRecorder`] on hot paths.
    pub fn record(&self, shard: usize, value: u64) {
        self.shards[shard % self.shards.len()].record(value);
    }

    /// A recorder bound to one shard (per-worker handle).
    #[must_use]
    pub fn recorder(self: &Arc<Self>, shard: usize) -> HistogramRecorder {
        HistogramRecorder {
            shard: shard % self.shards.len(),
            hist: Arc::clone(self),
        }
    }

    /// Folds every shard into one bucket-count array.
    #[must_use]
    pub fn fold_counts(&self) -> [u64; BUCKETS] {
        let mut folded = [0u64; BUCKETS];
        for shard in self.shards.iter() {
            for (slot, count) in folded.iter_mut().zip(shard.counts.iter()) {
                *slot += count.load(Ordering::Relaxed);
            }
        }
        folded
    }

    /// Folds the shards and computes count/sum/max plus p50/p90/p99.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let folded = self.fold_counts();
        let count: u64 = folded.iter().sum();
        let sum: u64 = self
            .shards
            .iter()
            .map(|s| s.sum.load(Ordering::Relaxed))
            .sum();
        let max = self
            .shards
            .iter()
            .map(|s| s.max.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        HistogramSummary {
            count,
            sum,
            max,
            p50: quantile(&folded, count, max, 0.50),
            p90: quantile(&folded, count, max, 0.90),
            p99: quantile(&folded, count, max, 0.99),
        }
    }
}

/// Estimates the `q`-quantile from folded bucket counts. Within a bucket
/// the estimate is the bucket midpoint (exact for the linear buckets),
/// clamped to the observed maximum so a sparse top bucket cannot report
/// a value larger than anything recorded.
fn quantile(folded: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (index, &bucket_count) in folded.iter().enumerate() {
        seen += bucket_count;
        if seen >= rank {
            let lower = bucket_lower_bound(index);
            let upper = bucket_upper_bound(index).min(max);
            return lower.midpoint(upper);
        }
    }
    max
}

/// A per-worker handle recording into one shard of a shared histogram.
#[derive(Debug, Clone)]
pub struct HistogramRecorder {
    hist: Arc<Histogram>,
    shard: usize,
}

impl HistogramRecorder {
    /// Records one value — a few relaxed atomics on a private shard, no
    /// lock acquisition.
    pub fn record(&self, value: u64) {
        self.hist.shards[self.shard].record(value);
    }

    /// The underlying histogram.
    #[must_use]
    pub fn histogram(&self) -> &Arc<Histogram> {
        &self.hist
    }
}

/// Folded percentile summary of a histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        for index in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_upper_bound(index) + 1,
                bucket_lower_bound(index + 1),
                "gap between bucket {index} and {}",
                index + 1
            );
        }
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..=LINEAR_MAX {
            let index = bucket_index(v);
            assert_eq!(bucket_lower_bound(index), v);
            assert_eq!(bucket_upper_bound(index), v);
        }
    }

    #[test]
    fn values_land_within_their_bucket() {
        for v in [16, 17, 31, 32, 1000, 4096, 1 << 20, u64::MAX / 3, u64::MAX] {
            let index = bucket_index(v);
            assert!(bucket_lower_bound(index) <= v, "value {v} bucket {index}");
            assert!(v <= bucket_upper_bound(index), "value {v} bucket {index}");
        }
    }

    #[test]
    fn summary_percentiles_of_uniform_stream() {
        let h = Histogram::new(4);
        for v in 1..=10_000u64 {
            h.record(v as usize, v * 100);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 1_000_000);
        // Log-scale buckets: estimates within the bucket's ~12.5% width.
        let expect = |q: f64| q * 1_000_000.0;
        for (got, want) in [
            (s.p50, expect(0.50)),
            (s.p90, expect(0.90)),
            (s.p99, expect(0.99)),
        ] {
            let err = (got as f64 - want).abs() / want;
            assert!(err < 0.15, "estimate {got} for target {want} (err {err})");
        }
        assert!((s.mean() - 500_050.0).abs() < 35_000.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Histogram::new(1).summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn recorder_targets_its_shard() {
        let h = Arc::new(Histogram::new(2));
        let r0 = h.recorder(0);
        let r1 = h.recorder(1);
        r0.record(5);
        r1.record(7);
        assert_eq!(h.shards[0].counts[5].load(Ordering::Relaxed), 1);
        assert_eq!(h.shards[1].counts[7].load(Ordering::Relaxed), 1);
        assert_eq!(h.summary().count, 2);
    }
}
