//! Span timers and the bounded post-mortem event log.
//!
//! A [`Span`] is an RAII timer over one pipeline stage: enter it where
//! the stage starts and its elapsed nanoseconds are recorded into a
//! per-worker histogram shard when it drops (or explicitly via
//! [`Span::finish`] to also read the measurement).
//!
//! The [`EventLog`] is a fixed-capacity ring buffer of interesting
//! moments — failed or slow requests, health transitions, publication
//! anomalies — kept for post-mortem inspection through the stats
//! surface. It is deliberately off the hot path: the runtime only logs
//! events for the rare outcomes (errors, slowness, state changes), so a
//! mutex-guarded ring is fine, and the capacity bound means an error
//! storm degrades into overwritten history rather than unbounded memory.

use crate::hist::HistogramRecorder;
use crate::spans::{TraceContext, TraceId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Identifies one request as it moves through the pipeline, so the
/// events it leaves behind can be correlated. Allocated from
/// [`crate::MetricsRegistry::next_request_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One logged observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number over the log's lifetime.
    pub seq: u64,
    /// Microseconds since the log (registry) was created.
    pub at_micros: u64,
    /// The request this event belongs to, when there is one.
    pub request: Option<RequestId>,
    /// The distributed trace active when the event was recorded, so the
    /// post-mortem ring and span trees cross-reference.
    pub trace: Option<TraceId>,
    /// The pipeline stage or subsystem that emitted the event.
    pub stage: &'static str,
    /// Human-readable specifics (path, node, error, timing breakdown).
    pub detail: String,
}

/// A bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        EventLog {
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Appends an event, evicting the oldest once full. The thread's
    /// active [`TraceContext`], if any, stamps the event.
    pub fn record(&self, stage: &'static str, request: Option<RequestId>, detail: String) {
        let event = Event {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at_micros: u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            request,
            trace: TraceContext::current().map(|c| c.trace),
            stage,
            detail,
        };
        let mut ring = self.ring.lock().expect("event log lock");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The most recent `n` events, oldest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<Event> {
        let ring = self.ring.lock().expect("event log lock");
        ring.iter().rev().take(n).rev().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum events retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// An RAII timer over one pipeline stage. Records elapsed nanoseconds
/// into its histogram shard on drop.
#[derive(Debug)]
pub struct Span<'r> {
    name: &'static str,
    recorder: &'r HistogramRecorder,
    start: Instant,
    finished: bool,
}

impl<'r> Span<'r> {
    /// Starts timing `name`, to be recorded through `recorder`.
    #[must_use]
    pub fn enter(name: &'static str, recorder: &'r HistogramRecorder) -> Self {
        Span {
            name,
            recorder,
            start: Instant::now(),
            finished: false,
        }
    }

    /// The stage name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Ends the span now, recording and returning the elapsed
    /// nanoseconds (instead of waiting for drop).
    pub fn finish(mut self) -> u64 {
        let elapsed = self.elapsed_ns();
        self.recorder.record(elapsed);
        self.finished = true;
        elapsed
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.recorder.record(self.elapsed_ns());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use std::sync::Arc;

    #[test]
    fn span_records_on_drop_and_on_finish() {
        let h = Arc::new(Histogram::new(1));
        let rec = h.recorder(0);
        {
            let _span = Span::enter("lookup", &rec);
        }
        let elapsed = Span::enter("relay", &rec).finish();
        let s = h.summary();
        assert_eq!(s.count, 2, "drop and finish each record exactly once");
        assert!(s.max >= elapsed.min(s.max));
    }

    #[test]
    fn event_log_is_bounded_and_ordered() {
        let log = EventLog::new(3);
        for i in 0..5 {
            log.record("test", Some(RequestId(i)), format!("event {i}"));
        }
        let recent = log.recent(10);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].request, Some(RequestId(2)), "oldest survivor");
        assert_eq!(recent[2].request, Some(RequestId(4)), "newest last");
        assert_eq!(log.total_recorded(), 5);
        assert_eq!(log.dropped(), 2);
        assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn request_ids_render_compactly() {
        assert_eq!(RequestId(17).to_string(), "r17");
    }

    #[test]
    fn events_are_stamped_with_the_active_trace() {
        use crate::spans::ScopedTrace;
        let log = EventLog::new(4);
        log.record("plain", None, "no trace active".to_string());
        let ctx = TraceContext::root(true);
        {
            let _scope = ScopedTrace::activate(ctx);
            log.record("traced", None, "inside the scope".to_string());
        }
        let events = log.recent(4);
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(ctx.trace));
    }
}
