//! Declarative service-level objectives evaluated against the flight
//! recorder.
//!
//! A rule is one line of text — `proxy_request_ns.p99 < 5ms over 30s`,
//! `proxy_backend_errors_total rate <= 0 over 2s`, `store_audit_drift
//! == 0 over 10s` — parsed once into an [`SloRule`] and re-evaluated by
//! the sampler after every recording round. Verdicts use a burn-rate
//! notion over the rule's window: the fraction of sampled points
//! violating the objective. No violations is [`SloVerdict::Ok`], a
//! minority burning is [`SloVerdict::Warn`], a majority (or any
//! violation of a `rate` rule) is [`SloVerdict::Breach`].
//!
//! The [`SloWatchdog`] owns the rule set for one registry: it publishes
//! each rule's latest verdict as a `slo_state_<rule>` gauge (0/1/2),
//! counts transitions into breach on `slo_breach_total`, and records
//! breach/clear transitions in the registry's event ring — so scrapes,
//! the console `health` command, and `cpms-lab`'s timeline all see the
//! same verdicts without talking to each other.

use crate::registry::{Counter, Gauge, MetricsRegistry};
use crate::series::SeriesRecorder;
use std::fmt;
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// A rule's current standing against its objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloVerdict {
    /// No sampled point violates the objective (or there is no data
    /// yet — absence of evidence is not a breach).
    Ok,
    /// A minority of the window's points violate the objective.
    Warn,
    /// A majority of the window's points violate the objective, or a
    /// `rate` objective is violated at all.
    Breach,
}

impl SloVerdict {
    /// The gauge encoding: 0 ok, 1 warn, 2 breach.
    #[must_use]
    pub fn as_i64(self) -> i64 {
        match self {
            SloVerdict::Ok => 0,
            SloVerdict::Warn => 1,
            SloVerdict::Breach => 2,
        }
    }

    /// The human rendering used by `health` and events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SloVerdict::Ok => "ok",
            SloVerdict::Warn => "warn",
            SloVerdict::Breach => "BREACH",
        }
    }
}

impl fmt::Display for SloVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The comparison an objective asserts about its metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloOp {
    /// Objective holds while the value is strictly below the target.
    Lt,
    /// Objective holds while the value is at or below the target.
    Le,
    /// Objective holds while the value is strictly above the target.
    Gt,
    /// Objective holds while the value is at or above the target.
    Ge,
    /// Objective holds while the value equals the target.
    Eq,
}

impl SloOp {
    fn satisfies(self, value: f64, target: f64) -> bool {
        match self {
            SloOp::Lt => value < target,
            SloOp::Le => value <= target,
            SloOp::Gt => value > target,
            SloOp::Ge => value >= target,
            SloOp::Eq => (value - target).abs() < 1e-9,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
            SloOp::Eq => "==",
        }
    }
}

/// One parsed objective (see [`SloRule::parse`] for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The recorder series the objective reads (e.g.
    /// `proxy_request_ns.p99` or a counter name for `rate` rules).
    pub series: String,
    /// Whether the objective targets the per-second rate of change of
    /// the series rather than its sampled values.
    pub rate: bool,
    /// The comparison asserted by the objective.
    pub op: SloOp,
    /// The target value, in the series' base unit (nanoseconds for
    /// duration targets written with a unit suffix).
    pub target: f64,
    /// The trailing evaluation window.
    pub window: Duration,
}

impl fmt::Display for SloRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rate = if self.rate { " rate" } else { "" };
        write!(
            f,
            "{}{rate} {} {} over {:?}",
            self.series,
            self.op.as_str(),
            self.target,
            self.window
        )
    }
}

/// Parses a duration-suffixed target (`5ms`, `250us`, `1.5s`, `800ns`)
/// into nanoseconds, or a bare number into itself.
fn parse_target(text: &str) -> Result<f64, String> {
    let parse = |digits: &str, scale: f64| -> Result<f64, String> {
        digits
            .parse::<f64>()
            .map(|v| v * scale)
            .map_err(|_| format!("bad target value {text:?}"))
    };
    if let Some(d) = text.strip_suffix("ns") {
        parse(d, 1.0)
    } else if let Some(d) = text.strip_suffix("us") {
        parse(d, 1e3)
    } else if let Some(d) = text.strip_suffix("ms") {
        parse(d, 1e6)
    } else if let Some(d) = text.strip_suffix('s') {
        parse(d, 1e9)
    } else {
        parse(text, 1.0)
    }
}

/// Parses a window (`30s`, `500ms`, `2m`).
fn parse_window(text: &str) -> Result<Duration, String> {
    let parse = |digits: &str, unit_ms: u64| -> Result<Duration, String> {
        digits
            .parse::<f64>()
            .ok()
            .filter(|v| *v > 0.0)
            .map(|v| Duration::from_millis((v * unit_ms as f64) as u64))
            .ok_or_else(|| format!("bad window {text:?}"))
    };
    if let Some(d) = text.strip_suffix("ms") {
        parse(d, 1)
    } else if let Some(d) = text.strip_suffix('m') {
        parse(d, 60_000)
    } else if let Some(d) = text.strip_suffix('s') {
        parse(d, 1_000)
    } else {
        Err(format!("window {text:?} needs a ms/s/m unit"))
    }
}

impl SloRule {
    /// Parses the rule grammar:
    ///
    /// ```text
    /// <series> [rate] <op> <target>[ns|us|ms|s] over <window>[ms|s|m]
    /// ```
    ///
    /// where `<series>` is a recorder series name (histogram families
    /// expose `<name>.count`, `<name>.p50`, `<name>.p99`), `rate`
    /// switches the objective to the per-second rate of change, and
    /// `<op>` is one of `< <= > >= ==`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first token that fails to
    /// parse.
    pub fn parse(text: &str) -> Result<SloRule, String> {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let (series, rate, rest) = match tokens.as_slice() {
            [series, "rate", rest @ ..] => (*series, true, rest),
            [series, rest @ ..] => (*series, false, rest),
            [] => return Err("empty rule".to_string()),
        };
        let [op, target, over, window] = rest else {
            return Err(format!(
                "expected `<series> [rate] <op> <target> over <window>`, got {text:?}"
            ));
        };
        if *over != "over" {
            return Err(format!("expected `over`, got {over:?}"));
        }
        let op = match *op {
            "<" => SloOp::Lt,
            "<=" => SloOp::Le,
            ">" => SloOp::Gt,
            ">=" => SloOp::Ge,
            "==" => SloOp::Eq,
            other => return Err(format!("bad operator {other:?}")),
        };
        Ok(SloRule {
            series: series.to_string(),
            rate,
            op,
            target: parse_target(target)?,
            window: parse_window(window)?,
        })
    }

    /// A metric-name-safe key for this rule (`slo_state_<key>` gauge).
    #[must_use]
    pub fn key(&self) -> String {
        let mut key: String = self
            .series
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if self.rate {
            key.push_str("_rate");
        }
        key
    }

    /// Evaluates the rule against `recorder` (see module docs for the
    /// verdict semantics).
    #[must_use]
    pub fn evaluate(&self, recorder: &SeriesRecorder) -> SloVerdict {
        if self.rate {
            return match recorder.rate_per_sec(&self.series, self.window) {
                Some(rate) if !self.op.satisfies(rate, self.target) => SloVerdict::Breach,
                _ => SloVerdict::Ok,
            };
        }
        let points = recorder.query(&self.series, self.window);
        if points.is_empty() {
            return SloVerdict::Ok;
        }
        let violations = points
            .iter()
            .filter(|p| !self.op.satisfies(p.value, self.target))
            .count();
        if violations == 0 {
            SloVerdict::Ok
        } else if violations * 2 < points.len() {
            SloVerdict::Warn
        } else {
            SloVerdict::Breach
        }
    }
}

/// The per-registry rule evaluator (see module docs).
#[derive(Debug)]
pub struct SloWatchdog {
    rules: Vec<SloRule>,
    registry: Weak<MetricsRegistry>,
    breach_total: Arc<Counter>,
    gauges: Vec<Arc<Gauge>>,
    states: Mutex<Vec<SloVerdict>>,
}

impl SloWatchdog {
    /// Builds a watchdog over `rules`, registers its `slo_breach_total`
    /// counter and one `slo_state_<rule>` gauge per rule on `registry`,
    /// and installs it as the registry's watchdog (so the [`Sampler`]
    /// evaluates it after every round).
    ///
    /// [`Sampler`]: crate::series::Sampler
    pub fn install(registry: &Arc<MetricsRegistry>, rules: Vec<SloRule>) -> Arc<SloWatchdog> {
        let breach_total = registry.counter("slo_breach_total");
        let gauges = rules
            .iter()
            .map(|r| registry.gauge(&format!("slo_state_{}", r.key())))
            .collect();
        let states = Mutex::new(vec![SloVerdict::Ok; rules.len()]);
        let watchdog = Arc::new(SloWatchdog {
            rules,
            registry: Arc::downgrade(registry),
            breach_total,
            gauges,
            states,
        });
        registry.set_watchdog(Arc::clone(&watchdog));
        watchdog
    }

    /// The installed rules, in evaluation order.
    #[must_use]
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// Evaluates every rule against `recorder`, updating state gauges,
    /// the breach counter, and the event ring on transitions. Returns
    /// the fresh verdicts in rule order.
    pub fn evaluate(&self, recorder: &SeriesRecorder) -> Vec<SloVerdict> {
        let mut states = self.states.lock().expect("slo state lock");
        for (i, rule) in self.rules.iter().enumerate() {
            let verdict = rule.evaluate(recorder);
            self.gauges[i].set(verdict.as_i64());
            let was = states[i];
            if verdict == SloVerdict::Breach && was != SloVerdict::Breach {
                self.breach_total.inc();
                if let Some(registry) = self.registry.upgrade() {
                    registry
                        .events()
                        .record("slo", None, format!("breach: {rule}"));
                }
            } else if verdict != SloVerdict::Breach && was == SloVerdict::Breach {
                if let Some(registry) = self.registry.upgrade() {
                    registry
                        .events()
                        .record("slo", None, format!("clear: {rule} → {verdict}"));
                }
            }
            states[i] = verdict;
        }
        states.clone()
    }

    /// The latest verdict per rule, without re-evaluating.
    #[must_use]
    pub fn report(&self) -> Vec<(SloRule, SloVerdict)> {
        let states = self.states.lock().expect("slo state lock");
        self.rules
            .iter()
            .cloned()
            .zip(states.iter().copied())
            .collect()
    }

    /// The worst current verdict across all rules (`Ok` with no rules).
    #[must_use]
    pub fn worst(&self) -> SloVerdict {
        self.states
            .lock()
            .expect("slo state lock")
            .iter()
            .copied()
            .max()
            .unwrap_or(SloVerdict::Ok)
    }

    /// Lifetime transitions into breach.
    #[must_use]
    pub fn breaches_total(&self) -> u64 {
        self.breach_total.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn rule_grammar_round_trips() {
        let rule = SloRule::parse("proxy_request_ns.p99 < 5ms over 30s").unwrap();
        assert_eq!(rule.series, "proxy_request_ns.p99");
        assert!(!rule.rate);
        assert_eq!(rule.op, SloOp::Lt);
        assert_eq!(rule.target, 5e6);
        assert_eq!(rule.window, Duration::from_secs(30));

        let rate = SloRule::parse("proxy_backend_errors_total rate <= 0 over 2s").unwrap();
        assert!(rate.rate);
        assert_eq!(rate.op, SloOp::Le);
        assert_eq!(rate.target, 0.0);
        assert_eq!(rate.key(), "proxy_backend_errors_total_rate");

        let eq = SloRule::parse("store_audit_drift == 0 over 10s").unwrap();
        assert_eq!(eq.op, SloOp::Eq);
        let us = SloRule::parse("lat.p50 <= 250us over 500ms").unwrap();
        assert_eq!(us.target, 250e3);
        assert_eq!(us.window, Duration::from_millis(500));
        let m = SloRule::parse("g > 1 over 2m").unwrap();
        assert_eq!(m.window, Duration::from_secs(120));

        for bad in [
            "",
            "just_a_name",
            "m ~ 5 over 30s",
            "m < banana over 30s",
            "m < 5 above 30s",
            "m < 5 over eventually",
            "m < 5 over 30",
        ] {
            assert!(SloRule::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    fn recorder_with_gauge(values: &[i64]) -> (SeriesRecorder, MetricsRegistry) {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        let rec = SeriesRecorder::new(64);
        for &v in values {
            g.set(v);
            rec.sample(&reg.snapshot());
        }
        (rec, reg)
    }

    #[test]
    fn burn_rate_splits_ok_warn_breach() {
        let rule = SloRule::parse("depth <= 10 over 1m").unwrap();
        let (clean, _r) = recorder_with_gauge(&[1, 2, 3, 4]);
        assert_eq!(rule.evaluate(&clean), SloVerdict::Ok);
        let (minority, _r) = recorder_with_gauge(&[1, 2, 3, 99]);
        assert_eq!(rule.evaluate(&minority), SloVerdict::Warn);
        let (majority, _r) = recorder_with_gauge(&[99, 98, 97, 1]);
        assert_eq!(rule.evaluate(&majority), SloVerdict::Breach);
        let empty = SeriesRecorder::new(8);
        assert_eq!(
            rule.evaluate(&empty),
            SloVerdict::Ok,
            "no data is not a breach"
        );
    }

    #[test]
    fn rate_rules_are_binary() {
        let reg = MetricsRegistry::new();
        let errors = reg.counter("err_total");
        let rec = SeriesRecorder::new(64);
        let rule = SloRule::parse("err_total rate <= 0 over 1m").unwrap();
        rec.sample(&reg.snapshot());
        assert_eq!(
            rule.evaluate(&rec),
            SloVerdict::Ok,
            "one point: no rate yet"
        );
        std::thread::sleep(Duration::from_millis(5));
        rec.sample(&reg.snapshot());
        assert_eq!(rule.evaluate(&rec), SloVerdict::Ok, "flat counter");
        errors.add(4);
        std::thread::sleep(Duration::from_millis(5));
        rec.sample(&reg.snapshot());
        assert_eq!(rule.evaluate(&rec), SloVerdict::Breach, "errors moved");
    }

    #[test]
    fn watchdog_counts_breach_transitions_and_clears() {
        let registry = Arc::new(MetricsRegistry::new());
        let depth = registry.gauge("depth");
        let recorder = SeriesRecorder::new(64);
        let rule = SloRule::parse("depth <= 10 over 50ms").unwrap();
        let watchdog = SloWatchdog::install(&registry, vec![rule]);
        assert!(Arc::ptr_eq(
            &watchdog,
            &registry.watchdog().expect("installed")
        ));

        depth.set(5);
        recorder.sample(&registry.snapshot());
        assert_eq!(watchdog.evaluate(&recorder), vec![SloVerdict::Ok]);
        assert_eq!(watchdog.breaches_total(), 0);

        depth.set(50);
        recorder.sample(&registry.snapshot());
        recorder.sample(&registry.snapshot());
        assert_eq!(watchdog.evaluate(&recorder), vec![SloVerdict::Breach]);
        assert_eq!(watchdog.worst(), SloVerdict::Breach);
        // Re-evaluating an ongoing breach is not a new transition.
        watchdog.evaluate(&recorder);
        assert_eq!(watchdog.breaches_total(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("slo_breach_total"), Some(1));
        assert_eq!(snap.gauge("slo_state_depth"), Some(2));
        assert!(
            snap.events.iter().any(|e| e.detail.starts_with("breach:")),
            "breach event recorded"
        );

        // The window drains: verdict clears, gauge drops, event lands.
        std::thread::sleep(Duration::from_millis(70));
        depth.set(5);
        recorder.sample(&registry.snapshot());
        assert_eq!(watchdog.evaluate(&recorder), vec![SloVerdict::Ok]);
        assert_eq!(watchdog.breaches_total(), 1, "clears are not breaches");
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("slo_state_depth"), Some(0));
        assert!(snap.events.iter().any(|e| e.detail.starts_with("clear:")));
        assert_eq!(watchdog.report().len(), 1);
        assert_eq!(watchdog.report()[0].1, SloVerdict::Ok);
    }
}
