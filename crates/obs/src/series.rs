//! The flight recorder: a bounded in-process time-series store fed by a
//! background sampler.
//!
//! Point-in-time snapshots answer "what is the p99 *now*"; they cannot
//! answer "did the p99 spike during the fault window" or "what is the
//! error *rate*". The [`SeriesRecorder`] closes that gap without any
//! external database: a [`Sampler`] thread snapshots the registry at a
//! fixed interval and appends one [`SeriesPoint`] per metric to a
//! fixed-size ring, so every process carries its own recent history —
//! queryable as `(metric, window) → points`, rendered at the
//! `/_cpms/series.json` admin surface, and consumed in-process by the
//! SLO watchdog ([`crate::slo`]).
//!
//! Memory is bounded twice over: at most [`SeriesRecorder::max_series`]
//! named series (extras are counted, not stored) and at most
//! `capacity` points per series (the ring discards the oldest). With
//! the defaults that is 512 series × 240 points × 24 bytes ≈ 3 MB
//! worst case; a real process registers a few dozen series.
//!
//! Counters are stored **cumulatively**; [`SeriesRecorder::rate_per_sec`]
//! differences adjacent points and treats a decrease as a counter reset
//! (the process restarted, or a fresh registry was swapped in), counting
//! the post-reset value as the delta rather than a huge negative swing.
//! Histograms fan out into three derived series per family:
//! `<name>.count`, `<name>.p50`, and `<name>.p99`.

use crate::registry::{MetricsRegistry, RegistrySnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Points retained per series when none is configured — at the default
/// sampler interval this is a minute of history.
pub const DEFAULT_SERIES_CAPACITY: usize = 240;

/// Distinct series a recorder will track before dropping newcomers.
pub const DEFAULT_MAX_SERIES: usize = 512;

/// Sampler interval when none is configured.
pub const DEFAULT_RECORD_INTERVAL: Duration = Duration::from_millis(250);

/// One sampled value of one series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// The sampling round that produced this point (monotonic per
    /// recorder; every series sampled in one round shares it).
    pub seq: u64,
    /// Process-relative timestamp: microseconds since the recorder was
    /// created. Monotonic, immune to wall-clock steps.
    pub uptime_micros: u64,
    /// The sampled value (counters cumulative, gauges current,
    /// histogram quantiles in the histogram's unit).
    pub value: f64,
}

#[derive(Debug, Default)]
struct RecorderInner {
    series: BTreeMap<String, VecDeque<SeriesPoint>>,
}

/// The bounded time-series store (see module docs).
#[derive(Debug)]
pub struct SeriesRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
    max_series: usize,
    started: Instant,
    samples: AtomicU64,
    render_seq: AtomicU64,
    dropped_series: AtomicU64,
}

impl Default for SeriesRecorder {
    fn default() -> Self {
        SeriesRecorder::new(DEFAULT_SERIES_CAPACITY)
    }
}

impl SeriesRecorder {
    /// A recorder retaining at most `capacity` points per series and
    /// [`DEFAULT_MAX_SERIES`] series.
    #[must_use]
    pub fn new(capacity: usize) -> SeriesRecorder {
        SeriesRecorder::with_max_series(capacity, DEFAULT_MAX_SERIES)
    }

    /// A recorder with explicit bounds on both axes.
    #[must_use]
    pub fn with_max_series(capacity: usize, max_series: usize) -> SeriesRecorder {
        SeriesRecorder {
            inner: Mutex::new(RecorderInner::default()),
            capacity: capacity.max(2),
            max_series: max_series.max(1),
            started: Instant::now(),
            samples: AtomicU64::new(0),
            render_seq: AtomicU64::new(0),
            dropped_series: AtomicU64::new(0),
        }
    }

    /// Points retained per series.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Distinct series this recorder will track.
    #[must_use]
    pub fn max_series(&self) -> usize {
        self.max_series
    }

    /// Sampling rounds taken so far.
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Series rejected because the [`max_series`](Self::max_series)
    /// bound was hit.
    #[must_use]
    pub fn dropped_series_total(&self) -> u64 {
        self.dropped_series.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder was created — the time base of
    /// every [`SeriesPoint::uptime_micros`].
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Takes one sampling round over `snap`: every counter and gauge
    /// appends one point; every histogram appends `.count`, `.p50`, and
    /// `.p99` points.
    pub fn sample(&self, snap: &RegistrySnapshot) {
        let seq = self.samples.fetch_add(1, Ordering::Relaxed);
        let uptime_micros = self.uptime_micros();
        let mut inner = self.inner.lock().expect("series lock");
        let push = |inner: &mut RecorderInner, name: &str, value: f64| {
            let ring = match inner.series.get_mut(name) {
                Some(ring) => ring,
                None => {
                    if inner.series.len() >= self.max_series {
                        self.dropped_series.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    inner
                        .series
                        .entry(name.to_string())
                        .or_insert_with(|| VecDeque::with_capacity(8))
                }
            };
            if ring.len() >= self.capacity {
                ring.pop_front();
            }
            ring.push_back(SeriesPoint {
                seq,
                uptime_micros,
                value,
            });
        };
        for (name, value) in &snap.counters {
            #[allow(clippy::cast_precision_loss)]
            push(&mut inner, name, *value as f64);
        }
        for (name, value) in &snap.gauges {
            #[allow(clippy::cast_precision_loss)]
            push(&mut inner, name, *value as f64);
        }
        for (name, summary) in &snap.histograms {
            #[allow(clippy::cast_precision_loss)]
            {
                push(&mut inner, &format!("{name}.count"), summary.count as f64);
                push(&mut inner, &format!("{name}.p50"), summary.p50 as f64);
                push(&mut inner, &format!("{name}.p99"), summary.p99 as f64);
            }
        }
    }

    /// Every series name currently tracked, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.inner
            .lock()
            .expect("series lock")
            .series
            .keys()
            .cloned()
            .collect()
    }

    /// The most recent point of `metric`, if any.
    #[must_use]
    pub fn latest(&self, metric: &str) -> Option<SeriesPoint> {
        self.inner
            .lock()
            .expect("series lock")
            .series
            .get(metric)
            .and_then(|ring| ring.back().copied())
    }

    /// The retained points of `metric` within the trailing `window`
    /// (inclusive at the window's left edge), oldest first.
    #[must_use]
    pub fn query(&self, metric: &str, window: Duration) -> Vec<SeriesPoint> {
        let now = self.uptime_micros();
        let window_micros = u64::try_from(window.as_micros()).unwrap_or(u64::MAX);
        let cutoff = now.saturating_sub(window_micros);
        self.inner
            .lock()
            .expect("series lock")
            .series
            .get(metric)
            .map(|ring| {
                ring.iter()
                    .filter(|p| p.uptime_micros >= cutoff)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The per-second rate of change of `metric` over the trailing
    /// `window`, treating any decrease between adjacent points as a
    /// counter reset (the delta restarts from the new value). `None`
    /// until the window holds at least two points.
    #[must_use]
    pub fn rate_per_sec(&self, metric: &str, window: Duration) -> Option<f64> {
        let points = self.query(metric, window);
        let (first, last) = (points.first()?, points.last()?);
        if last.uptime_micros <= first.uptime_micros {
            return None;
        }
        let mut total = 0.0f64;
        for pair in points.windows(2) {
            let (prev, cur) = (pair[0].value, pair[1].value);
            total += if cur >= prev {
                cur - prev
            } else {
                cur.max(0.0)
            };
        }
        #[allow(clippy::cast_precision_loss)]
        let elapsed_secs = (last.uptime_micros - first.uptime_micros) as f64 / 1_000_000.0;
        Some(total / elapsed_secs)
    }

    /// Renders the `/_cpms/series.json` document: a monotonic
    /// `scrape_seq` (bumped per render, so a scraper can order payloads
    /// without trusting its own clock), the recorder uptime, bound and
    /// drop accounting, and every series as `[seq, uptime_micros,
    /// value]` triples, oldest first.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let scrape_seq = self.render_seq.fetch_add(1, Ordering::Relaxed);
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"scrape_seq\":{scrape_seq},\"uptime_micros\":{},\"samples\":{},\
             \"capacity\":{},\"dropped_series\":{},\"series\":{{",
            self.uptime_micros(),
            self.samples_taken(),
            self.capacity,
            self.dropped_series_total(),
        );
        let inner = self.inner.lock().expect("series lock");
        for (i, (name, ring)) in inner.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":[", crate::export::json_escape(name));
            for (j, p) in ring.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                // f64 renders JSON-safely here: every sampled value is
                // finite (converted from u64/i64 metric cells).
                let _ = write!(out, "[{},{},{}]", p.seq, p.uptime_micros, p.value);
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

/// How often the sampler thread re-checks its stop flag while sleeping
/// out a long interval, so shutdown never waits a full interval.
const STOP_CHECK: Duration = Duration::from_millis(50);

/// The background sampling thread driving a registry's
/// [`SeriesRecorder`] and (when installed) its SLO watchdog.
///
/// Holds only a [`Weak`] registry reference: if every other owner drops
/// the registry the thread exits on its own, so a forgotten sampler
/// cannot keep a dead process's metrics alive.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` every `interval`. Installs a default
    /// [`SeriesRecorder`] on the registry if none is present, takes one
    /// round immediately (so short-lived processes still record), and
    /// evaluates the registry's SLO watchdog after every round.
    #[must_use]
    pub fn start(registry: &Arc<MetricsRegistry>, interval: Duration) -> Sampler {
        if registry.series().is_none() {
            registry.set_series(Arc::new(SeriesRecorder::default()));
        }
        let weak: Weak<MetricsRegistry> = Arc::downgrade(registry);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::Builder::new()
            .name("cpms-obs-sampler".to_string())
            .spawn(move || loop {
                if stop_flag.load(Ordering::Acquire) {
                    return;
                }
                let Some(registry) = weak.upgrade() else {
                    return;
                };
                let snap = registry.snapshot();
                if let Some(recorder) = registry.series() {
                    recorder.sample(&snap);
                    if let Some(watchdog) = registry.watchdog() {
                        watchdog.evaluate(&recorder);
                    }
                }
                drop(registry);
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop_flag.load(Ordering::Acquire) {
                        return;
                    }
                    let nap = STOP_CHECK.min(interval - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                }
            })
            .expect("spawn sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the thread and joins it (idempotent; also runs on drop).
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest() {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("c_total");
        let rec = SeriesRecorder::new(4);
        for _ in 0..10 {
            counter.inc();
            rec.sample(&reg.snapshot());
        }
        let points = rec.query("c_total", Duration::from_secs(3600));
        assert_eq!(points.len(), 4, "ring bounded at capacity");
        let values: Vec<u64> = points.iter().map(|p| p.value as u64).collect();
        assert_eq!(values, vec![7, 8, 9, 10], "oldest points discarded");
        let seqs: Vec<u64> = points.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "rounds stay ordered");
        assert_eq!(rec.samples_taken(), 10);
    }

    #[test]
    fn counter_reset_counts_from_the_new_value() {
        // Two registries stand in for a process restart: the counter
        // climbs to 100, "restarts", and climbs to 3. The rate must see
        // 100→0→3 as +3, not -97.
        let rec = SeriesRecorder::new(16);
        let a = MetricsRegistry::new();
        a.counter("req_total").add(90);
        rec.sample(&a.snapshot());
        std::thread::sleep(Duration::from_millis(5));
        a.counter("req_total").add(10);
        rec.sample(&a.snapshot());
        std::thread::sleep(Duration::from_millis(5));
        let b = MetricsRegistry::new();
        b.counter("req_total").add(3);
        rec.sample(&b.snapshot());
        let rate = rec
            .rate_per_sec("req_total", Duration::from_secs(3600))
            .expect("three points");
        // Deltas: +10 (90→100) and +3 (reset to 3) over the elapsed span.
        assert!(rate > 0.0, "reset must not yield a negative rate: {rate}");
        let points = rec.query("req_total", Duration::from_secs(3600));
        let total: f64 = points
            .windows(2)
            .map(|w| {
                let (p, c) = (w[0].value, w[1].value);
                if c >= p {
                    c - p
                } else {
                    c
                }
            })
            .sum();
        assert_eq!(total as u64, 13);
    }

    #[test]
    fn window_queries_clip_at_the_boundary() {
        let reg = MetricsRegistry::new();
        reg.gauge("g").set(1);
        let rec = SeriesRecorder::new(64);
        rec.sample(&reg.snapshot());
        std::thread::sleep(Duration::from_millis(60));
        rec.sample(&reg.snapshot());
        // A wide window sees both points; a narrow one only the newest.
        assert_eq!(rec.query("g", Duration::from_secs(3600)).len(), 2);
        let narrow = rec.query("g", Duration::from_millis(20));
        assert_eq!(narrow.len(), 1, "old point outside the window");
        assert_eq!(rec.query("g", Duration::ZERO).len(), 0);
        assert!(rec.query("absent", Duration::from_secs(1)).is_empty());
        // Rate needs two points inside the window.
        assert!(rec.rate_per_sec("g", Duration::from_millis(20)).is_none());
    }

    #[test]
    fn series_count_is_bounded_and_drops_are_counted() {
        let reg = MetricsRegistry::new();
        for i in 0..8 {
            reg.counter(&format!("c{i}_total"));
        }
        let rec = SeriesRecorder::with_max_series(8, 4);
        rec.sample(&reg.snapshot());
        assert_eq!(rec.names().len(), 4, "series bound enforced");
        assert_eq!(rec.dropped_series_total(), 4);
        // Established series keep recording while newcomers stay barred.
        rec.sample(&reg.snapshot());
        assert_eq!(rec.names().len(), 4);
        assert_eq!(rec.query("c0_total", Duration::from_secs(1)).len(), 2);
    }

    #[test]
    fn histograms_fan_out_into_derived_series() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ns");
        for v in [100, 200, 10_000] {
            h.record(0, v);
        }
        let rec = SeriesRecorder::new(8);
        rec.sample(&reg.snapshot());
        assert_eq!(
            rec.names(),
            vec!["lat_ns.count", "lat_ns.p50", "lat_ns.p99"]
        );
        assert_eq!(rec.latest("lat_ns.count").unwrap().value as u64, 3);
        assert!(rec.latest("lat_ns.p99").unwrap().value >= 200.0);
    }

    #[test]
    fn concurrent_sampling_and_rendering_stay_coherent() {
        let reg = Arc::new(MetricsRegistry::new());
        let counter = reg.counter("spin_total");
        let rec = Arc::new(SeriesRecorder::new(32));
        std::thread::scope(|scope| {
            let sampler_rec = Arc::clone(&rec);
            let sampler_reg = Arc::clone(&reg);
            scope.spawn(move || {
                for _ in 0..500 {
                    counter.inc();
                    sampler_rec.sample(&sampler_reg.snapshot());
                }
            });
            for _ in 0..200 {
                let json = rec.to_json();
                assert!(json.starts_with("{\"scrape_seq\":"), "{json}");
                assert!(json.ends_with("}}"), "{json}");
                let _ = rec.query("spin_total", Duration::from_secs(1));
                let _ = rec.rate_per_sec("spin_total", Duration::from_secs(1));
            }
        });
        assert_eq!(rec.samples_taken(), 500);
        let points = rec.query("spin_total", Duration::from_secs(3600));
        assert!(points.len() <= 32);
        assert!(
            points.windows(2).all(|w| w[0].seq < w[1].seq),
            "points stay in sampling order under concurrency"
        );
    }

    #[test]
    fn render_seq_is_monotonic_per_render() {
        let rec = SeriesRecorder::new(8);
        let first = rec.to_json();
        let second = rec.to_json();
        assert!(first.contains("\"scrape_seq\":0"), "{first}");
        assert!(second.contains("\"scrape_seq\":1"), "{second}");
    }

    #[test]
    fn sampler_thread_records_and_stops_cleanly() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.counter("bg_total").add(5);
        let mut sampler = Sampler::start(&reg, Duration::from_millis(5));
        let recorder = reg.series().expect("sampler installs a recorder");
        let deadline = Instant::now() + Duration::from_secs(5);
        while recorder.samples_taken() < 3 {
            assert!(Instant::now() < deadline, "sampler never sampled");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
        let after = recorder.samples_taken();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(recorder.samples_taken(), after, "stopped means stopped");
        assert!(recorder.latest("bg_total").unwrap().value >= 5.0);
    }
}
