//! The metrics registry: named counters, gauges, and histograms with a
//! coherent point-in-time snapshot.
//!
//! Handles are `Arc`s resolved once (get-or-create under a short mutex)
//! and cached by the instrumented component; after that every update is
//! plain atomics. The registry mutex is therefore never on a request
//! path — it guards only name resolution and snapshotting.

use crate::hist::{Histogram, HistogramSummary};
use crate::series::SeriesRecorder;
use crate::slo::SloWatchdog;
use crate::spans::SpanCollector;
use crate::trace::{Event, EventLog, RequestId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (resident bytes, in-flight
/// requests, current generation).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via `sub`).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default shard count for histograms created without an explicit one —
/// enough that a typical worker pool records contention-free.
pub const DEFAULT_HISTOGRAM_SHARDS: usize = 8;

/// Default bounded capacity of the registry's event log.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide (or component-wide) metrics registry.
#[derive(Debug)]
pub struct MetricsRegistry {
    families: Mutex<Families>,
    events: EventLog,
    spans: Arc<SpanCollector>,
    next_request: AtomicU64,
    series: Mutex<Option<Arc<SeriesRecorder>>>,
    watchdog: Mutex<Option<Arc<SloWatchdog>>>,
    started: Instant,
    scrape_seq: AtomicU64,
}

impl MetricsRegistry {
    /// An empty registry with the default event-log capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry retaining at most `events` post-mortem events.
    #[must_use]
    pub fn with_event_capacity(events: usize) -> Self {
        MetricsRegistry {
            families: Mutex::new(Families::default()),
            events: EventLog::new(events),
            spans: Arc::new(SpanCollector::default()),
            next_request: AtomicU64::new(0),
            series: Mutex::new(None),
            watchdog: Mutex::new(None),
            started: Instant::now(),
            scrape_seq: AtomicU64::new(0),
        }
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut fam = self.families.lock().expect("registry lock");
        Arc::clone(
            fam.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut fam = self.families.lock().expect("registry lock");
        Arc::clone(
            fam.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get-or-create the histogram `name` with the default shard count.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with_shards(name, DEFAULT_HISTOGRAM_SHARDS)
    }

    /// Get-or-create the histogram `name`; `shards` applies only on
    /// creation (an existing histogram keeps its shard count).
    pub fn histogram_with_shards(&self, name: &str, shards: usize) -> Arc<Histogram> {
        let mut fam = self.families.lock().expect("registry lock");
        Arc::clone(
            fam.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(shards))),
        )
    }

    /// The post-mortem event log.
    #[must_use]
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// The process-local distributed-span collector (the
    /// `/_cpms/trace.json` surface).
    #[must_use]
    pub fn spans(&self) -> &Arc<SpanCollector> {
        &self.spans
    }

    /// Allocates the next request id for pipeline tracing.
    #[must_use]
    pub fn next_request_id(&self) -> RequestId {
        RequestId(self.next_request.fetch_add(1, Ordering::Relaxed))
    }

    /// Installs `recorder` as this registry's flight recorder (the
    /// `/_cpms/series.json` surface; fed by [`crate::series::Sampler`]).
    pub fn set_series(&self, recorder: Arc<SeriesRecorder>) {
        *self.series.lock().expect("series slot lock") = Some(recorder);
    }

    /// The installed flight recorder, if any.
    #[must_use]
    pub fn series(&self) -> Option<Arc<SeriesRecorder>> {
        self.series.lock().expect("series slot lock").clone()
    }

    /// Installs `watchdog` as this registry's SLO evaluator (normally
    /// via [`SloWatchdog::install`], which also registers its metrics).
    pub fn set_watchdog(&self, watchdog: Arc<SloWatchdog>) {
        *self.watchdog.lock().expect("watchdog slot lock") = Some(watchdog);
    }

    /// The installed SLO watchdog, if any.
    #[must_use]
    pub fn watchdog(&self) -> Option<Arc<SloWatchdog>> {
        self.watchdog.lock().expect("watchdog slot lock").clone()
    }

    /// Microseconds since this registry was created — the process
    /// uptime stamped onto every snapshot.
    #[must_use]
    pub fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// A coherent point-in-time snapshot of every registered metric plus
    /// the most recent events. Each snapshot draws a fresh monotonic
    /// `scrape_seq`, so consumers (the lab's merged timeline) can order
    /// payloads from one process without trusting their own clocks.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let fam = self.families.lock().expect("registry lock");
        RegistrySnapshot {
            scrape_seq: self.scrape_seq.fetch_add(1, Ordering::Relaxed),
            uptime_micros: self.uptime_micros(),
            counters: fam
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: fam
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: fam
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.summary()))
                .collect(),
            events: self.events.recent(64),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// A point-in-time view of the registry, ready for rendering (see
/// [`RegistrySnapshot::to_json`] and [`RegistrySnapshot::to_prometheus`]).
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Monotonic snapshot sequence number within this process.
    pub scrape_seq: u64,
    /// Microseconds since the registry was created.
    pub uptime_micros: u64,
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → folded summary, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Most recent post-mortem events, oldest first.
    pub events: Vec<Event>,
}

impl RegistrySnapshot {
    /// The value of counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The summary of histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("requests_total");
        let b = reg.counter("requests_total");
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.snapshot().counter("requests_total"), Some(3));
    }

    #[test]
    fn gauges_move_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("in_flight");
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(reg.snapshot().gauge("in_flight"), Some(-1));
    }

    #[test]
    fn histogram_shard_count_is_fixed_at_creation() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_shards("lat", 4);
        let again = reg.histogram_with_shards("lat", 32);
        assert!(Arc::ptr_eq(&h, &again));
        assert_eq!(again.shard_count(), 4);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total").inc();
        reg.gauge("g").set(7);
        reg.histogram("h").record(0, 42);
        reg.events().record("test", None, "hello".to_string());
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0, "a_total");
        assert_eq!(snap.counters[1].0, "b_total");
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1);
    }

    #[test]
    fn snapshots_carry_monotonic_scrape_seq_and_uptime() {
        let reg = MetricsRegistry::new();
        let first = reg.snapshot();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = reg.snapshot();
        assert_eq!(first.scrape_seq, 0);
        assert_eq!(second.scrape_seq, 1);
        assert!(second.uptime_micros > first.uptime_micros);
    }

    #[test]
    fn series_and_watchdog_slots_start_empty_and_install() {
        let reg = Arc::new(MetricsRegistry::new());
        assert!(reg.series().is_none());
        assert!(reg.watchdog().is_none());
        let recorder = Arc::new(crate::series::SeriesRecorder::default());
        reg.set_series(Arc::clone(&recorder));
        assert!(Arc::ptr_eq(&reg.series().unwrap(), &recorder));
    }

    #[test]
    fn request_ids_are_unique_and_increasing() {
        let reg = MetricsRegistry::new();
        let a = reg.next_request_id();
        let b = reg.next_request_id();
        assert!(b > a);
    }
}
