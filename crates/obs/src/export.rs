//! Renderers for a [`RegistrySnapshot`]: JSON (machine ingestion, bench
//! result files) and Prometheus text exposition (scrapeable from the
//! proxy's `/_cpms/metrics` admin endpoint).
//!
//! Hand-rolled on purpose — the crate is dependency-free and the output
//! grammar is tiny. Metric names are workspace-controlled identifiers;
//! free-form text (event details) is escaped.

use crate::hist::HistogramSummary;
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_histogram_json(out: &mut String, summary: &HistogramSummary) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        summary.count,
        summary.sum,
        summary.mean(),
        summary.p50,
        summary.p90,
        summary.p99,
        summary.max
    );
}

impl RegistrySnapshot {
    /// Renders the snapshot as a JSON object with `scrape_seq` and
    /// `uptime_micros` stamps plus `counters`, `gauges`, `histograms`,
    /// and `events` sections.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"scrape_seq\": {},\n  \"uptime_micros\": {},\n  \"counters\": {{",
            self.scrape_seq, self.uptime_micros
        );
        for (i, (name, value)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, summary)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": ", json_escape(name));
            write_histogram_json(&mut out, summary);
        }
        out.push_str("\n  },\n  \"events\": [");
        for (i, event) in self.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let request = event
                .request
                .map_or_else(|| "null".to_string(), |r| r.0.to_string());
            let trace = event
                .trace
                .map_or_else(|| "null".to_string(), |t| format!("\"{t}\""));
            let _ = write!(
                out,
                "{sep}\n    {{\"seq\":{},\"at_micros\":{},\"request\":{request},\
                 \"trace\":{trace},\"stage\":\"{}\",\"detail\":\"{}\"}}",
                event.seq,
                event.at_micros,
                json_escape(event.stage),
                json_escape(&event.detail)
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms are exported as summaries (`{quantile="…"}` series plus
    /// `_sum`, `_count`, and `_max`).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, summary) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [
                ("0.5", summary.p50),
                ("0.9", summary.p90),
                ("0.99", summary.p99),
            ] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", summary.sum);
            let _ = writeln!(out, "{name}_count {}", summary.count);
            let _ = writeln!(out, "{name}_max {}", summary.max);
        }
        out
    }

    /// Renders a compact human-readable report (the console `stats`
    /// command): counters and gauges one per line, histograms with
    /// count/mean/percentiles in microseconds.
    #[must_use]
    pub fn to_console(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:<44} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name:<44} {value}");
        }
        let us = |ns: u64| ns as f64 / 1000.0;
        for (name, s) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:<44} count={} mean={:.1}us p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
                s.count,
                s.mean() / 1000.0,
                us(s.p50),
                us(s.p90),
                us(s.p99),
                us(s.max)
            );
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "recent events:");
            for event in &self.events {
                let request = event.request.map_or_else(String::new, |r| format!(" {r}"));
                let trace = event
                    .trace
                    .map_or_else(String::new, |t| format!(" trace={t}"));
                let _ = writeln!(
                    out,
                    "  [{:>10}us]{request} {}: {}{trace}",
                    event.at_micros, event.stage, event.detail
                );
            }
        }
        out.trim_end().to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    fn populated() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("proxy_requests_total").add(12);
        reg.gauge("urltable_memory_bytes").set(260_000);
        let h = reg.histogram("proxy_request_ns");
        for v in [100, 200, 300, 5_000] {
            h.record(0, v);
        }
        reg.events().record(
            "relay",
            Some(crate::RequestId(3)),
            "502 \"bad\"".to_string(),
        );
        reg
    }

    #[test]
    fn json_contains_every_section_and_escapes() {
        let json = populated().snapshot().to_json();
        assert!(json.starts_with("{\n  \"scrape_seq\": 0,"), "{json}");
        assert!(json.contains("\"uptime_micros\": "), "{json}");
        assert!(json.contains("\"proxy_requests_total\": 12"));
        assert!(json.contains("\"urltable_memory_bytes\": 260000"));
        assert!(json.contains("\"proxy_request_ns\": {\"count\":4"));
        assert!(json.contains("502 \\\"bad\\\""), "quotes escaped: {json}");
        assert!(json.contains("\"request\":3"));
    }

    #[test]
    fn prometheus_format_has_types_and_quantiles() {
        let text = populated().snapshot().to_prometheus();
        assert!(text.contains("# TYPE proxy_requests_total counter"));
        assert!(text.contains("proxy_requests_total 12"));
        assert!(text.contains("# TYPE urltable_memory_bytes gauge"));
        assert!(text.contains("proxy_request_ns{quantile=\"0.99\"}"));
        assert!(text.contains("proxy_request_ns_count 4"));
        // every non-comment line is `name[{labels}] value`
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            assert!(parts.next().is_some(), "metric id in {line:?}");
            assert!(
                parts.next().unwrap().parse::<f64>().is_ok(),
                "numeric value in {line:?}"
            );
        }
    }

    #[test]
    fn console_report_lists_histogram_percentiles() {
        let text = populated().snapshot().to_console();
        assert!(text.contains("proxy_requests_total"));
        assert!(text.contains("p99="));
        assert!(text.contains("recent events:"));
    }
}
