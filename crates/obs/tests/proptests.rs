//! Property tests for the histogram bucket math and shard-fold identity.

use cpms_obs::hist::{bucket_index, bucket_lower_bound, bucket_upper_bound, BUCKETS};
use cpms_obs::Histogram;
use proptest::prelude::*;

proptest! {
    /// Every value lands inside the bounds of the bucket chosen for it.
    #[test]
    fn values_land_in_predicted_buckets(value in any::<u64>()) {
        let index = bucket_index(value);
        prop_assert!(index < BUCKETS);
        prop_assert!(bucket_lower_bound(index) <= value);
        prop_assert!(value <= bucket_upper_bound(index));
    }

    /// Bucket boundaries tile the u64 range with no gaps or overlaps.
    #[test]
    fn boundary_values_stay_in_their_own_bucket(index in 0usize..BUCKETS) {
        let lower = bucket_lower_bound(index);
        prop_assert_eq!(bucket_index(lower), index);
        let upper = bucket_upper_bound(index);
        prop_assert_eq!(bucket_index(upper), index);
        if index + 1 < BUCKETS {
            prop_assert_eq!(upper + 1, bucket_lower_bound(index + 1));
        }
    }

    /// Recording a stream spread across shards folds to exactly the same
    /// buckets and summary as recording it all into a single shard.
    #[test]
    fn merged_shards_equal_single_shard_recording(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
        shards in 1usize..9,
    ) {
        let sharded = Histogram::new(shards);
        let single = Histogram::new(1);
        for (i, &v) in values.iter().enumerate() {
            sharded.record(i % shards, v);
            single.record(0, v);
        }
        prop_assert_eq!(sharded.fold_counts(), single.fold_counts());
        prop_assert_eq!(sharded.summary(), single.summary());
    }

    /// Summary invariants: exact count/sum/max, ordered quantiles, and
    /// every quantile within the recorded range.
    #[test]
    fn summary_invariants(values in prop::collection::vec(any::<u32>(), 1..300)) {
        let h = Histogram::new(4);
        for (i, &v) in values.iter().enumerate() {
            h.record(i, u64::from(v));
        }
        let s = h.summary();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().map(|&v| u64::from(v)).sum::<u64>());
        let max = u64::from(*values.iter().max().unwrap());
        prop_assert_eq!(s.max, max);
        prop_assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        prop_assert!(s.p99 <= max);
        let min = u64::from(*values.iter().min().unwrap());
        // The p50 estimate is a midpoint of a log-scale bucket: it can
        // undershoot the true minimum by at most the bucket's width.
        prop_assert!(s.p50 >= bucket_lower_bound(bucket_index(min)));
    }
}
