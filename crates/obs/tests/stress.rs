//! Concurrency stress: the lock-free record path loses no samples even
//! with many recorders hammering the same histogram while a reader
//! folds mid-flight, and counters/gauges stay exact under contention.

use cpms_obs::{Histogram, MetricsRegistry};
use std::sync::Arc;

const THREADS: usize = 8;
const RECORDS_PER_THREAD: u64 = 50_000;

#[test]
fn concurrent_recording_loses_nothing() {
    let hist = Arc::new(Histogram::new(THREADS));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = hist.recorder(t);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    // Deterministic spread over many octaves.
                    recorder.record(i.wrapping_mul(2_654_435_761) % 1_000_000);
                }
            });
        }
    });
    let summary = hist.summary();
    assert_eq!(summary.count, THREADS as u64 * RECORDS_PER_THREAD);
    assert_eq!(
        hist.fold_counts().iter().sum::<u64>(),
        THREADS as u64 * RECORDS_PER_THREAD
    );
}

#[test]
fn folding_while_recording_is_safe_and_monotone() {
    let hist = Arc::new(Histogram::new(THREADS));
    let total = THREADS as u64 * RECORDS_PER_THREAD;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = hist.recorder(t);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_THREAD {
                    recorder.record(i % 4096);
                }
            });
        }
        // Fold concurrently with the recorders: the count must only ever
        // grow, and must eventually reach the exact total.
        let mut last = 0u64;
        loop {
            let now = hist.summary().count;
            assert!(now >= last, "folded count went backwards: {last} -> {now}");
            last = now;
            if now == total {
                break;
            }
            std::thread::yield_now();
        }
    });
    assert_eq!(hist.summary().count, total);
}

#[test]
fn shared_counters_and_gauges_are_exact_under_contention() {
    let reg = Arc::new(MetricsRegistry::new());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                let counter = reg.counter("stress_total");
                let gauge = reg.gauge("stress_inflight");
                for _ in 0..RECORDS_PER_THREAD {
                    counter.inc();
                    gauge.add(1);
                    gauge.sub(1);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter("stress_total"),
        Some(THREADS as u64 * RECORDS_PER_THREAD)
    );
    assert_eq!(snap.gauge("stress_inflight"), Some(0));
}

#[test]
fn event_log_stays_bounded_under_concurrent_writers() {
    let reg = Arc::new(MetricsRegistry::with_event_capacity(128));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let reg = Arc::clone(&reg);
            scope.spawn(move || {
                for i in 0..1_000u64 {
                    let rid = reg.next_request_id();
                    reg.events()
                        .record("stress", Some(rid), format!("t{t} i{i}"));
                }
            });
        }
    });
    assert_eq!(reg.events().total_recorded(), THREADS as u64 * 1_000);
    let recent = reg.events().recent(1_000);
    assert_eq!(recent.len(), 128, "ring stays at capacity");
    assert!(recent.windows(2).all(|w| w[0].seq < w[1].seq));
}
