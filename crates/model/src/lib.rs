//! # cpms-model
//!
//! Shared domain types for the CPMS (Content Placement and Management
//! System) reproduction of Yang & Luo, *"A Content Placement and Management
//! System for Distributed Web-Server Systems"* (ICDCS 2000).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! - [`UrlPath`] — normalized, segment-indexed URL paths (the key space of
//!   the paper's multi-level URL table),
//! - [`ContentItem`] / [`ContentKind`] — web objects and their types
//!   (static HTML, images, CGI, ASP, multimedia, …),
//! - [`NodeSpec`] / [`NodeId`] — heterogeneous server-node descriptions,
//!   including presets for the paper's exact 1999 testbed,
//! - [`Request`] / [`RequestClass`] — client requests as routed by the
//!   distributor,
//! - [`load`] — the paper's §3.3 load metric
//!   (`l_i = (load_CPU + load_Disk) × processing_time`).
//!
//! # Example
//!
//! ```
//! use cpms_model::{ContentItem, ContentKind, UrlPath, NodeSpec};
//!
//! let path: UrlPath = "/products/list.cgi".parse().unwrap();
//! assert_eq!(path.depth(), 2);
//!
//! let item = ContentItem::new(path, ContentKind::Cgi, 2_048);
//! assert!(item.kind().is_dynamic());
//!
//! // One of the paper's testbed machines: 350 MHz, 128 MB, SCSI disk.
//! let node = NodeSpec::testbed_350();
//! assert!(node.weight() > NodeSpec::testbed_150().weight());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod content;
pub mod error;
pub mod load;
pub mod node;
pub mod path;
pub mod request;
pub mod time;

pub use config::{ClusterConfig, PlacementKind, WorkloadKind};
pub use content::{ContentId, ContentItem, ContentKind, Priority};
pub use error::ModelError;
pub use load::{LoadSample, LoadTracker, NodeLoad};
pub use node::{DiskKind, NodeId, NodeSpec};
pub use path::UrlPath;
pub use request::{Request, RequestClass, RequestId, RequestOutcome};
pub use time::{SimDuration, SimTime};
