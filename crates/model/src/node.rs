//! Heterogeneous server-node descriptions.
//!
//! The paper's testbed (§5.1): "three 150 MHz machines with 64 MB of memory
//! and 4 GB IDE disks, two 200 MHz machines with 128 MB of memory and 4 GB
//! SCSI disks, and four 350 MHz machines with 128 MB of memory and 8 GB SCSI
//! disks", all on 100 Mbps fast-ethernet. [`NodeSpec`] encodes those
//! parameters plus derived service-rate figures used by the simulator, and
//! the static per-node `Weight` used by the §3.3 load metric.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a back-end server node within a cluster.
///
/// Dense indices (assigned 0..n by the cluster builder) so they can index
/// per-node state arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Disk technology of a node; determines sequential bandwidth and seek time
/// in the simulator's disk model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskKind {
    /// Late-90s IDE disk: slower transfers, longer seeks.
    Ide,
    /// Late-90s SCSI disk: faster transfers, shorter seeks, better queueing.
    Scsi,
}

impl DiskKind {
    /// Sustained sequential transfer bandwidth in bytes/second.
    pub const fn bandwidth_bytes_per_sec(self) -> u64 {
        match self {
            DiskKind::Ide => 6 * 1024 * 1024,   // ~6 MB/s
            DiskKind::Scsi => 15 * 1024 * 1024, // ~15 MB/s
        }
    }

    /// Average positioning (seek + rotational) latency in microseconds.
    pub const fn seek_micros(self) -> u64 {
        match self {
            DiskKind::Ide => 14_000, // ~14 ms
            DiskKind::Scsi => 9_000, // ~9 ms
        }
    }
}

impl fmt::Display for DiskKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DiskKind::Ide => "IDE",
            DiskKind::Scsi => "SCSI",
        })
    }
}

/// Operating system / server software of a node, recorded to mirror the
/// paper's mixed Windows NT + IIS / Linux + Apache testbed. ASP content can
/// only be placed on IIS nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ServerSoftware {
    /// Linux running Apache.
    #[default]
    LinuxApache,
    /// Windows NT running IIS.
    NtIis,
}

impl fmt::Display for ServerSoftware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServerSoftware::LinuxApache => "Linux/Apache",
            ServerSoftware::NtIis => "NT/IIS",
        })
    }
}

/// Hardware/software description of one back-end server.
///
/// Constructed via [`NodeSpec::builder`] or one of the `testbed_*` presets
/// mirroring the paper's machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    cpu_mhz: u32,
    mem_bytes: u64,
    disk: DiskKind,
    disk_bytes: u64,
    nic_bits_per_sec: u64,
    software: ServerSoftware,
}

/// Reference CPU speed against which dynamic-content service times are
/// scaled: the paper's fastest testbed machine (350 MHz).
pub const REFERENCE_CPU_MHZ: u32 = 350;

impl NodeSpec {
    /// Starts building a custom node specification.
    pub fn builder() -> NodeSpecBuilder {
        NodeSpecBuilder::default()
    }

    /// Paper testbed preset: 150 MHz, 64 MB RAM, 4 GB IDE disk.
    pub fn testbed_150() -> Self {
        NodeSpec {
            cpu_mhz: 150,
            mem_bytes: 64 << 20,
            disk: DiskKind::Ide,
            disk_bytes: 4 << 30,
            nic_bits_per_sec: 100_000_000,
            software: ServerSoftware::LinuxApache,
        }
    }

    /// Paper testbed preset: 200 MHz, 128 MB RAM, 4 GB SCSI disk.
    pub fn testbed_200() -> Self {
        NodeSpec {
            cpu_mhz: 200,
            mem_bytes: 128 << 20,
            disk: DiskKind::Scsi,
            disk_bytes: 4 << 30,
            nic_bits_per_sec: 100_000_000,
            software: ServerSoftware::LinuxApache,
        }
    }

    /// Paper testbed preset: 350 MHz, 128 MB RAM, 8 GB SCSI disk.
    pub fn testbed_350() -> Self {
        NodeSpec {
            cpu_mhz: 350,
            mem_bytes: 128 << 20,
            disk: DiskKind::Scsi,
            disk_bytes: 8 << 30,
            nic_bits_per_sec: 100_000_000,
            software: ServerSoftware::LinuxApache,
        }
    }

    /// The full nine-machine heterogeneous cluster from §5.1, with the
    /// NT/IIS flag set on two of the fast machines (the paper says "some of
    /// the back-end servers run Windows NT with IIS").
    pub fn paper_testbed() -> Vec<NodeSpec> {
        let mut nodes = vec![
            NodeSpec::testbed_150(),
            NodeSpec::testbed_150(),
            NodeSpec::testbed_150(),
            NodeSpec::testbed_200(),
            NodeSpec::testbed_200(),
            NodeSpec::testbed_350(),
            NodeSpec::testbed_350(),
            NodeSpec::testbed_350(),
            NodeSpec::testbed_350(),
        ];
        nodes[7].software = ServerSoftware::NtIis;
        nodes[8].software = ServerSoftware::NtIis;
        nodes
    }

    /// CPU clock speed in MHz.
    pub fn cpu_mhz(&self) -> u32 {
        self.cpu_mhz
    }

    /// Main-memory size in bytes. A fixed fraction of it acts as the file
    /// cache in the simulator.
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Disk technology.
    pub fn disk(&self) -> DiskKind {
        self.disk
    }

    /// Disk capacity in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.disk_bytes
    }

    /// Network interface speed in bits/second.
    pub fn nic_bits_per_sec(&self) -> u64 {
        self.nic_bits_per_sec
    }

    /// Installed server software.
    pub fn software(&self) -> ServerSoftware {
        self.software
    }

    /// CPU speed relative to the reference 350 MHz machine; a 175 MHz node
    /// has ratio 0.5 and takes twice as long on CPU-bound work.
    pub fn cpu_ratio(&self) -> f64 {
        self.cpu_mhz as f64 / REFERENCE_CPU_MHZ as f64
    }

    /// The static `Weight` of §3.3: "a static weighting value which is based
    /// on the capacity of each server".
    ///
    /// We combine CPU and disk capability relative to the reference machine;
    /// a `testbed_350` node has weight 1.0 by construction.
    pub fn weight(&self) -> f64 {
        let cpu = self.cpu_ratio();
        let disk = self.disk.bandwidth_bytes_per_sec() as f64
            / DiskKind::Scsi.bandwidth_bytes_per_sec() as f64;
        (cpu + disk) / 2.0
    }

    /// Whether this node can serve the given content kind (ASP requires IIS).
    pub fn can_serve_kind(&self, kind: crate::content::ContentKind) -> bool {
        match kind {
            crate::content::ContentKind::Asp => self.software == ServerSoftware::NtIis,
            _ => true,
        }
    }
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec::testbed_350()
    }
}

impl fmt::Display for NodeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MHz / {} MB / {} {} GB / {}",
            self.cpu_mhz,
            self.mem_bytes >> 20,
            self.disk,
            self.disk_bytes >> 30,
            self.software
        )
    }
}

/// Builder for [`NodeSpec`], for clusters beyond the paper presets.
#[derive(Debug, Clone)]
pub struct NodeSpecBuilder {
    cpu_mhz: u32,
    mem_bytes: u64,
    disk: DiskKind,
    disk_bytes: u64,
    nic_bits_per_sec: u64,
    software: ServerSoftware,
}

impl Default for NodeSpecBuilder {
    fn default() -> Self {
        let base = NodeSpec::testbed_350();
        NodeSpecBuilder {
            cpu_mhz: base.cpu_mhz,
            mem_bytes: base.mem_bytes,
            disk: base.disk,
            disk_bytes: base.disk_bytes,
            nic_bits_per_sec: base.nic_bits_per_sec,
            software: base.software,
        }
    }
}

impl NodeSpecBuilder {
    /// Sets the CPU clock in MHz.
    pub fn cpu_mhz(&mut self, mhz: u32) -> &mut Self {
        self.cpu_mhz = mhz;
        self
    }

    /// Sets the memory size in megabytes.
    pub fn mem_mb(&mut self, mb: u64) -> &mut Self {
        self.mem_bytes = mb << 20;
        self
    }

    /// Sets the disk kind.
    pub fn disk(&mut self, disk: DiskKind) -> &mut Self {
        self.disk = disk;
        self
    }

    /// Sets the disk capacity in gigabytes.
    pub fn disk_gb(&mut self, gb: u64) -> &mut Self {
        self.disk_bytes = gb << 30;
        self
    }

    /// Sets the NIC speed in megabits/second.
    pub fn nic_mbps(&mut self, mbps: u64) -> &mut Self {
        self.nic_bits_per_sec = mbps * 1_000_000;
        self
    }

    /// Sets the server software.
    pub fn software(&mut self, software: ServerSoftware) -> &mut Self {
        self.software = software;
        self
    }

    /// Validates and builds the spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidNodeSpec`] if any capacity is zero.
    pub fn build(&self) -> Result<NodeSpec, ModelError> {
        if self.cpu_mhz == 0 {
            return Err(ModelError::InvalidNodeSpec { field: "cpu_mhz" });
        }
        if self.mem_bytes == 0 {
            return Err(ModelError::InvalidNodeSpec { field: "mem_bytes" });
        }
        if self.disk_bytes == 0 {
            return Err(ModelError::InvalidNodeSpec {
                field: "disk_bytes",
            });
        }
        if self.nic_bits_per_sec == 0 {
            return Err(ModelError::InvalidNodeSpec {
                field: "nic_bits_per_sec",
            });
        }
        Ok(NodeSpec {
            cpu_mhz: self.cpu_mhz,
            mem_bytes: self.mem_bytes,
            disk: self.disk,
            disk_bytes: self.disk_bytes,
            nic_bits_per_sec: self.nic_bits_per_sec,
            software: self.software,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::ContentKind;

    #[test]
    fn paper_testbed_matches_section_5_1() {
        let nodes = NodeSpec::paper_testbed();
        assert_eq!(nodes.len(), 9);
        assert_eq!(nodes.iter().filter(|n| n.cpu_mhz() == 150).count(), 3);
        assert_eq!(nodes.iter().filter(|n| n.cpu_mhz() == 200).count(), 2);
        assert_eq!(nodes.iter().filter(|n| n.cpu_mhz() == 350).count(), 4);
        assert!(nodes
            .iter()
            .filter(|n| n.cpu_mhz() == 150)
            .all(|n| n.disk() == DiskKind::Ide && n.mem_bytes() == 64 << 20));
        assert!(nodes.iter().any(|n| n.software() == ServerSoftware::NtIis));
    }

    #[test]
    fn weight_orders_by_capacity() {
        let w150 = NodeSpec::testbed_150().weight();
        let w200 = NodeSpec::testbed_200().weight();
        let w350 = NodeSpec::testbed_350().weight();
        assert!(w150 < w200, "{w150} < {w200}");
        assert!(w200 < w350, "{w200} < {w350}");
        assert!((w350 - 1.0).abs() < 1e-9, "reference machine has weight 1");
    }

    #[test]
    fn cpu_ratio_reference() {
        assert!((NodeSpec::testbed_350().cpu_ratio() - 1.0).abs() < 1e-9);
        assert!((NodeSpec::testbed_150().cpu_ratio() - 150.0 / 350.0).abs() < 1e-9);
    }

    #[test]
    fn asp_requires_iis() {
        let linux = NodeSpec::testbed_350();
        let mut b = NodeSpec::builder();
        let nt = b.software(ServerSoftware::NtIis).build().unwrap();
        assert!(!linux.can_serve_kind(ContentKind::Asp));
        assert!(nt.can_serve_kind(ContentKind::Asp));
        assert!(linux.can_serve_kind(ContentKind::Cgi));
        assert!(nt.can_serve_kind(ContentKind::StaticHtml));
    }

    #[test]
    fn builder_validates() {
        assert!(NodeSpec::builder().cpu_mhz(0).build().is_err());
        assert!(NodeSpec::builder().mem_mb(0).build().is_err());
        assert!(NodeSpec::builder().disk_gb(0).build().is_err());
        assert!(NodeSpec::builder().nic_mbps(0).build().is_err());
        let spec = NodeSpec::builder()
            .cpu_mhz(500)
            .mem_mb(256)
            .disk(DiskKind::Scsi)
            .disk_gb(16)
            .nic_mbps(1000)
            .build()
            .unwrap();
        assert_eq!(spec.cpu_mhz(), 500);
        assert_eq!(spec.nic_bits_per_sec(), 1_000_000_000);
    }

    #[test]
    fn disk_kind_parameters_ordered() {
        assert!(DiskKind::Scsi.bandwidth_bytes_per_sec() > DiskKind::Ide.bandwidth_bytes_per_sec());
        assert!(DiskKind::Scsi.seek_micros() < DiskKind::Ide.seek_micros());
    }

    #[test]
    fn display_formats() {
        let s = NodeSpec::testbed_150().to_string();
        assert!(s.contains("150 MHz"));
        assert!(s.contains("IDE"));
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
