//! The paper's §3.3 load metric.
//!
//! Per request to content *i*:
//!
//! ```text
//! l_i = (load_CPU + load_Disk) × processing_time
//! ```
//!
//! with heuristic constants: static content `load_CPU = 1, load_Disk = 9`
//! ("disk activity is the dominant factor"), dynamic content
//! `load_CPU = 10, load_Disk = 5`. Per node *j*:
//!
//! ```text
//! L_j = (Σ (l_i × access_frequency)) / Weight
//! ```
//!
//! where `Weight` is the static capacity weighting of the node. The
//! distributor computes `L` periodically over an interval; a node above the
//! cluster average by a threshold is *overloaded*, below it by a threshold
//! *underutilized* — those determinations drive auto-replication.

use crate::content::{ContentId, ContentKind};
use crate::node::NodeId;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The paper's heuristic load constants for a content kind.
///
/// Returns `(load_CPU, load_Disk)`.
pub const fn load_constants(kind: ContentKind) -> (f64, f64) {
    if kind.is_dynamic() {
        (10.0, 5.0)
    } else {
        (1.0, 9.0)
    }
}

/// Computes `l_i` for one request: `(load_CPU + load_Disk) × processing_time`.
///
/// Processing time is measured in seconds, matching the distributor's
/// start-to-finish measurement in the paper.
///
/// ```
/// use cpms_model::{load::request_load, ContentKind, SimDuration};
/// let l_static = request_load(ContentKind::StaticHtml, SimDuration::from_millis(10));
/// let l_dynamic = request_load(ContentKind::Cgi, SimDuration::from_millis(10));
/// // (1+9)*0.01 = 0.1 vs (10+5)*0.01 = 0.15
/// assert!(l_dynamic > l_static);
/// ```
pub fn request_load(kind: ContentKind, processing_time: SimDuration) -> f64 {
    let (cpu, disk) = load_constants(kind);
    (cpu + disk) * processing_time.as_secs_f64()
}

/// One observed request used for interval load accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSample {
    /// Node that served the request.
    pub node: NodeId,
    /// Content served.
    pub content: ContentId,
    /// Kind of the content (fixes the load constants).
    pub kind: ContentKind,
    /// Start-to-finish processing time as measured by the distributor.
    pub processing_time: SimDuration,
}

/// Aggregated load state of one node over the current interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// `L_j` — weighted accumulated load for the interval.
    pub load: f64,
    /// Requests observed in the interval.
    pub requests: u64,
}

/// Accumulates [`LoadSample`]s over an interval and computes the paper's
/// per-node load metric, cluster average, and overload/underutilization
/// determinations.
///
/// The tracker also maintains per-`(node, content)` access frequencies: the
/// paper weights each content's load by its access frequency within the
/// interval, which is what makes *hot* content dominate `L_j`.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    weights: Vec<f64>,
    /// Per-node: content -> (kind, total processing time, hits) this interval.
    per_node: Vec<HashMap<ContentId, ContentLoadAcc>>,
}

#[derive(Debug, Clone, Copy)]
struct ContentLoadAcc {
    kind: ContentKind,
    total_time: SimDuration,
    hits: u64,
}

impl LoadTracker {
    /// Creates a tracker for nodes with the given static capacity weights
    /// (see [`crate::NodeSpec::weight`]).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is not strictly positive —
    /// a zero weight would divide by zero in `L_j`.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "LoadTracker needs at least one node");
        assert!(
            weights.iter().all(|w| *w > 0.0 && w.is_finite()),
            "node weights must be positive and finite"
        );
        let n = weights.len();
        LoadTracker {
            weights,
            per_node: vec![HashMap::new(); n],
        }
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.weights.len()
    }

    /// Records one served request.
    ///
    /// # Panics
    ///
    /// Panics if `sample.node` is out of range.
    pub fn record(&mut self, sample: LoadSample) {
        let acc = self.per_node[sample.node.index()]
            .entry(sample.content)
            .or_insert(ContentLoadAcc {
                kind: sample.kind,
                total_time: SimDuration::ZERO,
                hits: 0,
            });
        acc.total_time += sample.processing_time;
        acc.hits += 1;
    }

    /// Computes `L_j` for every node over the current interval.
    ///
    /// For each content `i` on node `j` we take the *mean* per-request load
    /// `l_i` (from the mean processing time) and weight it by the observed
    /// access frequency (hit count), per the paper's formula
    /// `L_j = Σ(l_i × frequency) / Weight`.
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.per_node
            .iter()
            .enumerate()
            .map(|(j, contents)| {
                let mut sum = 0.0;
                let mut requests = 0;
                for acc in contents.values() {
                    let mean_time =
                        SimDuration::from_micros(acc.total_time.as_micros() / acc.hits.max(1));
                    let l_i = request_load(acc.kind, mean_time);
                    sum += l_i * acc.hits as f64;
                    requests += acc.hits;
                }
                NodeLoad {
                    node: NodeId(j as u16),
                    load: sum / self.weights[j],
                    requests,
                }
            })
            .collect()
    }

    /// The cluster-average `L` over the current interval.
    pub fn average_load(&self) -> f64 {
        let loads = self.node_loads();
        loads.iter().map(|l| l.load).sum::<f64>() / loads.len() as f64
    }

    /// Nodes whose load exceeds the average by more than
    /// `threshold_fraction` (e.g. `0.25` = 25 % above average).
    pub fn overloaded(&self, threshold_fraction: f64) -> Vec<NodeId> {
        let avg = self.average_load();
        self.node_loads()
            .into_iter()
            .filter(|l| l.load > avg * (1.0 + threshold_fraction))
            .map(|l| l.node)
            .collect()
    }

    /// Nodes whose load is below the average by more than
    /// `threshold_fraction`.
    pub fn underutilized(&self, threshold_fraction: f64) -> Vec<NodeId> {
        let avg = self.average_load();
        self.node_loads()
            .into_iter()
            .filter(|l| l.load < avg * (1.0 - threshold_fraction))
            .map(|l| l.node)
            .collect()
    }

    /// The contents served by `node` this interval, hottest (by accumulated
    /// weighted load) first. Auto-replication picks replication candidates
    /// from the front and offload candidates likewise.
    pub fn hottest_content(&self, node: NodeId) -> Vec<(ContentId, f64)> {
        let mut v: Vec<(ContentId, f64)> = self.per_node[node.index()]
            .iter()
            .map(|(id, acc)| {
                let mean_time =
                    SimDuration::from_micros(acc.total_time.as_micros() / acc.hits.max(1));
                (*id, request_load(acc.kind, mean_time) * acc.hits as f64)
            })
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("load values are finite"));
        v
    }

    /// Clears all samples, starting a new measurement interval.
    pub fn reset_interval(&mut self) {
        for m in &mut self.per_node {
            m.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u16, content: u32, kind: ContentKind, ms: u64) -> LoadSample {
        LoadSample {
            node: NodeId(node),
            content: ContentId(content),
            kind,
            processing_time: SimDuration::from_millis(ms),
        }
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(load_constants(ContentKind::StaticHtml), (1.0, 9.0));
        assert_eq!(load_constants(ContentKind::Image), (1.0, 9.0));
        assert_eq!(load_constants(ContentKind::Video), (1.0, 9.0));
        assert_eq!(load_constants(ContentKind::Cgi), (10.0, 5.0));
        assert_eq!(load_constants(ContentKind::Asp), (10.0, 5.0));
    }

    #[test]
    fn request_load_formula() {
        // static 10ms: (1+9)*0.01 = 0.1
        let l = request_load(ContentKind::StaticHtml, SimDuration::from_millis(10));
        assert!((l - 0.1).abs() < 1e-12);
        // dynamic 10ms: (10+5)*0.01 = 0.15
        let l = request_load(ContentKind::Cgi, SimDuration::from_millis(10));
        assert!((l - 0.15).abs() < 1e-12);
    }

    #[test]
    fn node_load_divides_by_weight() {
        let mut t = LoadTracker::new(vec![1.0, 2.0]);
        t.record(sample(0, 1, ContentKind::StaticHtml, 10));
        t.record(sample(1, 1, ContentKind::StaticHtml, 10));
        let loads = t.node_loads();
        assert!((loads[0].load - 0.1).abs() < 1e-12);
        assert!((loads[1].load - 0.05).abs() < 1e-12);
    }

    #[test]
    fn frequency_weighting() {
        let mut t = LoadTracker::new(vec![1.0]);
        for _ in 0..5 {
            t.record(sample(0, 7, ContentKind::StaticHtml, 10));
        }
        // 5 hits of l=0.1 -> L = 0.5
        let loads = t.node_loads();
        assert!((loads[0].load - 0.5).abs() < 1e-12);
        assert_eq!(loads[0].requests, 5);
    }

    #[test]
    fn overloaded_and_underutilized() {
        let mut t = LoadTracker::new(vec![1.0, 1.0, 1.0]);
        // node 0 very hot, node 2 idle, node 1 middling
        for _ in 0..10 {
            t.record(sample(0, 1, ContentKind::Cgi, 50));
        }
        for _ in 0..3 {
            t.record(sample(1, 2, ContentKind::StaticHtml, 10));
        }
        let over = t.overloaded(0.25);
        let under = t.underutilized(0.25);
        assert_eq!(over, vec![NodeId(0)]);
        assert!(under.contains(&NodeId(2)));
        assert!(!under.contains(&NodeId(0)));
    }

    #[test]
    fn hottest_content_sorted() {
        let mut t = LoadTracker::new(vec![1.0]);
        for _ in 0..10 {
            t.record(sample(0, 1, ContentKind::StaticHtml, 10)); // 10*0.1 = 1.0
        }
        t.record(sample(0, 2, ContentKind::Cgi, 100)); // 1*1.5 = 1.5
        let hot = t.hottest_content(NodeId(0));
        assert_eq!(hot[0].0, ContentId(2));
        assert_eq!(hot[1].0, ContentId(1));
        assert!(hot[0].1 > hot[1].1);
    }

    #[test]
    fn reset_interval_clears() {
        let mut t = LoadTracker::new(vec![1.0]);
        t.record(sample(0, 1, ContentKind::StaticHtml, 10));
        t.reset_interval();
        assert_eq!(t.node_loads()[0].requests, 0);
        assert_eq!(t.node_loads()[0].load, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = LoadTracker::new(vec![0.0]);
    }

    #[test]
    fn balanced_cluster_has_no_outliers() {
        let mut t = LoadTracker::new(vec![1.0, 1.0]);
        t.record(sample(0, 1, ContentKind::StaticHtml, 10));
        t.record(sample(1, 2, ContentKind::StaticHtml, 10));
        assert!(t.overloaded(0.1).is_empty());
        assert!(t.underutilized(0.1).is_empty());
    }
}
