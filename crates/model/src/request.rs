//! Client requests as seen by the distributor and the simulator.

use crate::content::{ContentId, ContentKind};
use crate::path::UrlPath;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identity of a request within one experiment run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Coarse request classes used for per-class reporting (Figure 4 reports
/// CGI, ASP, and static separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum RequestClass {
    /// Request for any static file (HTML, image, other).
    Static,
    /// Request executing a CGI script.
    Cgi,
    /// Request executing an ASP page.
    Asp,
    /// Request for a large multimedia file.
    Video,
}

impl RequestClass {
    /// All classes, in report order.
    pub const ALL: [RequestClass; 4] = [
        RequestClass::Static,
        RequestClass::Cgi,
        RequestClass::Asp,
        RequestClass::Video,
    ];

    /// Maps a content kind to its request class.
    pub const fn from_kind(kind: ContentKind) -> RequestClass {
        match kind {
            ContentKind::Cgi => RequestClass::Cgi,
            ContentKind::Asp => RequestClass::Asp,
            ContentKind::Video => RequestClass::Video,
            ContentKind::StaticHtml | ContentKind::Image | ContentKind::OtherStatic => {
                RequestClass::Static
            }
        }
    }

    /// Short lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            RequestClass::Static => "static",
            RequestClass::Cgi => "cgi",
            RequestClass::Asp => "asp",
            RequestClass::Video => "video",
        }
    }
}

impl fmt::Display for RequestClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One HTTP request flowing through the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within the run.
    pub id: RequestId,
    /// Which client issued it (index into the closed-loop client population).
    pub client: u32,
    /// Requested object.
    pub content: ContentId,
    /// Requested path (what the distributor actually parses).
    pub path: UrlPath,
    /// Kind of the requested object.
    pub kind: ContentKind,
    /// Response size in bytes.
    pub size_bytes: u64,
    /// Time the request was issued.
    pub issued_at: SimTime,
}

impl Request {
    /// The request's reporting class.
    pub fn class(&self) -> RequestClass {
        RequestClass::from_kind(self.kind)
    }
}

/// Completion record for one request, produced by the simulator or the live
/// proxy and consumed by metrics collectors.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Which request completed.
    pub id: RequestId,
    /// The class it belonged to.
    pub class: RequestClass,
    /// The node that served it.
    pub served_by: crate::node::NodeId,
    /// When it was issued.
    pub issued_at: SimTime,
    /// When the last byte reached the client.
    pub completed_at: SimTime,
    /// Whether the file was served from the node's memory cache.
    pub cache_hit: bool,
    /// Response size in bytes.
    pub size_bytes: u64,
    /// Administrative priority of the content served (for differentiated
    /// QoS reporting, §1.2).
    pub priority: crate::content::Priority,
}

impl RequestOutcome {
    /// Client-perceived response time.
    pub fn response_time(&self) -> SimDuration {
        self.completed_at.saturating_duration_since(self.issued_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn class_mapping() {
        assert_eq!(RequestClass::from_kind(ContentKind::Cgi), RequestClass::Cgi);
        assert_eq!(RequestClass::from_kind(ContentKind::Asp), RequestClass::Asp);
        assert_eq!(
            RequestClass::from_kind(ContentKind::Video),
            RequestClass::Video
        );
        assert_eq!(
            RequestClass::from_kind(ContentKind::StaticHtml),
            RequestClass::Static
        );
        assert_eq!(
            RequestClass::from_kind(ContentKind::Image),
            RequestClass::Static
        );
        assert_eq!(
            RequestClass::from_kind(ContentKind::OtherStatic),
            RequestClass::Static
        );
    }

    #[test]
    fn response_time_is_saturating() {
        let o = RequestOutcome {
            id: RequestId(1),
            class: RequestClass::Static,
            served_by: NodeId(0),
            issued_at: SimTime::from_micros(100),
            completed_at: SimTime::from_micros(350),
            cache_hit: true,
            size_bytes: 1024,
            priority: crate::content::Priority::Normal,
        };
        assert_eq!(o.response_time(), SimDuration::from_micros(250));
    }

    #[test]
    fn request_class_accessor() {
        let r = Request {
            id: RequestId(0),
            client: 0,
            content: ContentId(0),
            path: "/a.cgi".parse().unwrap(),
            kind: ContentKind::Cgi,
            size_bytes: 100,
            issued_at: SimTime::ZERO,
        };
        assert_eq!(r.class(), RequestClass::Cgi);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<_> = RequestClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, ["static", "cgi", "asp", "video"]);
    }
}
