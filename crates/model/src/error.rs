//! Error types shared by the model crate.

use std::fmt;

/// Errors produced while constructing or validating model types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A URL path failed to parse (empty, no leading `/`, invalid bytes, …).
    InvalidPath {
        /// The offending input.
        input: String,
        /// Human-readable reason the parse failed.
        reason: &'static str,
    },
    /// A node specification had a zero or otherwise nonsensical capacity.
    InvalidNodeSpec {
        /// Which field was invalid.
        field: &'static str,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Which field was invalid.
        field: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidPath { input, reason } => {
                write!(f, "invalid URL path {input:?}: {reason}")
            }
            ModelError::InvalidNodeSpec { field } => {
                write!(
                    f,
                    "invalid node specification: field `{field}` out of range"
                )
            }
            ModelError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration: field `{field}`: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let e = ModelError::InvalidPath {
            input: "foo".into(),
            reason: "missing leading slash",
        };
        let s = e.to_string();
        assert!(s.starts_with("invalid"));
        assert!(s.contains("missing leading slash"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
