//! Simulated-time primitives.
//!
//! The discrete-event simulator (`cpms-sim`) and the load metric both need a
//! notion of time that is cheap, totally ordered, and independent of the wall
//! clock. We count **microseconds** in a `u64`, which covers ~584 000 years
//! of simulated time — comfortably more than any experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, measured in microseconds from t=0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `micros` microseconds after t=0.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after t=0.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after t=0.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since t=0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t=0 as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a bug in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::duration_since: earlier is later than self"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]: returns zero when
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiplies the span by a non-negative float, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimDuration::mul_f64: factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}µs", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(100) + SimDuration::from_micros(50);
        assert_eq!(t.as_micros(), 150);
        assert_eq!(
            t.duration_since(SimTime::from_micros(100)),
            SimDuration::from_micros(50)
        );
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_millis(1);
        assert_eq!(t2.as_micros(), 1_000);
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_backwards() {
        let _ = SimTime::from_micros(1).duration_since(SimTime::from_micros(2));
    }

    #[test]
    fn saturating_duration_since_is_zero_backwards() {
        assert_eq!(
            SimTime::from_micros(1).saturating_duration_since(SimTime::from_micros(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_micros(10).mul_f64(1.5).as_micros(), 15);
        assert_eq!(SimDuration::from_micros(3).mul_f64(0.5).as_micros(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5µs");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) > SimDuration::from_micros(999));
    }
}
