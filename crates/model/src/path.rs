//! Normalized URL paths.
//!
//! The paper's URL table is "a multi-level hash table, in which each level
//! corresponds to a level in the content tree" (§5.2). That design needs a
//! path representation with cheap access to individual segments, which is
//! what [`UrlPath`] provides.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A normalized, absolute URL path such as `/images/logo.gif`.
///
/// Invariants maintained by construction:
///
/// - always begins with `/`,
/// - no empty segments (`//` is collapsed), no `.`/`..` segments,
/// - no query string or fragment (stripped on parse),
/// - stored segment offsets allow O(1) access to each level.
///
/// # Example
///
/// ```
/// use cpms_model::UrlPath;
///
/// let p: UrlPath = "/a/b/c.html?x=1".parse().unwrap();
/// assert_eq!(p.as_str(), "/a/b/c.html");
/// assert_eq!(p.depth(), 3);
/// assert_eq!(p.segment(1), Some("b"));
/// assert_eq!(p.extension(), Some("html"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct UrlPath {
    normalized: String,
}

impl UrlPath {
    /// The root path `/`.
    pub fn root() -> Self {
        UrlPath {
            normalized: "/".to_string(),
        }
    }

    /// Parses and normalizes a path.
    ///
    /// Query strings (`?...`) and fragments (`#...`) are stripped; duplicate
    /// slashes are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPath`] if the input is empty, does not
    /// start with `/`, contains `.` or `..` segments, or contains control
    /// characters or whitespace.
    pub fn parse(input: &str) -> Result<Self, ModelError> {
        if input.is_empty() {
            return Err(ModelError::InvalidPath {
                input: input.to_string(),
                reason: "empty path",
            });
        }
        // Strip query string and fragment: routing is on the path component.
        let path_part = input
            .split_once('?')
            .map(|(p, _)| p)
            .unwrap_or(input)
            .split_once('#')
            .map(|(p, _)| p)
            .unwrap_or_else(|| input.split_once('?').map(|(p, _)| p).unwrap_or(input));
        if !path_part.starts_with('/') {
            return Err(ModelError::InvalidPath {
                input: input.to_string(),
                reason: "path must start with '/'",
            });
        }
        if path_part.bytes().any(|b| b.is_ascii_control() || b == b' ') {
            return Err(ModelError::InvalidPath {
                input: input.to_string(),
                reason: "path contains whitespace or control characters",
            });
        }
        let mut normalized = String::with_capacity(path_part.len());
        for seg in path_part.split('/').filter(|s| !s.is_empty()) {
            if seg == "." || seg == ".." {
                return Err(ModelError::InvalidPath {
                    input: input.to_string(),
                    reason: "path contains '.' or '..' segments",
                });
            }
            normalized.push('/');
            normalized.push_str(seg);
        }
        if normalized.is_empty() {
            normalized.push('/');
        }
        Ok(UrlPath { normalized })
    }

    /// The normalized path text.
    pub fn as_str(&self) -> &str {
        &self.normalized
    }

    /// Whether this is the root path `/`.
    pub fn is_root(&self) -> bool {
        self.normalized == "/"
    }

    /// Number of segments (levels in the content tree). The root has depth 0.
    pub fn depth(&self) -> usize {
        if self.is_root() {
            0
        } else {
            self.normalized.matches('/').count()
        }
    }

    /// Iterates over the path's segments in order.
    pub fn segments(&self) -> impl Iterator<Item = &str> {
        self.normalized.split('/').filter(|s| !s.is_empty())
    }

    /// The `level`-th segment (0-based), if any.
    pub fn segment(&self, level: usize) -> Option<&str> {
        self.segments().nth(level)
    }

    /// The final segment (file name), if any.
    pub fn file_name(&self) -> Option<&str> {
        self.segments().last()
    }

    /// The file extension of the final segment, lowercased range not applied
    /// (returned as written), if any.
    pub fn extension(&self) -> Option<&str> {
        let name = self.file_name()?;
        let (stem, ext) = name.rsplit_once('.')?;
        if stem.is_empty() {
            None // dotfiles like `/.htaccess` have no extension
        } else {
            Some(ext)
        }
    }

    /// The parent directory path; `None` for the root.
    pub fn parent(&self) -> Option<UrlPath> {
        if self.is_root() {
            return None;
        }
        let idx = self.normalized.rfind('/').expect("non-root path has '/'");
        if idx == 0 {
            Some(UrlPath::root())
        } else {
            Some(UrlPath {
                normalized: self.normalized[..idx].to_string(),
            })
        }
    }

    /// Appends a single segment, returning the child path.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidPath`] if `segment` is empty, contains a
    /// slash, whitespace, control characters, or is `.`/`..`.
    pub fn join(&self, segment: &str) -> Result<UrlPath, ModelError> {
        if segment.is_empty()
            || segment.contains('/')
            || segment == "."
            || segment == ".."
            || segment.bytes().any(|b| b.is_ascii_control() || b == b' ')
        {
            return Err(ModelError::InvalidPath {
                input: segment.to_string(),
                reason: "invalid segment",
            });
        }
        let mut normalized = if self.is_root() {
            String::new()
        } else {
            self.normalized.clone()
        };
        normalized.push('/');
        normalized.push_str(segment);
        Ok(UrlPath { normalized })
    }

    /// Whether `self` equals `ancestor` or lies beneath it in the tree.
    ///
    /// ```
    /// use cpms_model::UrlPath;
    /// let dir: UrlPath = "/images".parse().unwrap();
    /// let file: UrlPath = "/images/logo.gif".parse().unwrap();
    /// assert!(file.starts_with(&dir));
    /// assert!(!dir.starts_with(&file));
    /// ```
    pub fn starts_with(&self, ancestor: &UrlPath) -> bool {
        if ancestor.is_root() {
            return true;
        }
        self.normalized == ancestor.normalized
            || (self.normalized.starts_with(&ancestor.normalized)
                && self.normalized.as_bytes().get(ancestor.normalized.len()) == Some(&b'/'))
    }

    /// In-memory size of the path text, used for the §5.2 URL-table memory
    /// accounting.
    pub fn byte_len(&self) -> usize {
        self.normalized.len()
    }
}

impl fmt::Display for UrlPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.normalized)
    }
}

impl FromStr for UrlPath {
    type Err = ModelError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        UrlPath::parse(s)
    }
}

impl TryFrom<String> for UrlPath {
    type Error = ModelError;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        UrlPath::parse(&value)
    }
}

impl From<UrlPath> for String {
    fn from(p: UrlPath) -> String {
        p.normalized
    }
}

impl AsRef<str> for UrlPath {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let p = UrlPath::parse("/a//b/").unwrap();
        assert_eq!(p.as_str(), "/a/b");
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn strips_query_and_fragment() {
        assert_eq!(UrlPath::parse("/x?y=1").unwrap().as_str(), "/x");
        assert_eq!(UrlPath::parse("/x#frag").unwrap().as_str(), "/x");
        assert_eq!(
            UrlPath::parse("/cgi/run?q=a#b").unwrap().as_str(),
            "/cgi/run"
        );
    }

    #[test]
    fn root_properties() {
        let r = UrlPath::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.file_name(), None);
        assert_eq!(UrlPath::parse("/").unwrap(), r);
        assert_eq!(UrlPath::parse("///").unwrap(), r);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(UrlPath::parse("").is_err());
        assert!(UrlPath::parse("relative/path").is_err());
        assert!(UrlPath::parse("/has space").is_err());
        assert!(UrlPath::parse("/has\ttab").is_err());
        assert!(UrlPath::parse("/a/../b").is_err());
        assert!(UrlPath::parse("/a/./b").is_err());
    }

    #[test]
    fn segments_and_levels() {
        let p = UrlPath::parse("/products/cgi-bin/list.cgi").unwrap();
        assert_eq!(
            p.segments().collect::<Vec<_>>(),
            ["products", "cgi-bin", "list.cgi"]
        );
        assert_eq!(p.segment(0), Some("products"));
        assert_eq!(p.segment(2), Some("list.cgi"));
        assert_eq!(p.segment(3), None);
        assert_eq!(p.file_name(), Some("list.cgi"));
        assert_eq!(p.extension(), Some("cgi"));
    }

    #[test]
    fn extension_edge_cases() {
        assert_eq!(UrlPath::parse("/no_ext").unwrap().extension(), None);
        assert_eq!(UrlPath::parse("/.htaccess").unwrap().extension(), None);
        assert_eq!(UrlPath::parse("/a.b.c").unwrap().extension(), Some("c"));
    }

    #[test]
    fn parent_chain() {
        let p = UrlPath::parse("/a/b/c").unwrap();
        let b = p.parent().unwrap();
        assert_eq!(b.as_str(), "/a/b");
        let a = b.parent().unwrap();
        assert_eq!(a.as_str(), "/a");
        assert_eq!(a.parent().unwrap(), UrlPath::root());
    }

    #[test]
    fn join_builds_children() {
        let p = UrlPath::root().join("img").unwrap().join("x.gif").unwrap();
        assert_eq!(p.as_str(), "/img/x.gif");
        assert!(UrlPath::root().join("a/b").is_err());
        assert!(UrlPath::root().join("").is_err());
        assert!(UrlPath::root().join("..").is_err());
    }

    #[test]
    fn starts_with_is_tree_prefix() {
        let dir = UrlPath::parse("/img").unwrap();
        let file = UrlPath::parse("/img/x.gif").unwrap();
        let sibling = UrlPath::parse("/imgs/x.gif").unwrap();
        assert!(file.starts_with(&dir));
        assert!(dir.starts_with(&dir));
        assert!(!sibling.starts_with(&dir)); // "/imgs" is not under "/img"
        assert!(file.starts_with(&UrlPath::root()));
    }

    #[test]
    fn serde_roundtrip() {
        let p = UrlPath::parse("/a/b").unwrap();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "\"/a/b\"");
        let back: UrlPath = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert!(serde_json::from_str::<UrlPath>("\"nope\"").is_err());
    }
}
