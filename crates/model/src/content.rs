//! Web content objects and their classification.
//!
//! The paper partitions content "by type (e.g., static HTML pages, CGI
//! scripts, multimedia files, etc.) or by some other policy (e.g.,
//! priority)" (§1.2). [`ContentKind`] captures the type dimension and
//! [`Priority`] the policy dimension.

use crate::path::UrlPath;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable numeric identity of a content object within a corpus.
///
/// Identifiers are dense (assigned 0..n by the corpus builder) so they can
/// index per-object statistics arrays.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ContentId(pub u32);

impl ContentId {
    /// The raw index value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ContentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The type of a web object, which determines both its resource profile and
/// which placement partition it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ContentKind {
    /// Plain HTML page.
    StaticHtml,
    /// Inline image (GIF/JPEG/PNG).
    Image,
    /// CGI script: CPU-intensive dynamic content.
    Cgi,
    /// ASP page: dynamic content served by IIS nodes in the paper's testbed.
    Asp,
    /// Large multimedia object (streaming audio/video) with long connections.
    Video,
    /// Other static file (CSS, text, archives, …).
    OtherStatic,
}

impl ContentKind {
    /// All kinds, in a stable order.
    pub const ALL: [ContentKind; 6] = [
        ContentKind::StaticHtml,
        ContentKind::Image,
        ContentKind::Cgi,
        ContentKind::Asp,
        ContentKind::Video,
        ContentKind::OtherStatic,
    ];

    /// Whether serving this kind executes code (CGI/ASP) rather than reading
    /// a file. Dynamic requests are CPU-bound; the paper gives them load
    /// constants `load_CPU = 10, load_Disk = 5` (§3.3).
    pub const fn is_dynamic(self) -> bool {
        matches!(self, ContentKind::Cgi | ContentKind::Asp)
    }

    /// Whether this kind is served from a file on disk.
    pub const fn is_static(self) -> bool {
        !self.is_dynamic()
    }

    /// Whether this kind has real-time streaming requirements and large
    /// transfers ("long connection requests", §1.1).
    pub const fn is_multimedia(self) -> bool {
        matches!(self, ContentKind::Video)
    }

    /// Classifies a path by its extension, the way the paper's administrator
    /// "roughly partitioned the document tree by content type" (§5.3).
    ///
    /// ```
    /// use cpms_model::{ContentKind, UrlPath};
    /// let p: UrlPath = "/cgi-bin/search.cgi".parse().unwrap();
    /// assert_eq!(ContentKind::classify(&p), ContentKind::Cgi);
    /// ```
    pub fn classify(path: &UrlPath) -> ContentKind {
        match path.extension().map(str::to_ascii_lowercase).as_deref() {
            Some("html") | Some("htm") => ContentKind::StaticHtml,
            Some("gif") | Some("jpg") | Some("jpeg") | Some("png") | Some("ico") => {
                ContentKind::Image
            }
            Some("cgi") | Some("pl") => ContentKind::Cgi,
            Some("asp") => ContentKind::Asp,
            Some("mpg") | Some("mpeg") | Some("avi") | Some("mov") | Some("rm") | Some("mp3") => {
                ContentKind::Video
            }
            _ => ContentKind::OtherStatic,
        }
    }

    /// Short lowercase label for reports (`cgi`, `asp`, `static`, …).
    pub const fn label(self) -> &'static str {
        match self {
            ContentKind::StaticHtml => "html",
            ContentKind::Image => "image",
            ContentKind::Cgi => "cgi",
            ContentKind::Asp => "asp",
            ContentKind::Video => "video",
            ContentKind::OtherStatic => "static",
        }
    }
}

impl fmt::Display for ContentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Administrative priority of a content object (§1.1: "not all content is
/// equally important to the client and service provider").
///
/// Higher priorities can be pinned to more capable nodes or replicated more
/// widely by placement policies.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Priority {
    /// Ordinary content.
    #[default]
    Normal,
    /// Important content (e.g. product lists, shopping pages) that should be
    /// separated or given more resources.
    Critical,
    /// Content that may be served degraded or shed first under overload.
    Background,
}

impl Priority {
    /// Numeric rank; larger means more important.
    pub const fn rank(self) -> u8 {
        match self {
            Priority::Background => 0,
            Priority::Normal => 1,
            Priority::Critical => 2,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Priority::Normal => "normal",
            Priority::Critical => "critical",
            Priority::Background => "background",
        };
        f.write_str(s)
    }
}

/// A single web object: the unit of placement, replication, and routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentItem {
    path: UrlPath,
    kind: ContentKind,
    size_bytes: u64,
    priority: Priority,
    /// Whether the object is mutated by the content provider (§4: mutable
    /// documents should be pinned to one node to keep consistency trivial).
    mutable: bool,
}

impl ContentItem {
    /// Creates an item with [`Priority::Normal`] and `mutable = false`.
    pub fn new(path: UrlPath, kind: ContentKind, size_bytes: u64) -> Self {
        ContentItem {
            path,
            kind,
            size_bytes,
            priority: Priority::Normal,
            mutable: false,
        }
    }

    /// Sets the administrative priority (builder-style).
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Marks the object as mutable (builder-style).
    #[must_use]
    pub fn with_mutable(mut self, mutable: bool) -> Self {
        self.mutable = mutable;
        self
    }

    /// The object's URL path.
    pub fn path(&self) -> &UrlPath {
        &self.path
    }

    /// The object's kind.
    pub fn kind(&self) -> ContentKind {
        self.kind
    }

    /// Size of the object in bytes. For dynamic content this is the size of
    /// the *response* it generates (used for transfer-time modelling).
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// The object's administrative priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Whether the content provider mutates this object.
    pub fn is_mutable(&self) -> bool {
        self.mutable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> UrlPath {
        s.parse().unwrap()
    }

    #[test]
    fn classify_by_extension() {
        assert_eq!(
            ContentKind::classify(&p("/index.html")),
            ContentKind::StaticHtml
        );
        assert_eq!(ContentKind::classify(&p("/a/logo.GIF")), ContentKind::Image);
        assert_eq!(
            ContentKind::classify(&p("/cgi-bin/q.cgi")),
            ContentKind::Cgi
        );
        assert_eq!(
            ContentKind::classify(&p("/shop/cart.asp")),
            ContentKind::Asp
        );
        assert_eq!(
            ContentKind::classify(&p("/media/clip.mpg")),
            ContentKind::Video
        );
        assert_eq!(
            ContentKind::classify(&p("/data/file.zip")),
            ContentKind::OtherStatic
        );
        assert_eq!(
            ContentKind::classify(&p("/noext")),
            ContentKind::OtherStatic
        );
    }

    #[test]
    fn dynamic_static_partition() {
        for kind in ContentKind::ALL {
            assert_ne!(kind.is_dynamic(), kind.is_static());
        }
        assert!(ContentKind::Cgi.is_dynamic());
        assert!(ContentKind::Asp.is_dynamic());
        assert!(ContentKind::Video.is_static());
        assert!(ContentKind::Video.is_multimedia());
        assert!(!ContentKind::Image.is_multimedia());
    }

    #[test]
    fn priority_ranks() {
        assert!(Priority::Critical.rank() > Priority::Normal.rank());
        assert!(Priority::Normal.rank() > Priority::Background.rank());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn item_builders() {
        let item = ContentItem::new(p("/x.html"), ContentKind::StaticHtml, 1024)
            .with_priority(Priority::Critical)
            .with_mutable(true);
        assert_eq!(item.size_bytes(), 1024);
        assert_eq!(item.priority(), Priority::Critical);
        assert!(item.is_mutable());
    }

    #[test]
    fn content_id_display_and_index() {
        assert_eq!(ContentId(7).to_string(), "c7");
        assert_eq!(ContentId(7).index(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let item = ContentItem::new(p("/x.cgi"), ContentKind::Cgi, 10);
        let json = serde_json::to_string(&item).unwrap();
        let back: ContentItem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, item);
    }
}
