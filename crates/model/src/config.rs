//! Serializable experiment configuration.
//!
//! The bench harness and examples describe runs declaratively; this module
//! holds the shared, serde-friendly configuration types.

use crate::error::ModelError;
use crate::node::NodeSpec;
use serde::{Deserialize, Serialize};

/// Which content placement scheme a run uses — the three configurations of
/// the paper's §5.3 experiments, plus partial replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PlacementKind {
    /// Configuration 1: the entire document set replicated on every node,
    /// fronted by a layer-4 router with weighted least connections.
    FullReplication,
    /// Configuration 2: the entire document set on one shared NFS server;
    /// every web node fetches remotely, fronted by a layer-4 router.
    SharedNfs,
    /// Configuration 3: the document tree partitioned by content type (and
    /// large files pinned to big/fast-disk nodes), fronted by the
    /// content-aware distributor.
    PartitionedByType,
    /// Partitioning plus replication of hot/critical content on several
    /// nodes (what auto-replication converges to).
    PartialReplication,
}

impl PlacementKind {
    /// Label used in experiment reports.
    pub const fn label(self) -> &'static str {
        match self {
            PlacementKind::FullReplication => "full-replication",
            PlacementKind::SharedNfs => "shared-nfs",
            PlacementKind::PartitionedByType => "partitioned",
            PlacementKind::PartialReplication => "partial-replication",
        }
    }

    /// Whether this scheme requires a content-aware (layer-7) front end.
    /// Full replication and NFS work with a content-blind layer-4 router
    /// because every node can serve everything.
    pub const fn needs_content_aware_routing(self) -> bool {
        matches!(
            self,
            PlacementKind::PartitionedByType | PlacementKind::PartialReplication
        )
    }
}

impl std::fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which synthetic workload a run uses (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Workload A: static content only.
    A,
    /// Workload B: includes a significant amount of dynamic content
    /// (CGI and ASP).
    B,
}

impl WorkloadKind {
    /// Label used in experiment reports.
    pub const fn label(self) -> &'static str {
        match self {
            WorkloadKind::A => "workload-A",
            WorkloadKind::B => "workload-B",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Declarative description of a cluster for an experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Back-end server nodes.
    pub nodes: Vec<NodeSpec>,
    /// Placement scheme.
    pub placement: PlacementKind,
    /// Auto-replication overload/underutilization threshold as a fraction of
    /// the average load (`None` disables auto-replication).
    pub rebalance_threshold: Option<f64>,
}

impl ClusterConfig {
    /// A config over the paper's nine-machine testbed.
    pub fn paper_testbed(placement: PlacementKind) -> Self {
        ClusterConfig {
            nodes: NodeSpec::paper_testbed(),
            placement,
            rebalance_threshold: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if there are no nodes or the
    /// rebalance threshold is not in `(0, 10]`.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.nodes.is_empty() {
            return Err(ModelError::InvalidConfig {
                field: "nodes",
                reason: "cluster must have at least one node",
            });
        }
        if let Some(t) = self.rebalance_threshold {
            if !(t > 0.0 && t <= 10.0 && t.is_finite()) {
                return Err(ModelError::InvalidConfig {
                    field: "rebalance_threshold",
                    reason: "threshold must be in (0, 10]",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_labels() {
        assert_eq!(PlacementKind::FullReplication.label(), "full-replication");
        assert_eq!(PlacementKind::SharedNfs.to_string(), "shared-nfs");
    }

    #[test]
    fn routing_requirements() {
        assert!(!PlacementKind::FullReplication.needs_content_aware_routing());
        assert!(!PlacementKind::SharedNfs.needs_content_aware_routing());
        assert!(PlacementKind::PartitionedByType.needs_content_aware_routing());
        assert!(PlacementKind::PartialReplication.needs_content_aware_routing());
    }

    #[test]
    fn paper_testbed_config() {
        let c = ClusterConfig::paper_testbed(PlacementKind::PartitionedByType);
        assert_eq!(c.nodes.len(), 9);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ClusterConfig::paper_testbed(PlacementKind::FullReplication);
        c.nodes.clear();
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::paper_testbed(PlacementKind::FullReplication);
        c.rebalance_threshold = Some(0.0);
        assert!(c.validate().is_err());
        c.rebalance_threshold = Some(0.25);
        c.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip() {
        let c = ClusterConfig::paper_testbed(PlacementKind::SharedNfs);
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
