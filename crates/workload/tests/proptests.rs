//! Property tests for workload generation invariants.

use cpms_model::RequestClass;
use cpms_workload::corpus::KindFractions;
use cpms_workload::{CorpusBuilder, RequestSampler, Trace, WorkloadSpec, ZipfSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corpus generation: dense ids, unique paths, exact object count,
    /// classes partition the id space — for any size and seed.
    #[test]
    fn corpus_invariants(total in 10usize..3_000, seed in 0u64..10_000) {
        let corpus = CorpusBuilder::small_site().total_objects(total).seed(seed).build();
        prop_assert_eq!(corpus.len(), total);
        let mut paths: Vec<&str> = corpus.items().iter().map(|i| i.path().as_str()).collect();
        paths.sort_unstable();
        let n = paths.len();
        paths.dedup();
        prop_assert_eq!(paths.len(), n, "unique paths");
        let by_class: usize = RequestClass::ALL
            .iter()
            .map(|&c| corpus.class_ids(c).len())
            .sum();
        prop_assert_eq!(by_class, total, "classes partition the corpus");
        for &class in &RequestClass::ALL {
            for &id in corpus.class_ids(class) {
                prop_assert!(id.index() < total);
                prop_assert_eq!(RequestClass::from_kind(corpus.get(id).kind()), class);
            }
        }
        prop_assert!(corpus.total_bytes() > 0);
    }

    /// The Zipf CDF is a proper distribution for any size/alpha.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..5_000, alpha in 0.0f64..2.5) {
        let z = ZipfSampler::new(n, alpha);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        // quantile function maps [0,1) into range
        for q in [0.0, 0.25, 0.5, 0.75, 0.999_999] {
            prop_assert!(z.rank_for_quantile(q) < n);
        }
    }

    /// Sampled ids always belong to a class the workload spec allows.
    #[test]
    fn sampler_respects_spec(seed in 0u64..1_000, workload_b in any::<bool>()) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let spec = if workload_b {
            WorkloadSpec::workload_b()
        } else {
            WorkloadSpec::workload_a()
        };
        let sampler = RequestSampler::new(&corpus, &spec, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..500 {
            let id = sampler.sample_id(&mut rng);
            prop_assert!(id.index() < corpus.len());
            let class = RequestClass::from_kind(corpus.get(id).kind());
            prop_assert!(
                spec.mix.share(class) > 0.0,
                "sampled {class} with zero share"
            );
        }
    }

    /// Trace record/replay round-trips through serde and preserves counts.
    #[test]
    fn trace_roundtrip(seed in 0u64..1_000, len in 1usize..2_000) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let mut sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), seed);
        let trace = Trace::record(&mut sampler, len);
        prop_assert_eq!(trace.len(), len);
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Trace = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &trace);
        let class_total: usize = back.class_counts(&corpus).values().sum();
        prop_assert_eq!(class_total, len);
        let object_total: usize = back.object_counts().values().sum();
        prop_assert_eq!(object_total, len);
    }

    /// Custom kind fractions are honored approximately at scale.
    #[test]
    fn fractions_respected(html in 0.1f64..0.6) {
        let image = 0.9 - html;
        let fractions = KindFractions {
            html,
            image,
            other: 0.05,
            cgi: 0.03,
            asp: 0.01,
            video: 0.01,
        };
        let corpus = CorpusBuilder::small_site()
            .total_objects(2_000)
            .fractions(fractions)
            .seed(1)
            .build();
        let n_html = corpus
            .items()
            .iter()
            .filter(|i| i.kind() == cpms_model::ContentKind::StaticHtml)
            .count();
        let got = n_html as f64 / corpus.len() as f64;
        prop_assert!((got - html).abs() < 0.05, "asked {html:.2}, got {got:.2}");
    }
}
