//! Property tests for workload generation invariants.

use cpms_model::RequestClass;
use cpms_workload::corpus::KindFractions;
use cpms_workload::{
    CorpusBuilder, Diurnal, FlashCrowd, FlashSpec, RequestSampler, Trace, WorkloadSpec, ZipfSampler,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corpus generation: dense ids, unique paths, exact object count,
    /// classes partition the id space — for any size and seed.
    #[test]
    fn corpus_invariants(total in 10usize..3_000, seed in 0u64..10_000) {
        let corpus = CorpusBuilder::small_site().total_objects(total).seed(seed).build();
        prop_assert_eq!(corpus.len(), total);
        let mut paths: Vec<&str> = corpus.items().iter().map(|i| i.path().as_str()).collect();
        paths.sort_unstable();
        let n = paths.len();
        paths.dedup();
        prop_assert_eq!(paths.len(), n, "unique paths");
        let by_class: usize = RequestClass::ALL
            .iter()
            .map(|&c| corpus.class_ids(c).len())
            .sum();
        prop_assert_eq!(by_class, total, "classes partition the corpus");
        for &class in &RequestClass::ALL {
            for &id in corpus.class_ids(class) {
                prop_assert!(id.index() < total);
                prop_assert_eq!(RequestClass::from_kind(corpus.get(id).kind()), class);
            }
        }
        prop_assert!(corpus.total_bytes() > 0);
    }

    /// The Zipf CDF is a proper distribution for any size/alpha.
    #[test]
    fn zipf_is_a_distribution(n in 1usize..5_000, alpha in 0.0f64..2.5) {
        let z = ZipfSampler::new(n, alpha);
        let total: f64 = (0..n).map(|r| z.probability(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        // quantile function maps [0,1) into range
        for q in [0.0, 0.25, 0.5, 0.75, 0.999_999] {
            prop_assert!(z.rank_for_quantile(q) < n);
        }
    }

    /// Sampled ids always belong to a class the workload spec allows.
    #[test]
    fn sampler_respects_spec(seed in 0u64..1_000, workload_b in any::<bool>()) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let spec = if workload_b {
            WorkloadSpec::workload_b()
        } else {
            WorkloadSpec::workload_a()
        };
        let sampler = RequestSampler::new(&corpus, &spec, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..500 {
            let id = sampler.sample_id(&mut rng);
            prop_assert!(id.index() < corpus.len());
            let class = RequestClass::from_kind(corpus.get(id).kind());
            prop_assert!(
                spec.mix.share(class) > 0.0,
                "sampled {class} with zero share"
            );
        }
    }

    /// Trace record/replay round-trips through serde and preserves counts.
    #[test]
    fn trace_roundtrip(seed in 0u64..1_000, len in 1usize..2_000) {
        let corpus = CorpusBuilder::small_site().seed(seed).build();
        let mut sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), seed);
        let trace = Trace::record(&mut sampler, len);
        prop_assert_eq!(trace.len(), len);
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: Trace = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &trace);
        let class_total: usize = back.class_counts(&corpus).values().sum();
        prop_assert_eq!(class_total, len);
        let object_total: usize = back.object_counts().values().sum();
        prop_assert_eq!(object_total, len);
    }

    /// Custom kind fractions are honored approximately at scale.
    #[test]
    fn fractions_respected(html in 0.1f64..0.6) {
        let image = 0.9 - html;
        let fractions = KindFractions {
            html,
            image,
            other: 0.05,
            cgi: 0.03,
            asp: 0.01,
            video: 0.01,
        };
        let corpus = CorpusBuilder::small_site()
            .total_objects(2_000)
            .fractions(fractions)
            .seed(1)
            .build();
        let n_html = corpus
            .items()
            .iter()
            .filter(|i| i.kind() == cpms_model::ContentKind::StaticHtml)
            .count();
        let got = n_html as f64 / corpus.len() as f64;
        prop_assert!((got - html).abs() < 0.05, "asked {html:.2}, got {got:.2}");
    }
}

/// Least-squares slope of `ln(freq)` against `ln(rank + 1)` over the top
/// `ranks` ranks — the log-log rank-frequency line a Zipf stream must
/// follow with slope `-alpha`.
fn log_log_slope(counts: &[u64], ranks: usize) -> f64 {
    let points: Vec<(f64, f64)> = counts
        .iter()
        .take(ranks)
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(r, &c)| (((r + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seeded determinism: a flash-crowd stream replays identically for
    /// the same seed — the contract the chaos lab's trace replay relies
    /// on — and every rank stays inside the population.
    #[test]
    fn flash_crowd_replays_identically(seed in 0u64..10_000, hot in 1usize..8) {
        let spec = FlashSpec { burst_start: 50, burst_len: 100, hot_set: hot, boost: 0.75 };
        let a: Vec<usize> = FlashCrowd::new(200, 0.9, seed, spec).take(300).collect();
        let b: Vec<usize> = FlashCrowd::new(200, 0.9, seed, spec).take(300).collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&r| r < 200));
    }

    /// Seeded determinism and range safety for the diurnal generator,
    /// across arbitrary period/shift geometry.
    #[test]
    fn diurnal_replays_identically(
        seed in 0u64..10_000,
        period in 1usize..500,
        shift in 0usize..600,
    ) {
        let a: Vec<usize> = Diurnal::new(150, 0.8, seed, period, shift).take(400).collect();
        let b: Vec<usize> = Diurnal::new(150, 0.8, seed, period, shift).take(400).collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&o| o < 150));
    }

    /// Distribution shape: the sampled rank-frequency line of a Zipf
    /// stream has log-log slope ≈ -alpha over the head of the ranking.
    #[test]
    fn zipf_rank_frequency_slope_matches_alpha(seed in 0u64..10_000) {
        let alpha = 0.8;
        let z = ZipfSampler::new(1_000, alpha);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let slope = log_log_slope(&counts, 50);
        prop_assert!(
            (slope + alpha).abs() < 0.15,
            "log-log slope {slope:.3} should be ≈ -{alpha}"
        );
    }

    /// Distribution shape: inside the burst window the hot set absorbs
    /// at least the boost share of traffic (the Zipf base only adds to
    /// it); outside the window the stream stays un-boosted Zipf.
    #[test]
    fn flash_crowd_burst_concentrates(seed in 0u64..10_000, hot in 1usize..6) {
        let spec = FlashSpec { burst_start: 200, burst_len: 600, hot_set: hot, boost: 0.85 };
        let stream: Vec<usize> = FlashCrowd::new(500, 0.7, seed, spec).take(800).collect();
        let hot_share = |window: &[usize]| {
            window.iter().filter(|&&r| r < hot).count() as f64 / window.len() as f64
        };
        let in_burst = hot_share(&stream[200..800]);
        prop_assert!(in_burst > 0.75, "burst hot share {in_burst:.2} for hot_set {hot}");
        // The plain-Zipf warm-up cannot be as concentrated as the burst
        // unless the hot set already covers most of the head.
        let before = hot_share(&stream[..200]);
        prop_assert!(before < in_burst, "pre-burst {before:.2} vs burst {in_burst:.2}");
    }

    /// Distribution shape: each diurnal phase's announced hottest object
    /// dominates a far-away (population-distant) object's hit count.
    #[test]
    fn diurnal_hot_set_tracks_rotation(seed in 0u64..10_000) {
        let n = 400;
        let mut d = Diurnal::new(n, 1.1, seed, 600, 97);
        for _ in 0..3 {
            let hottest = d.hottest();
            let mut counts = vec![0u64; n];
            for _ in 0..600 {
                counts[d.next_object()] += 1;
            }
            let far = (hottest + n / 2) % n;
            prop_assert!(
                counts[hottest] > counts[far],
                "hot {hottest} ({}) must beat far {far} ({})",
                counts[hottest],
                counts[far]
            );
        }
    }
}
