//! Time-shaped request streams: flash crowds and diurnal drift.
//!
//! [`ZipfSampler`] models a *stationary* popularity distribution, but the
//! paper's motivation for runtime content management (§1, §3.3) is that
//! real traffic is not stationary: breaking news concentrates load on a
//! handful of objects for a window (a flash crowd), and interest rotates
//! across the object population over the day (diurnal drift). These
//! generators layer those effects over a Zipf base while staying fully
//! deterministic per seed — the same seed replays the identical request
//! stream, which is what a chaos-lab assertion harness needs.

use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The burst window of a [`FlashCrowd`], in request indices.
#[derive(Debug, Clone, Copy)]
pub struct FlashSpec {
    /// Request index at which the burst begins.
    pub burst_start: usize,
    /// Burst duration in requests.
    pub burst_len: usize,
    /// Size of the hot set: the burst concentrates on objects `0..hot_set`.
    pub hot_set: usize,
    /// Probability, inside the burst, that a request goes to the hot set
    /// (uniformly) instead of the Zipf base. `0.0` disables the burst.
    pub boost: f64,
}

/// A Zipf base stream with a flash-crowd window: for requests inside
/// `[burst_start, burst_start + burst_len)`, a `boost` fraction of the
/// traffic is redirected uniformly onto the `hot_set` most popular
/// objects. Outside the window the stream is plain Zipf.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    base: ZipfSampler,
    spec: FlashSpec,
    rng: StdRng,
    issued: usize,
}

impl FlashCrowd {
    /// A flash-crowd stream over `n` objects with Zipf skew `alpha`,
    /// deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (via [`ZipfSampler::new`]), if `spec.hot_set`
    /// is zero or exceeds `n`, or if `spec.boost` is outside `[0, 1]`.
    pub fn new(n: usize, alpha: f64, seed: u64, spec: FlashSpec) -> Self {
        assert!(
            spec.hot_set >= 1 && spec.hot_set <= n,
            "hot set must be within the object population"
        );
        assert!((0.0..=1.0).contains(&spec.boost), "boost is a probability");
        FlashCrowd {
            base: ZipfSampler::new(n, alpha),
            spec,
            rng: StdRng::seed_from_u64(seed),
            issued: 0,
        }
    }

    /// Whether the *next* request falls inside the burst window.
    pub fn in_burst(&self) -> bool {
        self.issued >= self.spec.burst_start
            && self.issued < self.spec.burst_start + self.spec.burst_len
    }

    /// Requests issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// The next request's object rank (rank 0 is the most popular).
    pub fn next_rank(&mut self) -> usize {
        // Draw both decisions every step so the stream stays aligned
        // whether or not the burst window is active — determinism holds
        // across spec tweaks, matching FaultyTransport's discipline.
        let redirect: f64 = self.rng.gen();
        let hot = self.rng.gen_range(0..self.spec.hot_set as u64) as usize;
        let base = self.base.sample(&mut self.rng);
        let in_burst = self.in_burst();
        self.issued += 1;
        if in_burst && redirect < self.spec.boost {
            hot
        } else {
            base
        }
    }
}

impl Iterator for FlashCrowd {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        Some(self.next_rank())
    }
}

/// Diurnal drift: a Zipf stream whose identity mapping rotates every
/// `period` requests, so the *shape* of popularity is constant but
/// *which* objects are hot moves across the population — the "interest
/// rotates over the day" effect that forces placement to adapt.
#[derive(Debug, Clone)]
pub struct Diurnal {
    base: ZipfSampler,
    rng: StdRng,
    period: usize,
    shift: usize,
    issued: usize,
}

impl Diurnal {
    /// A diurnal stream over `n` objects with Zipf skew `alpha`: every
    /// `period` requests the hot set rotates forward by `shift` objects.
    /// Deterministic per `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (via [`ZipfSampler::new`]) or `period == 0`.
    pub fn new(n: usize, alpha: f64, seed: u64, period: usize, shift: usize) -> Self {
        assert!(period > 0, "a diurnal phase needs at least one request");
        Diurnal {
            base: ZipfSampler::new(n, alpha),
            rng: StdRng::seed_from_u64(seed),
            period,
            shift,
            issued: 0,
        }
    }

    /// The current phase index (how many rotations have happened).
    pub fn phase(&self) -> usize {
        self.issued / self.period
    }

    /// The object that is currently the most popular (rank 0 after the
    /// phase rotation).
    pub fn hottest(&self) -> usize {
        (self.phase() * self.shift) % self.base.len()
    }

    /// Requests issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }

    /// The next request's object index.
    pub fn next_object(&mut self) -> usize {
        let rank = self.base.sample(&mut self.rng);
        let rotated = (rank + self.phase() * self.shift) % self.base.len();
        self.issued += 1;
        rotated
    }
}

impl Iterator for Diurnal {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        Some(self.next_object())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlashSpec {
        FlashSpec {
            burst_start: 100,
            burst_len: 200,
            hot_set: 5,
            boost: 0.9,
        }
    }

    #[test]
    fn flash_crowd_same_seed_identical_stream() {
        let a: Vec<usize> = FlashCrowd::new(500, 0.8, 42, spec()).take(1000).collect();
        let b: Vec<usize> = FlashCrowd::new(500, 0.8, 42, spec()).take(1000).collect();
        assert_eq!(a, b);
        let c: Vec<usize> = FlashCrowd::new(500, 0.8, 43, spec()).take(1000).collect();
        assert_ne!(a, c, "a different seed must change the stream");
    }

    #[test]
    fn burst_concentrates_on_hot_set() {
        let stream: Vec<usize> = FlashCrowd::new(500, 0.8, 7, spec()).take(300).collect();
        let hot_in_burst = stream[100..300].iter().filter(|&&r| r < 5).count();
        let hot_before = stream[..100].iter().filter(|&&r| r < 5).count();
        // 90% of 200 burst requests redirect to the hot set, on top of
        // whatever the Zipf base already puts there.
        assert!(hot_in_burst > 160, "burst hot hits: {hot_in_burst}");
        // Outside the burst the hot-set share is just the Zipf head.
        assert!(hot_before < 80, "pre-burst hot hits: {hot_before}");
    }

    #[test]
    fn zero_boost_degenerates_to_zipf() {
        let mut flat = spec();
        flat.boost = 0.0;
        let a: Vec<usize> = FlashCrowd::new(200, 0.9, 9, flat).take(500).collect();
        let b: Vec<usize> = FlashCrowd::new(200, 0.9, 9, spec()).take(500).collect();
        // Identical outside the window (same draws), divergent inside.
        assert_eq!(a[..100], b[..100]);
        assert_ne!(a[100..300], b[100..300]);
    }

    #[test]
    fn diurnal_same_seed_identical_stream() {
        let a: Vec<usize> = Diurnal::new(300, 0.8, 11, 50, 75).take(400).collect();
        let b: Vec<usize> = Diurnal::new(300, 0.8, 11, 50, 75).take(400).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_rotates_the_hot_set() {
        let mut d = Diurnal::new(300, 1.0, 3, 1000, 100);
        let mut phase_tops: Vec<usize> = Vec::new();
        for phase in 0..3 {
            assert_eq!(d.phase(), phase);
            assert_eq!(d.hottest(), phase * 100);
            let mut counts = vec![0u32; 300];
            for _ in 0..1000 {
                counts[d.next_object()] += 1;
            }
            let top = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap();
            phase_tops.push(top);
        }
        assert_eq!(phase_tops, vec![0, 100, 200], "hot object moved each phase");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_boost_panics() {
        let mut s = spec();
        s.boost = 1.5;
        let _ = FlashCrowd::new(10, 0.8, 1, s);
    }
}
