//! Recorded request traces.
//!
//! A [`Trace`] freezes a request stream so experiments can replay the exact
//! same sequence across placement schemes — the apples-to-apples comparison
//! behind Figures 2 and 3.

use crate::corpus::Corpus;
use crate::sampler::RequestSampler;
use cpms_model::{ContentId, RequestClass};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A recorded sequence of content requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Trace {
    requests: Vec<ContentId>,
}

impl Trace {
    /// Records `n` requests from the sampler's internal RNG.
    pub fn record(sampler: &mut RequestSampler, n: usize) -> Self {
        Trace {
            requests: (0..n).map(|_| sampler.next_id()).collect(),
        }
    }

    /// Builds a trace from explicit ids.
    pub fn from_ids<I: IntoIterator<Item = ContentId>>(ids: I) -> Self {
        Trace {
            requests: ids.into_iter().collect(),
        }
    }

    /// The recorded ids in order.
    pub fn ids(&self) -> &[ContentId] {
        &self.requests
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the ids in order.
    pub fn iter(&self) -> impl Iterator<Item = ContentId> + '_ {
        self.requests.iter().copied()
    }

    /// Per-class request counts, resolved against `corpus`.
    pub fn class_counts(&self, corpus: &Corpus) -> HashMap<RequestClass, usize> {
        let mut counts = HashMap::new();
        for &id in &self.requests {
            let class = RequestClass::from_kind(corpus.get(id).kind());
            *counts.entry(class).or_insert(0) += 1;
        }
        counts
    }

    /// Per-object hit counts.
    pub fn object_counts(&self) -> HashMap<ContentId, usize> {
        let mut counts = HashMap::new();
        for &id in &self.requests {
            *counts.entry(id).or_insert(0) += 1;
        }
        counts
    }
}

impl FromIterator<ContentId> for Trace {
    fn from_iter<I: IntoIterator<Item = ContentId>>(iter: I) -> Self {
        Trace::from_ids(iter)
    }
}

impl Extend<ContentId> for Trace {
    fn extend<I: IntoIterator<Item = ContentId>>(&mut self, iter: I) {
        self.requests.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::spec::WorkloadSpec;

    #[test]
    fn record_and_replay() {
        let corpus = CorpusBuilder::small_site().seed(1).build();
        let mut sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), 11);
        let trace = Trace::record(&mut sampler, 1_000);
        assert_eq!(trace.len(), 1_000);
        // replay order is stable
        let first_ten: Vec<ContentId> = trace.iter().take(10).collect();
        assert_eq!(&trace.ids()[..10], first_ten.as_slice());
    }

    #[test]
    fn class_counts_consistent() {
        let corpus = CorpusBuilder::small_site().seed(2).build();
        let mut sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 12);
        let trace = Trace::record(&mut sampler, 5_000);
        let counts = trace.class_counts(&corpus);
        let total: usize = counts.values().sum();
        assert_eq!(total, 5_000);
        assert!(counts[&RequestClass::Cgi] > 0);
    }

    #[test]
    fn object_counts_sum() {
        let trace = Trace::from_ids([ContentId(1), ContentId(1), ContentId(2)]);
        let counts = trace.object_counts();
        assert_eq!(counts[&ContentId(1)], 2);
        assert_eq!(counts[&ContentId(2)], 1);
    }

    #[test]
    fn collect_and_extend() {
        let mut trace: Trace = [ContentId(5)].into_iter().collect();
        trace.extend([ContentId(6)]);
        assert_eq!(trace.ids(), [ContentId(5), ContentId(6)]);
        assert!(!trace.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let trace = Trace::from_ids([ContentId(1), ContentId(2)]);
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
