//! Turning a corpus + workload spec into a request stream.

use crate::corpus::Corpus;
use crate::spec::WorkloadSpec;
use crate::zipf::ZipfSampler;
use cpms_model::{ContentId, ContentItem, RequestClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples requests according to a [`WorkloadSpec`]: first the request
/// class (by the spec's mix), then an object within the class (Zipf over
/// the corpus's per-class popularity order).
///
/// This two-stage design guarantees the class shares exactly match the
/// spec (the paper reports per-class throughput in Figure 4) while keeping
/// intra-class popularity skewed.
#[derive(Debug, Clone)]
pub struct RequestSampler {
    /// `(class, cumulative mix share, ids hottest-first, zipf)` per class
    /// with nonzero share.
    classes: Vec<ClassSampler>,
    rng: StdRng,
}

#[derive(Debug, Clone)]
struct ClassSampler {
    class: RequestClass,
    cumulative_share: f64,
    ids: Vec<ContentId>,
    zipf: ZipfSampler,
}

impl RequestSampler {
    /// Creates a sampler. `seed` initializes the internal RNG used by
    /// [`RequestSampler::next_id`]; the `sample*` methods use a caller
    /// RNG instead.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid, or gives a nonzero share to a class
    /// the corpus has no objects of (e.g. Workload B over a static-only
    /// corpus).
    pub fn new(corpus: &Corpus, spec: &WorkloadSpec, seed: u64) -> Self {
        assert!(spec.is_valid(), "workload spec must be valid");
        let mut classes = Vec::new();
        let mut acc = 0.0;
        for &class in &RequestClass::ALL {
            let share = spec.mix.share(class);
            if share == 0.0 {
                continue;
            }
            let ids = corpus.class_ids(class).to_vec();
            assert!(
                !ids.is_empty(),
                "workload {} gives {class} share {share} but the corpus has no such objects",
                spec.name
            );
            acc += share;
            classes.push(ClassSampler {
                class,
                cumulative_share: acc,
                zipf: ZipfSampler::new(ids.len(), spec.zipf_alpha),
                ids,
            });
        }
        RequestSampler {
            classes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a sampler whose per-class popularity order is rotated by
    /// `rotation` positions: objects that were cold become the new Zipf
    /// head. Models the access-pattern shifts the paper's auto-replication
    /// is meant to track ("self-configure with respect to the change of
    /// content access pattern", §7).
    ///
    /// # Panics
    ///
    /// As for [`RequestSampler::new`].
    pub fn with_rotated_popularity(
        corpus: &Corpus,
        spec: &WorkloadSpec,
        seed: u64,
        rotation: usize,
    ) -> Self {
        let mut sampler = RequestSampler::new(corpus, spec, seed);
        for cs in &mut sampler.classes {
            let n = cs.ids.len();
            cs.ids.rotate_left(rotation % n.max(1));
        }
        sampler
    }

    /// Samples one content id using the caller's RNG.
    pub fn sample_id<R: Rng + ?Sized>(&self, rng: &mut R) -> ContentId {
        let u: f64 = rng.gen::<f64>() * self.classes.last().expect("nonempty").cumulative_share;
        let cs = self
            .classes
            .iter()
            .find(|c| u < c.cumulative_share)
            .unwrap_or_else(|| self.classes.last().expect("nonempty"));
        let rank = cs.zipf.sample(rng);
        cs.ids[rank]
    }

    /// Samples one object (borrowing from `corpus`) using the caller's RNG.
    ///
    /// # Panics
    ///
    /// Panics if `corpus` is not the corpus this sampler was built from
    /// (id out of range).
    pub fn sample<'c, R: Rng + ?Sized>(&self, corpus: &'c Corpus, rng: &mut R) -> &'c ContentItem {
        corpus.get(self.sample_id(rng))
    }

    /// Samples one content id from the internal seeded RNG.
    pub fn next_id(&mut self) -> ContentId {
        let u: f64 =
            self.rng.gen::<f64>() * self.classes.last().expect("nonempty").cumulative_share;
        let idx = self
            .classes
            .iter()
            .position(|c| u < c.cumulative_share)
            .unwrap_or(self.classes.len() - 1);
        let rank = self.classes[idx].zipf.sample(&mut self.rng);
        self.classes[idx].ids[rank]
    }

    /// The classes this sampler can emit, with their shares normalized to 1.
    pub fn classes(&self) -> Vec<(RequestClass, f64)> {
        let total = self.classes.last().expect("nonempty").cumulative_share;
        let mut prev = 0.0;
        self.classes
            .iter()
            .map(|c| {
                let share = (c.cumulative_share - prev) / total;
                prev = c.cumulative_share;
                (c.class, share)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::spec::WorkloadSpec;
    use std::collections::HashMap;

    #[test]
    fn class_shares_match_spec() {
        let corpus = CorpusBuilder::paper_site().seed(1).build();
        let spec = WorkloadSpec::workload_b();
        let sampler = RequestSampler::new(&corpus, &spec, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut counts: HashMap<RequestClass, u32> = HashMap::new();
        for _ in 0..n {
            let item = sampler.sample(&corpus, &mut rng);
            *counts
                .entry(RequestClass::from_kind(item.kind()))
                .or_insert(0) += 1;
        }
        let frac = |c: RequestClass| *counts.get(&c).unwrap_or(&0) as f64 / n as f64;
        assert!((frac(RequestClass::Cgi) - 0.14).abs() < 0.01);
        assert!((frac(RequestClass::Asp) - 0.10).abs() < 0.01);
        assert!((frac(RequestClass::Static) - 0.758).abs() < 0.01);
        assert!((frac(RequestClass::Video) - 0.002).abs() < 0.002);
    }

    #[test]
    fn workload_a_never_emits_dynamic() {
        let corpus = CorpusBuilder::small_site().seed(2).build();
        let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), 0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let item = sampler.sample(&corpus, &mut rng);
            assert!(!item.kind().is_dynamic());
        }
    }

    #[test]
    fn popularity_is_skewed_within_class() {
        let corpus = CorpusBuilder::paper_site().seed(3).build();
        let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_a(), 0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts: HashMap<ContentId, u32> = HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(sampler.sample_id(&mut rng)).or_insert(0) += 1;
        }
        // The hottest static object should get far more than uniform share.
        let hottest = corpus.class_ids(RequestClass::Static)[0];
        let hottest_count = *counts.get(&hottest).unwrap_or(&0);
        let uniform = n as f64 / corpus.class_ids(RequestClass::Static).len() as f64;
        assert!(
            hottest_count as f64 > 20.0 * uniform,
            "hottest got {hottest_count}, uniform would be {uniform:.1}"
        );
    }

    #[test]
    fn rotation_moves_the_hot_set() {
        let corpus = CorpusBuilder::paper_site().seed(8).build();
        let spec = WorkloadSpec::workload_a();
        let plain = RequestSampler::new(&corpus, &spec, 0);
        let rotated = RequestSampler::with_rotated_popularity(&corpus, &spec, 0, 1_000);
        let mut rng = StdRng::seed_from_u64(5);
        let count_hottest = |s: &RequestSampler, hottest: ContentId, rng: &mut StdRng| {
            (0..20_000).filter(|_| s.sample_id(rng) == hottest).count()
        };
        let old_hot = corpus.class_ids(RequestClass::Static)[0];
        let before = count_hottest(&plain, old_hot, &mut rng);
        let after = count_hottest(&rotated, old_hot, &mut rng);
        assert!(
            before > 20 * after.max(1),
            "old hot object must go cold after rotation: {before} vs {after}"
        );
    }

    #[test]
    fn next_id_is_deterministic() {
        let corpus = CorpusBuilder::small_site().seed(5).build();
        let spec = WorkloadSpec::workload_b();
        let mut a = RequestSampler::new(&corpus, &spec, 99);
        let mut b = RequestSampler::new(&corpus, &spec, 99);
        let ids_a: Vec<ContentId> = (0..100).map(|_| a.next_id()).collect();
        let ids_b: Vec<ContentId> = (0..100).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn classes_report_normalized_shares() {
        let corpus = CorpusBuilder::small_site().seed(6).build();
        let sampler = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 0);
        let classes = sampler.classes();
        let total: f64 = classes.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(classes.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no such objects")]
    fn spec_corpus_mismatch_panics() {
        // A corpus with zero dynamic objects cannot serve Workload B.
        let corpus = CorpusBuilder::small_site()
            .fractions(crate::corpus::KindFractions {
                html: 0.5,
                image: 0.5,
                other: 0.0,
                cgi: 0.0,
                asp: 0.0,
                video: 0.0,
            })
            .seed(7)
            .build();
        let _ = RequestSampler::new(&corpus, &WorkloadSpec::workload_b(), 0);
    }
}
