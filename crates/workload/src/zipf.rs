//! Zipf-distributed popularity.
//!
//! Web object popularity is famously Zipf-like (Almeida et al. 1996, cited
//! as \[8\] in the paper): the *r*-th most popular object receives requests
//! proportional to `1 / r^alpha`, with `alpha` near 0.8–1.0 for web-server
//! traces.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^alpha`.
///
/// Uses a precomputed CDF and binary search: O(n) memory, O(log n) per
/// sample, exact (no rejection).
///
/// # Example
///
/// ```
/// use cpms_workload::ZipfSampler;
/// use rand::SeedableRng;
///
/// let zipf = ZipfSampler::new(1000, 0.8);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut firsts = 0;
/// for _ in 0..10_000 {
///     if zipf.sample(&mut rng) == 0 { firsts += 1; }
/// }
/// // rank 0 should receive far more than the uniform 10 requests
/// assert!(firsts > 200);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    alpha: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `alpha`.
    ///
    /// `alpha = 0` degenerates to the uniform distribution; typical web
    /// traces have `alpha ≈ 0.8`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha` is negative or not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be non-negative and finite"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point: the last entry must be exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf, alpha }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is over an empty range (never true by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The skew parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples a rank in `0..len()`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.rank_for_quantile(u)
    }

    /// The rank whose CDF interval contains quantile `u ∈ [0, 1)`.
    pub fn rank_for_quantile(&self, u: f64) -> usize {
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf values are finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of `rank`.
    pub fn probability(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 0.8);
        let sum: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn monotonically_decreasing_mass() {
        let z = ZipfSampler::new(50, 1.0);
        for r in 1..50 {
            assert!(
                z.probability(r) <= z.probability(r - 1) + 1e-12,
                "mass must decrease with rank"
            );
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_skew_matches_theory() {
        let z = ZipfSampler::new(1000, 0.8);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut count0 = 0u32;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        let expected = z.probability(0);
        let observed = count0 as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn quantile_edges() {
        let z = ZipfSampler::new(10, 0.8);
        assert_eq!(z.rank_for_quantile(0.0), 0);
        assert_eq!(z.rank_for_quantile(0.9999999), 9);
        // exactly the top of the first bucket lands in the next rank
        let q0 = z.probability(0);
        assert_eq!(z.rank_for_quantile(q0 / 2.0), 0);
    }

    #[test]
    fn single_rank() {
        let z = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.probability(0), 1.0);
        assert_eq!(z.probability(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 0.8);
    }

    #[test]
    fn concentration_increases_with_alpha() {
        let z_low = ZipfSampler::new(1000, 0.5);
        let z_high = ZipfSampler::new(1000, 1.2);
        let top10_low: f64 = (0..10).map(|r| z_low.probability(r)).sum();
        let top10_high: f64 = (0..10).map(|r| z_high.probability(r)).sum();
        assert!(top10_high > top10_low);
    }
}
