//! # cpms-workload
//!
//! WebBench-like synthetic workload generation (§5.1 of the paper).
//!
//! The paper drove its testbed with 96 WebBench client processes emitting
//! request streams whose "file size, request distribution, file popularity"
//! follow the web-server workload characterization literature it cites:
//!
//! - Arlitt & Williamson, *Web server workload characterization* (1996),
//! - Arlitt & Jin, *1998 World Cup workload* (1999): large files are
//!   ~0.3 % of objects, ~54 % of stored bytes, and ~0.1 % of requests,
//! - Barford & Crovella, *Generating representative web workloads* (1998):
//!   heavy-tailed sizes (lognormal body, Pareto tail), Zipf popularity.
//!
//! This crate reproduces those statistical models:
//!
//! - [`zipf::ZipfSampler`] — Zipf-distributed popularity ranks,
//! - [`sizes::SizeModel`] — hybrid lognormal/Pareto file sizes,
//! - [`corpus::CorpusBuilder`] — a synthetic web site matching the cited
//!   invariants (defaults sized to the paper's ~8 700-object site),
//! - [`spec::WorkloadSpec`] — Workload A (all static) and Workload B
//!   (significant CGI/ASP dynamic content),
//! - [`sampler::RequestSampler`] — turns a corpus + spec into a request
//!   stream for the simulator or the live proxy,
//! - [`trace::Trace`] — recorded request streams for replay.
//!
//! # Example
//!
//! ```
//! use cpms_workload::{CorpusBuilder, WorkloadSpec, RequestSampler};
//! use rand::SeedableRng;
//!
//! let corpus = CorpusBuilder::paper_site().seed(7).build();
//! let spec = WorkloadSpec::workload_b();
//! let sampler = RequestSampler::new(&corpus, &spec, 42);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let item = sampler.sample(&corpus, &mut rng);
//! assert!(item.size_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod sampler;
pub mod shapes;
pub mod sizes;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use corpus::{Corpus, CorpusBuilder};
pub use sampler::RequestSampler;
pub use shapes::{Diurnal, FlashCrowd, FlashSpec};
pub use sizes::SizeModel;
pub use spec::{ClassMix, WorkloadSpec};
pub use trace::Trace;
pub use zipf::ZipfSampler;
