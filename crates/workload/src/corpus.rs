//! Synthetic web-site corpus generation.
//!
//! Builds a document tree whose composition matches the workload
//! characterization the paper cites: mostly small HTML and images with
//! heavy-tailed sizes, a sliver of very large multimedia files that
//! dominates storage bytes (World Cup invariant), and — for Workload B
//! experiments — CGI scripts and ASP pages.

use crate::sizes::SizeModel;
use cpms_model::{ContentId, ContentItem, ContentKind, Priority, RequestClass, UrlPath};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Object-count fractions per kind; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindFractions {
    /// Plain HTML pages.
    pub html: f64,
    /// Images.
    pub image: f64,
    /// Other static files.
    pub other: f64,
    /// CGI scripts.
    pub cgi: f64,
    /// ASP pages.
    pub asp: f64,
    /// Large multimedia files (World Cup: ~0.3 % of objects).
    pub video: f64,
}

impl KindFractions {
    /// Defaults modelled on the cited traces: predominantly images and
    /// HTML, ~5 % dynamic scripts, 0.3 % large multimedia.
    pub fn paper_defaults() -> Self {
        KindFractions {
            html: 0.30,
            image: 0.45,
            other: 0.177,
            cgi: 0.04,
            asp: 0.03,
            video: 0.003,
        }
    }

    fn is_valid(&self) -> bool {
        let all = [
            self.html, self.image, self.other, self.cgi, self.asp, self.video,
        ];
        all.iter().all(|f| (0.0..=1.0).contains(f) && f.is_finite())
            && (all.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// A generated web site: the unit the placement policies, the URL table,
/// and the workload sampler all operate on.
///
/// Object ids are dense (`ContentId(0)..ContentId(len-1)`), and within each
/// request class the builder records a popularity order: the id at class
/// rank 0 is that class's hottest object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    items: Vec<ContentItem>,
    /// Ids per request class, hottest first.
    by_class: [(RequestClass, Vec<ContentId>); 4],
}

impl Corpus {
    /// All objects; `items()[id.index()]` is the object with that id.
    pub fn items(&self) -> &[ContentItem] {
        &self.items
    }

    /// The object with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range for this corpus.
    pub fn get(&self, id: ContentId) -> &ContentItem {
        &self.items[id.index()]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total bytes across all objects.
    pub fn total_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.size_bytes()).sum()
    }

    /// Ids of the given request class, hottest (popularity rank 0) first.
    pub fn class_ids(&self, class: RequestClass) -> &[ContentId] {
        &self
            .by_class
            .iter()
            .find(|(c, _)| *c == class)
            .expect("all classes present")
            .1
    }

    /// Iterates `(id, item)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ContentId, &ContentItem)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, item)| (ContentId(i as u32), item))
    }
}

/// Builder for [`Corpus`].
///
/// # Example
///
/// ```
/// use cpms_workload::CorpusBuilder;
///
/// let corpus = CorpusBuilder::paper_site().seed(1).build();
/// assert_eq!(corpus.len(), 8_700);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    total_objects: usize,
    fractions: KindFractions,
    static_sizes: SizeModel,
    dynamic_sizes: SizeModel,
    multimedia_sizes: SizeModel,
    critical_fraction: f64,
    mutable_fraction: f64,
    seed: u64,
}

impl CorpusBuilder {
    /// A corpus the size of the authors' web site: "Our Web site contains
    /// about 8700 Web objects" (§5.2).
    pub fn paper_site() -> Self {
        CorpusBuilder {
            total_objects: 8_700,
            fractions: KindFractions::paper_defaults(),
            static_sizes: SizeModel::static_objects(),
            dynamic_sizes: SizeModel::dynamic_responses(),
            multimedia_sizes: SizeModel::multimedia_objects(),
            critical_fraction: 0.02,
            mutable_fraction: 0.01,
            seed: 0,
        }
    }

    /// A small corpus for tests and examples.
    pub fn small_site() -> Self {
        let mut b = CorpusBuilder::paper_site();
        b.total_objects = 500;
        b
    }

    /// Sets the total object count.
    pub fn total_objects(mut self, n: usize) -> Self {
        self.total_objects = n;
        self
    }

    /// Sets the per-kind object fractions.
    ///
    /// # Panics
    ///
    /// Panics if the fractions do not sum to 1.
    pub fn fractions(mut self, fractions: KindFractions) -> Self {
        assert!(fractions.is_valid(), "kind fractions must sum to 1");
        self.fractions = fractions;
        self
    }

    /// Sets the RNG seed (corpus generation is fully deterministic).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of objects marked [`Priority::Critical`].
    pub fn critical_fraction(mut self, f: f64) -> Self {
        self.critical_fraction = f;
        self
    }

    /// Sets the fraction of objects marked mutable.
    pub fn mutable_fraction(mut self, f: f64) -> Self {
        self.mutable_fraction = f;
        self
    }

    /// Generates the corpus.
    ///
    /// # Panics
    ///
    /// Panics if `total_objects` is 0.
    pub fn build(&self) -> Corpus {
        assert!(
            self.total_objects > 0,
            "corpus must have at least one object"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.total_objects;

        // Integer counts per kind; remainder goes to images (the most
        // numerous kind in the cited traces). Video gets at least one
        // object whenever its fraction is nonzero so the World Cup
        // invariant tests are meaningful at small corpus sizes.
        let count = |f: f64| (f * n as f64).round() as usize;
        let mut n_html = count(self.fractions.html);
        let n_cgi = count(self.fractions.cgi);
        let n_asp = count(self.fractions.asp);
        let n_other = count(self.fractions.other);
        let mut n_video = count(self.fractions.video);
        if n_video == 0 && self.fractions.video > 0.0 {
            n_video = 1;
        }
        let used = n_html + n_cgi + n_asp + n_other + n_video;
        let n_image = if used < n {
            n - used
        } else {
            // over-rounded: shrink html to fit, floor at 0
            let excess = used - n;
            n_html = n_html.saturating_sub(excess);
            n - (n_html + n_cgi + n_asp + n_other + n_video).min(n)
        };

        let mut items: Vec<ContentItem> = Vec::with_capacity(n);
        let push_kind = |items: &mut Vec<ContentItem>,
                         rng: &mut StdRng,
                         kind: ContentKind,
                         count: usize,
                         dir: &str,
                         ext: &str,
                         sizes: &SizeModel| {
            for i in 0..count {
                // Spread files over subdirectories to exercise the
                // multi-level table (depth 3).
                let path: UrlPath = format!("/{dir}/d{}/f{}.{ext}", i % 23, i)
                    .parse()
                    .expect("generated paths are valid");
                let size = sizes.sample(rng);
                items.push(ContentItem::new(path, kind, size));
            }
        };

        push_kind(
            &mut items,
            &mut rng,
            ContentKind::StaticHtml,
            n_html,
            "html",
            "html",
            &self.static_sizes,
        );
        push_kind(
            &mut items,
            &mut rng,
            ContentKind::Image,
            n_image,
            "img",
            "gif",
            &self.static_sizes,
        );
        push_kind(
            &mut items,
            &mut rng,
            ContentKind::OtherStatic,
            n_other,
            "files",
            "dat",
            &self.static_sizes,
        );
        push_kind(
            &mut items,
            &mut rng,
            ContentKind::Cgi,
            n_cgi,
            "cgi-bin",
            "cgi",
            &self.dynamic_sizes,
        );
        push_kind(
            &mut items,
            &mut rng,
            ContentKind::Asp,
            n_asp,
            "asp",
            "asp",
            &self.dynamic_sizes,
        );
        push_kind(
            &mut items,
            &mut rng,
            ContentKind::Video,
            n_video,
            "video",
            "mpg",
            &self.multimedia_sizes,
        );

        // Mark critical / mutable objects deterministically from the front
        // of each kind run (the hottest objects — criticality correlates
        // with importance, per §1.1's "product lists or shopping-related
        // pages").
        let n_critical = (self.critical_fraction * n as f64).round() as usize;
        let n_mutable = (self.mutable_fraction * n as f64).round() as usize;
        for idx in 0..n_critical.min(items.len()) {
            items[idx] = items[idx].clone().with_priority(Priority::Critical);
        }
        for idx in 0..n_mutable.min(items.len()) {
            items[idx] = items[idx].clone().with_mutable(true);
        }

        // Popularity order per class: shuffle ids within each class so
        // popularity is uncorrelated with generation order, then record the
        // permutation. Rank 0 = hottest.
        use rand::seq::SliceRandom;
        let mut by_class: [(RequestClass, Vec<ContentId>); 4] = [
            (RequestClass::Static, Vec::new()),
            (RequestClass::Cgi, Vec::new()),
            (RequestClass::Asp, Vec::new()),
            (RequestClass::Video, Vec::new()),
        ];
        for (i, item) in items.iter().enumerate() {
            let class = RequestClass::from_kind(item.kind());
            by_class
                .iter_mut()
                .find(|(c, _)| *c == class)
                .expect("class present")
                .1
                .push(ContentId(i as u32));
        }
        for (_, ids) in &mut by_class {
            ids.shuffle(&mut rng);
            // Criticality correlates with popularity (§1.1: "product lists
            // or shopping-related pages" are both important and hot): pull
            // the read-mostly critical objects to the hottest ranks,
            // keeping the shuffled order within each band. Mutable objects
            // stay at their shuffled rank — their single copy (§4) should
            // not be a popularity hotspot.
            ids.sort_by_key(|id| {
                let item = &items[id.0 as usize];
                item.priority() != Priority::Critical || item.is_mutable()
            });
        }

        Corpus { items, by_class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_site_has_8700_objects() {
        let c = CorpusBuilder::paper_site().seed(1).build();
        assert_eq!(c.len(), 8_700);
    }

    #[test]
    fn kind_composition_matches_fractions() {
        let c = CorpusBuilder::paper_site().seed(2).build();
        let count = |k: ContentKind| c.items().iter().filter(|i| i.kind() == k).count();
        let n = c.len() as f64;
        assert!((count(ContentKind::StaticHtml) as f64 / n - 0.30).abs() < 0.02);
        assert!((count(ContentKind::Image) as f64 / n - 0.45).abs() < 0.02);
        assert!((count(ContentKind::Cgi) as f64 / n - 0.04).abs() < 0.01);
        assert!((count(ContentKind::Asp) as f64 / n - 0.03).abs() < 0.01);
        // World Cup invariant: large files ≈ 0.3% of objects…
        let video_frac = count(ContentKind::Video) as f64 / n;
        assert!(
            (video_frac - 0.003).abs() < 0.002,
            "video fraction {video_frac}"
        );
    }

    #[test]
    fn world_cup_bytes_invariant() {
        // …but they dominate storage: paper quotes 53.9% of bytes. We allow
        // a generous band since the size models are parameterized.
        let c = CorpusBuilder::paper_site().seed(3).build();
        let video_bytes: u64 = c
            .items()
            .iter()
            .filter(|i| i.kind() == ContentKind::Video)
            .map(|i| i.size_bytes())
            .sum();
        let share = video_bytes as f64 / c.total_bytes() as f64;
        assert!(
            (0.3..0.95).contains(&share),
            "multimedia byte share {share:.3}; expected to dominate storage"
        );
    }

    #[test]
    fn ids_are_dense_and_paths_unique() {
        let c = CorpusBuilder::small_site().seed(4).build();
        let mut paths: Vec<&str> = c.items().iter().map(|i| i.path().as_str()).collect();
        paths.sort_unstable();
        let before = paths.len();
        paths.dedup();
        assert_eq!(before, paths.len(), "all corpus paths are unique");
        for (id, item) in c.iter() {
            assert_eq!(c.get(id), item);
        }
    }

    #[test]
    fn class_ids_partition_the_corpus() {
        let c = CorpusBuilder::small_site().seed(5).build();
        let total: usize = RequestClass::ALL
            .iter()
            .map(|&cl| c.class_ids(cl).len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        assert_eq!(total, c.len());
        for &cl in &RequestClass::ALL {
            for &id in c.class_ids(cl) {
                assert_eq!(RequestClass::from_kind(c.get(id).kind()), cl);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CorpusBuilder::small_site().seed(9).build();
        let b = CorpusBuilder::small_site().seed(9).build();
        assert_eq!(a, b);
        let c = CorpusBuilder::small_site().seed(10).build();
        assert_ne!(a, c, "different seed should give different sizes");
    }

    #[test]
    fn critical_and_mutable_marked() {
        let c = CorpusBuilder::paper_site().seed(6).build();
        let critical = c
            .items()
            .iter()
            .filter(|i| i.priority() == Priority::Critical)
            .count();
        let mutable = c.items().iter().filter(|i| i.is_mutable()).count();
        assert!(critical > 0);
        assert!(mutable > 0);
        assert!((critical as f64 / c.len() as f64 - 0.02).abs() < 0.005);
        assert!((mutable as f64 / c.len() as f64 - 0.01).abs() < 0.005);
    }

    #[test]
    fn small_corpus_still_has_video() {
        let c = CorpusBuilder::small_site().seed(7).build();
        assert!(
            c.items().iter().any(|i| i.kind() == ContentKind::Video),
            "video floor of 1 object"
        );
    }

    #[test]
    fn paths_have_depth_for_multilevel_table() {
        let c = CorpusBuilder::small_site().seed(8).build();
        assert!(c.items().iter().all(|i| i.path().depth() == 3));
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_objects_panics() {
        let _ = CorpusBuilder::small_site().total_objects(0).build();
    }
}
