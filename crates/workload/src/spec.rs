//! Workload specifications: the paper's Workload A and Workload B.
//!
//! §5.1: "We created two workloads that model the Web server workload
//! characterization (e.g., file size, request distribution, file
//! popularity, etc.) published in papers \[9,10,27\]. The first workload
//! (workload A) consists of static content, and the second workload
//! (Workload B) includes a significant amount of dynamic content (e.g. CGI
//! and ASP)."

use cpms_model::RequestClass;
use serde::{Deserialize, Serialize};

/// Request-class shares of a workload; must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Share of requests for static files (HTML, images, other).
    pub static_share: f64,
    /// Share of requests executing CGI scripts.
    pub cgi_share: f64,
    /// Share of requests executing ASP pages.
    pub asp_share: f64,
    /// Share of requests for large multimedia files. The World Cup trace
    /// the paper cites gives large files ~0.1 % of requests.
    pub video_share: f64,
}

impl ClassMix {
    /// The share of the given class.
    pub fn share(&self, class: RequestClass) -> f64 {
        match class {
            RequestClass::Static => self.static_share,
            RequestClass::Cgi => self.cgi_share,
            RequestClass::Asp => self.asp_share,
            RequestClass::Video => self.video_share,
        }
    }

    /// Whether the shares are each in `[0, 1]` and sum to 1 (±1e-9).
    pub fn is_valid(&self) -> bool {
        let shares = [
            self.static_share,
            self.cgi_share,
            self.asp_share,
            self.video_share,
        ];
        shares
            .iter()
            .all(|s| (0.0..=1.0).contains(s) && s.is_finite())
            && (shares.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }
}

/// A complete workload description: class mix plus popularity skew.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name used in reports ("workload-A", …).
    pub name: String,
    /// Request-class shares.
    pub mix: ClassMix,
    /// Zipf skew of object popularity *within* each class. Web traces give
    /// ~0.8 (Almeida et al., the paper's \[8\]).
    pub zipf_alpha: f64,
}

impl WorkloadSpec {
    /// Workload A: static content only (large multimedia files get the
    /// World Cup's ~0.1 % request share; everything else is ordinary static
    /// content).
    pub fn workload_a() -> Self {
        WorkloadSpec {
            name: "workload-A".to_string(),
            mix: ClassMix {
                static_share: 0.999,
                cgi_share: 0.0,
                asp_share: 0.0,
                video_share: 0.001,
            },
            zipf_alpha: 0.8,
        }
    }

    /// Workload B: "a significant amount of dynamic content (e.g. CGI and
    /// ASP)". The paper does not publish exact shares; we default to
    /// 14 % CGI + 10 % ASP, in line with late-90s dynamic-content fractions
    /// used by WebBench's standard dynamic test suites.
    pub fn workload_b() -> Self {
        WorkloadSpec {
            name: "workload-B".to_string(),
            mix: ClassMix {
                static_share: 0.758,
                cgi_share: 0.14,
                asp_share: 0.10,
                video_share: 0.002,
            },
            zipf_alpha: 0.8,
        }
    }

    /// Validates the spec.
    pub fn is_valid(&self) -> bool {
        self.mix.is_valid() && self.zipf_alpha >= 0.0 && self.zipf_alpha.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(WorkloadSpec::workload_a().is_valid());
        assert!(WorkloadSpec::workload_b().is_valid());
    }

    #[test]
    fn workload_a_is_static_only() {
        let a = WorkloadSpec::workload_a();
        assert_eq!(a.mix.cgi_share, 0.0);
        assert_eq!(a.mix.asp_share, 0.0);
        assert!(a.mix.static_share > 0.99);
    }

    #[test]
    fn workload_b_has_significant_dynamic() {
        let b = WorkloadSpec::workload_b();
        assert!(b.mix.cgi_share + b.mix.asp_share > 0.15);
    }

    #[test]
    fn share_accessor() {
        let b = WorkloadSpec::workload_b();
        assert_eq!(b.mix.share(cpms_model::RequestClass::Cgi), b.mix.cgi_share);
        assert_eq!(
            b.mix.share(cpms_model::RequestClass::Static),
            b.mix.static_share
        );
        assert_eq!(
            b.mix.share(cpms_model::RequestClass::Video),
            b.mix.video_share
        );
        assert_eq!(b.mix.share(cpms_model::RequestClass::Asp), b.mix.asp_share);
    }

    #[test]
    fn invalid_mixes_detected() {
        let bad = ClassMix {
            static_share: 0.9,
            cgi_share: 0.3,
            asp_share: 0.0,
            video_share: 0.0,
        };
        assert!(!bad.is_valid());
        let negative = ClassMix {
            static_share: 1.2,
            cgi_share: -0.2,
            asp_share: 0.0,
            video_share: 0.0,
        };
        assert!(!negative.is_valid());
    }
}
