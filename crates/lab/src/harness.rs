//! The lab run itself: bring up a real-process cluster, replay the
//! scenario's request stream through the proxy while firing its fault
//! timeline, scrape every process's metrics surface into one merged
//! timeline, then evaluate the scripted assertions.
//!
//! The pass/fail contract (see [`crate::scenario::AssertionSpec`]):
//!
//! - **zero misrouted requests** — a 200 carrying a *different* object's
//!   body is an unconditional failure, the paper's routing invariant;
//! - **bounded failures** — 502/503/transport errors and corrupt bodies
//!   served while a fault is live must fit `max_failed_requests`;
//! - **anti-entropy convergence** — after the stream ends (and dead
//!   nodes are evicted), `repair` + `audit` must reach a clean audit
//!   within `converge_within_ms`;
//! - **final sweep** — every surviving object then serves its exact
//!   published body;
//! - **generation monotonicity** — the proxy's scraped
//!   `urltable_generation` gauge never goes backwards;
//! - **SLO breach-then-clear** — when `expect_slo_breach` is scripted,
//!   the fault timeline must trip the proxy's in-process SLO watchdog
//!   (`slo_breach_total >= 1` on the scraped timeline) and every
//!   `slo_state_*` verdict gauge must return to Ok after the faults
//!   heal.
//!
//! Each timeline sample carries the process's `/_cpms/metrics.json`
//! *and* `/_cpms/series.json` (flight-recorder) payloads; both are
//! stamped with a per-surface `scrape_seq` and process uptime, so the
//! timeline can be ordered without trusting the scraper's clock.

use crate::process::{spawn_broker, spawn_proxy, BrokerProc, ProxyProc};
use crate::scenario::{FaultAction, Scenario, Shape};
use crate::traces::TraceStore;
use cpms_httpd::client::HttpClient;
use cpms_httpd::{METRICS_JSON_PATH, SERIES_JSON_PATH, TRACE_JSON_PATH};
use cpms_mgmt::admin::AdminClient;
use cpms_model::ContentId;
use cpms_store::{fnv64, hex_encode, synthetic_body};
use cpms_workload::{Diurnal, FlashCrowd, FlashSpec};
use serde_json::Value;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One evaluated assertion.
#[derive(Debug)]
pub struct Check {
    /// Short assertion name.
    pub name: &'static str,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The outcome of a lab run.
#[derive(Debug)]
pub struct LabReport {
    /// Every evaluated assertion, in run order.
    pub checks: Vec<Check>,
    /// Where the merged metrics timeline was written.
    pub timeline_path: Option<PathBuf>,
    /// Where the merged cross-process traces were written.
    pub traces_path: Option<PathBuf>,
}

impl LabReport {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the report as a terminal summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for check in &self.checks {
            let verdict = if check.pass { "PASS" } else { "FAIL" };
            out.push_str(&format!("{verdict}  {:<22} {}\n", check.name, check.detail));
        }
        if let Some(path) = &self.timeline_path {
            out.push_str(&format!("timeline: {}\n", path.display()));
        }
        if let Some(path) = &self.traces_path {
            out.push_str(&format!("traces: {}\n", path.display()));
        }
        out.push_str(if self.passed() {
            "lab: all assertions held\n"
        } else {
            "lab: ASSERTIONS FAILED\n"
        });
        out
    }
}

/// How one workload response was classified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// 200 with the exact published body.
    Ok,
    /// 200 with a *different* object's body — the routing invariant broke.
    Misrouted {
        /// The object that was actually served.
        got: usize,
    },
    /// 200 with bytes matching no published object (live corruption).
    CorruptServed,
    /// 503: the table had no routable location.
    Unroutable,
    /// Any other status (502 backend failure, …).
    Failed {
        /// The HTTP status.
        status: u16,
    },
}

/// Classifies one response against the published catalogue. Pure so it
/// can be unit-tested without a cluster.
pub fn classify(
    expected: usize,
    status: u16,
    body: &[u8],
    hash_to_object: &HashMap<u64, usize>,
) -> Outcome {
    match status {
        200 => match hash_to_object.get(&fnv64(body)) {
            Some(&got) if got == expected => Outcome::Ok,
            Some(&got) => Outcome::Misrouted { got },
            None => Outcome::CorruptServed,
        },
        503 => Outcome::Unroutable,
        other => Outcome::Failed { status: other },
    }
}

/// Returns the first index where the sequence decreases, if any. The
/// generation-monotonicity assertion over scraped gauges.
pub fn first_regression(generations: &[u64]) -> Option<usize> {
    generations
        .windows(2)
        .position(|w| w[1] < w[0])
        .map(|i| i + 1)
}

/// Tallies from the replay phase.
#[derive(Debug, Default)]
struct Tally {
    ok: usize,
    misrouted: usize,
    corrupt: usize,
    unroutable: usize,
    failed: usize,
    transport: usize,
    misroute_details: Vec<String>,
}

impl Tally {
    fn budget_spend(&self) -> usize {
        self.corrupt + self.unroutable + self.failed + self.transport
    }
}

/// One merged-timeline sample: a process's metrics and flight-recorder
/// surfaces at a request index. `scrape_seq`/`uptime_micros` ride
/// inside both payloads, so consumers can order samples per (source,
/// surface) without trusting the lab's wall clock.
#[derive(Debug)]
struct Sample {
    at_request: usize,
    source: String,
    metrics: Value,
    series: Option<Value>,
}

/// Runs a scenario end to end and reports. Spawns one watchdog thread
/// that aborts the whole process (exit code 3) past
/// `wall_clock_cap_ms` — children self-reap via their stdin pipes.
///
/// # Errors
///
/// Infrastructure failures (spawn, handshake, admin transport). Failed
/// *assertions* are not errors; they land in the report.
pub fn run(scenario: &Scenario) -> Result<LabReport, String> {
    let started = Instant::now();
    let finished = Arc::new(AtomicBool::new(false));
    let cap = Duration::from_millis(scenario.assertions.wall_clock_cap_ms);
    {
        let finished = Arc::clone(&finished);
        let name = scenario.name.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + cap;
            while Instant::now() < deadline {
                if finished.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            if !finished.load(Ordering::SeqCst) {
                eprintln!(
                    "cpms-lab: scenario {name:?} blew its {} ms wall-clock cap; aborting",
                    cap.as_millis()
                );
                // Children die with us: their stdin pipes close on exit.
                std::process::exit(3);
            }
        });
    }

    let lab_dir =
        std::env::temp_dir().join(format!("cpms-lab-{}-{}", std::process::id(), scenario.name));
    std::fs::create_dir_all(&lab_dir).map_err(|e| format!("create lab dir: {e}"))?;

    let result = run_inner(scenario, &lab_dir, started);
    finished.store(true, Ordering::SeqCst);
    result
}

fn run_inner(scenario: &Scenario, lab_dir: &Path, started: Instant) -> Result<LabReport, String> {
    // ---- bring-up: real broker and proxy processes -------------------
    let mut brokers: Vec<BrokerProc> = Vec::new();
    for (i, node) in scenario.nodes.iter().enumerate() {
        let store_dir = if node.durable() {
            let dir = lab_dir.join(format!("node{i}"));
            std::fs::create_dir_all(&dir).map_err(|e| format!("create store dir: {e}"))?;
            Some(dir)
        } else {
            None
        };
        brokers.push(spawn_broker(
            i as u16,
            node.disk_mb(),
            store_dir.as_deref(),
        )?);
    }
    let pairs: Vec<(SocketAddr, SocketAddr)> = brokers.iter().map(|b| (b.wire, b.http)).collect();
    let proxy: ProxyProc = spawn_proxy(&pairs)?;
    let mut admin = AdminClient::connect(proxy.admin).map_err(|e| format!("connect admin: {e}"))?;
    eprintln!(
        "cpms-lab: {} broker(s) + proxy up in {} ms",
        brokers.len(),
        started.elapsed().as_millis()
    );

    // ---- publish the object catalogue --------------------------------
    let n_objects = scenario.objects.count;
    let n_nodes = scenario.nodes.len();
    let replicas = scenario.objects.replicas;
    let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(n_objects);
    let mut hash_to_object: HashMap<u64, usize> = HashMap::new();
    for i in 0..n_objects {
        let placement: Vec<String> = (0..replicas)
            .map(|k| ((i + k) % n_nodes).to_string())
            .collect();
        let cmd = format!(
            "publish /obj/{i}.html html {} {}",
            scenario.objects.size_bytes,
            placement.join(",")
        );
        let resp = admin
            .send(&cmd)
            .map_err(|e| format!("admin publish: {e}"))?;
        if !resp.ok || resp.output.starts_with("error:") {
            return Err(format!("publish /obj/{i}.html failed: {}", resp.output));
        }
        // The proxy shell assigns ContentIds sequentially from 0, and
        // the controller ships synthetic bodies — so the expected bytes
        // are reproducible here without any side channel.
        let body = synthetic_body(ContentId(i as u32), scenario.objects.size_bytes);
        hash_to_object.insert(fnv64(&body), i);
        bodies.push(body);
    }
    eprintln!("cpms-lab: published {n_objects} object(s), {replicas} replica(s) each");

    // ---- replay the request stream with the fault timeline -----------
    let mut stream = build_stream(scenario);
    let faults = scenario.faults();
    let mut next_fault = 0usize;
    let mut killed: HashSet<u16> = HashSet::new();
    let mut tally = Tally::default();
    let mut samples: Vec<Sample> = Vec::new();
    let mut generations: Vec<u64> = Vec::new();
    let mut traces = TraceStore::default();
    let scrape_every = (scenario.workload.requests / 16).max(1);
    let mut client = HttpClient::connect(proxy.http).map_err(|e| format!("connect proxy: {e}"))?;

    for r in 0..scenario.workload.requests {
        while next_fault < faults.len() && faults[next_fault].at_request <= r {
            fire_fault(&faults[next_fault], &mut brokers, &mut admin, &mut killed)?;
            next_fault += 1;
        }
        let object = stream.next().expect("streams are infinite");
        let path = format!("/obj/{object}.html");
        match client.get(&path) {
            Ok(resp) => match classify(object, resp.status, &resp.body, &hash_to_object) {
                Outcome::Ok => tally.ok += 1,
                Outcome::Misrouted { got } => {
                    tally.misrouted += 1;
                    if tally.misroute_details.len() < 3 {
                        tally
                            .misroute_details
                            .push(format!("r{r}: wanted /obj/{object}.html, got object {got}"));
                    }
                }
                Outcome::CorruptServed => tally.corrupt += 1,
                Outcome::Unroutable => tally.unroutable += 1,
                Outcome::Failed { .. } => tally.failed += 1,
            },
            Err(_) => {
                tally.transport += 1;
                // The persistent connection may be wedged; start fresh.
                if let Ok(fresh) = HttpClient::connect(proxy.http) {
                    client = fresh;
                }
            }
        }
        if r % scrape_every == 0 || r + 1 == scenario.workload.requests {
            scrape(
                r,
                proxy.http,
                &brokers,
                &killed,
                &mut samples,
                &mut generations,
                &mut traces,
            );
        }
    }
    eprintln!(
        "cpms-lab: replay done — {} ok, {} misrouted, {} corrupt, {} unroutable, {} failed, {} transport",
        tally.ok, tally.misrouted, tally.corrupt, tally.unroutable, tally.failed, tally.transport
    );

    // ---- convergence: evict the dead, repair, audit until clean ------
    for i in 0..n_nodes {
        // Chaos ends with the stream: disarm every link fault so
        // anti-entropy runs over a healthy (if degraded) cluster.
        let _ = admin.send(&format!("heal n{i}"));
    }
    for &node in &killed {
        let resp = admin
            .send(&format!("evict n{node}"))
            .map_err(|e| format!("admin evict: {e}"))?;
        if !resp.ok {
            return Err(format!("evict n{node} failed: {}", resp.output));
        }
        eprintln!("cpms-lab: {}", resp.output);
    }
    let converge_started = Instant::now();
    let deadline = converge_started + Duration::from_millis(scenario.assertions.converge_within_ms);
    let mut converged = false;
    let mut last_audit = String::new();
    while Instant::now() < deadline {
        let _ = admin.send("repair");
        let audit = admin
            .send("audit")
            .map_err(|e| format!("admin audit: {e}"))?;
        last_audit = audit.output.clone();
        if audit.ok {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let converge_ms = converge_started.elapsed().as_millis();
    if let Ok(resp) = admin.send("generation") {
        if let Ok(generation) = resp.output.trim().parse::<u64>() {
            generations.push(generation);
        }
    }

    // ---- SLO watchdog: the breach must clear once chaos stops --------
    // The proxy's default rules watch 2-second error-rate windows, so
    // after the faults are healed and the stream ends, every
    // `slo_state_*` gauge must drain back to Ok. Polled via the admin
    // plane so the verdicts come from the proxy's own watchdog, not
    // from any lab-side re-derivation.
    let mut slo_cleared = false;
    let mut slo_clear_ms = 0u128;
    if scenario.assertions.expect_slo_breach() {
        let clear_started = Instant::now();
        let deadline =
            clear_started + Duration::from_millis(scenario.assertions.converge_within_ms);
        while Instant::now() < deadline {
            if let Ok(resp) = admin.send("metrics") {
                if let Ok(metrics) = serde_json::from_str::<Value>(&resp.output) {
                    let clear = metrics
                        .get("gauges")
                        .and_then(Value::as_object)
                        .is_some_and(|gauges| {
                            gauges
                                .iter()
                                .filter(|(name, _)| name.starts_with("slo_state_"))
                                .all(|(_, state)| state.as_i64() == Some(0))
                        });
                    if clear {
                        slo_cleared = true;
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        slo_clear_ms = clear_started.elapsed().as_millis();
    }

    // ---- final sweep: every surviving object serves exact bytes ------
    let mut sweep_bad: Vec<String> = Vec::new();
    let mut sweep_checked = 0usize;
    let mut sweep = HttpClient::connect(proxy.http).map_err(|e| format!("connect proxy: {e}"))?;
    for (i, body) in bodies.iter().enumerate().take(n_objects) {
        let all_replicas_dead =
            (0..replicas).all(|k| killed.contains(&(((i + k) % n_nodes) as u16)));
        if all_replicas_dead {
            continue; // evicted with its last copy; nothing to assert
        }
        sweep_checked += 1;
        let path = format!("/obj/{i}.html");
        match sweep.get(&path) {
            Ok(resp) if resp.status == 200 && resp.body == *body => {}
            Ok(resp) => sweep_bad.push(format!("{path}: status {} wrong bytes", resp.status)),
            Err(e) => sweep_bad.push(format!("{path}: {e}")),
        }
    }
    scrape(
        scenario.workload.requests,
        proxy.http,
        &brokers,
        &killed,
        &mut samples,
        &mut generations,
        &mut traces,
    );

    // ---- write the merged timeline and evaluate assertions -----------
    let timeline_path = lab_dir.join("timeline.json");
    let timeline = Value::Array(
        samples
            .iter()
            .map(|s| {
                serde_json::json!({
                    "at_request": s.at_request,
                    "source": s.source,
                    "metrics": s.metrics,
                    "series": s.series.clone().unwrap_or(Value::Null),
                })
            })
            .collect(),
    );
    let timeline_written = serde_json::to_string_pretty(&timeline)
        .ok()
        .and_then(|text| std::fs::write(&timeline_path, text).ok())
        .is_some();
    let traces_path = lab_dir.join("traces.json");
    let traces_written = serde_json::to_string_pretty(&traces.to_json())
        .ok()
        .and_then(|text| std::fs::write(&traces_path, text).ok())
        .is_some();
    let summaries = traces.analyze();

    let budget = scenario.assertions.max_failed_requests;
    let mut checks = vec![
        Check {
            name: "zero-misrouted",
            pass: tally.misrouted == 0,
            detail: if tally.misrouted == 0 {
                format!("{} requests, none misrouted", scenario.workload.requests)
            } else {
                format!(
                    "{} misrouted: {}",
                    tally.misrouted,
                    tally.misroute_details.join("; ")
                )
            },
        },
        Check {
            name: "failure-budget",
            pass: tally.budget_spend() <= budget,
            detail: format!(
                "{} failed ({} corrupt, {} unroutable, {} failed, {} transport) vs budget {budget}",
                tally.budget_spend(),
                tally.corrupt,
                tally.unroutable,
                tally.failed,
                tally.transport
            ),
        },
        Check {
            name: "anti-entropy-converges",
            pass: converged,
            detail: if converged {
                format!("clean audit after {converge_ms} ms")
            } else {
                format!(
                    "no clean audit within {} ms; last: {}",
                    scenario.assertions.converge_within_ms,
                    last_audit.lines().next().unwrap_or("(empty)")
                )
            },
        },
        Check {
            name: "final-sweep-exact",
            pass: sweep_bad.is_empty(),
            detail: if sweep_bad.is_empty() {
                format!("{sweep_checked} object(s) serve exact published bytes")
            } else {
                sweep_bad.join("; ")
            },
        },
    ];
    let regression = first_regression(&generations);
    checks.push(Check {
        name: "generation-monotone",
        pass: regression.is_none(),
        detail: match regression {
            None => format!(
                "{} samples, {} → {}",
                generations.len(),
                generations.first().copied().unwrap_or(0),
                generations.last().copied().unwrap_or(0)
            ),
            Some(i) => format!(
                "regressed at sample {i}: {} after {}",
                generations[i],
                generations[i - 1]
            ),
        },
    });
    checks.push(Check {
        name: "timeline-captured",
        pass: timeline_written && samples.iter().any(|s| s.source == "proxy"),
        detail: format!("{} sample(s) from proxy + origins", samples.len()),
    });
    // Tracing assertions over the merged span store. Orphans (a span
    // whose parent appears in no process's dump) mean a propagation hop
    // broke; the cross-process floor proves context actually rode the
    // wire and HTTP hops instead of each process rooting its own traces.
    let orphan_traces: Vec<&crate::traces::TraceSummary> =
        summaries.iter().filter(|s| s.orphans > 0).collect();
    checks.push(Check {
        name: "trace-no-orphans",
        pass: orphan_traces.is_empty(),
        detail: if orphan_traces.is_empty() {
            format!(
                "{} trace(s), {} span(s), every parent resolved",
                summaries.len(),
                traces.len()
            )
        } else {
            format!(
                "{} trace(s) with orphan spans, e.g. {}",
                orphan_traces.len(),
                orphan_traces[0].trace
            )
        },
    });
    let min_processes = scenario.assertions.min_trace_processes();
    let widest = summaries.first();
    let widest_count = widest.map_or(0, |s| s.processes.len());
    checks.push(Check {
        name: "trace-cross-process",
        pass: widest_count >= min_processes,
        detail: match widest {
            Some(s) if s.processes.len() >= min_processes => format!(
                "{} ({} span(s)) crossed {} process(es): {}",
                s.root_name.as_deref().unwrap_or("?"),
                s.span_count,
                s.processes.len(),
                s.processes.iter().cloned().collect::<Vec<_>>().join(", ")
            ),
            _ => format!("widest trace crossed {widest_count} < {min_processes} process(es)"),
        },
    });
    // SLO breach-then-clear: the scripted fault must have tripped the
    // proxy watchdog (the cumulative `slo_breach_total` counter is
    // immune to scrape timing), and the verdict gauges must have
    // drained back to Ok once the cluster was healthy again.
    if scenario.assertions.expect_slo_breach() {
        let breach_fired = samples.iter().any(|s| {
            s.source == "proxy"
                && s.metrics
                    .get("counters")
                    .and_then(|c| c.get("slo_breach_total"))
                    .and_then(Value::as_u64)
                    .is_some_and(|n| n >= 1)
        });
        checks.push(Check {
            name: "slo-breach-then-clear",
            pass: breach_fired && slo_cleared,
            detail: match (breach_fired, slo_cleared) {
                (true, true) => {
                    format!("breach fired under fault, cleared {slo_clear_ms} ms after heal")
                }
                (false, _) => "no sample ever showed slo_breach_total >= 1".to_string(),
                (true, false) => format!(
                    "breach fired but slo_state_* gauges never cleared within {} ms",
                    scenario.assertions.converge_within_ms
                ),
            },
        });
    }

    // Graceful teardown; Drop impls are the backstop.
    let _ = admin.send("shutdown");
    drop(admin);
    let mut proxy = proxy;
    proxy.proc.shutdown();
    for broker in &mut brokers {
        broker.proc.shutdown();
    }

    Ok(LabReport {
        checks,
        timeline_path: timeline_written.then_some(timeline_path),
        traces_path: traces_written.then_some(traces_path),
    })
}

/// Builds the scenario's (infinite) object-index stream.
fn build_stream(scenario: &Scenario) -> Box<dyn Iterator<Item = usize>> {
    let n = scenario.objects.count;
    let alpha = scenario.workload.alpha;
    let seed = scenario.seed;
    match scenario.workload.resolve().expect("scenario was validated") {
        Shape::Zipf => {
            // A FlashCrowd with an empty burst window *is* plain Zipf,
            // and owns its RNG — no separate sampler plumbing needed.
            let flat = FlashSpec {
                burst_start: 0,
                burst_len: 0,
                hot_set: 1,
                boost: 0.0,
            };
            Box::new(FlashCrowd::new(n, alpha, seed, flat))
        }
        Shape::FlashCrowd(spec) => Box::new(FlashCrowd::new(n, alpha, seed, spec)),
        Shape::Diurnal { period, shift } => Box::new(Diurnal::new(n, alpha, seed, period, shift)),
    }
}

/// Fires one fault against the live cluster.
fn fire_fault(
    fault: &crate::scenario::FaultSpec,
    brokers: &mut [BrokerProc],
    admin: &mut AdminClient,
    killed: &mut HashSet<u16>,
) -> Result<(), String> {
    let node = fault.node;
    let action = fault.resolve().expect("scenario was validated");
    eprintln!(
        "cpms-lab: fault @r{}: {} n{node}",
        fault.at_request, fault.action
    );
    match action {
        FaultAction::Kill => {
            brokers[usize::from(node)].proc.kill();
            killed.insert(node);
            Ok(())
        }
        FaultAction::WireLoss(rate) => admin_fault(admin, &format!("fault n{node} loss {rate}")),
        FaultAction::WirePoison => admin_fault(admin, &format!("fault n{node} poison")),
        FaultAction::Partition => admin_fault(admin, &format!("partition n{node}")),
        FaultAction::Heal => admin_fault(admin, &format!("heal n{node}")),
        FaultAction::CorruptObject(object) => {
            let broker = &brokers[usize::from(node)];
            let dir = broker
                .store_dir
                .as_ref()
                .expect("scenario validation requires a durable node");
            let path = format!("/obj/{object}.html");
            let file = dir.join("objects").join(hex_encode(path.as_bytes()));
            let mut bytes =
                std::fs::read(&file).map_err(|e| format!("corrupt {}: {e}", file.display()))?;
            if bytes.is_empty() {
                bytes.push(0xEE); // match corrupt_for_test's empty-body rule
            } else {
                bytes[0] ^= 0xFF; // same length, different checksum
            }
            std::fs::write(&file, bytes).map_err(|e| format!("corrupt {}: {e}", file.display()))
        }
    }
}

fn admin_fault(admin: &mut AdminClient, cmd: &str) -> Result<(), String> {
    let resp = admin.send(cmd).map_err(|e| format!("admin {cmd:?}: {e}"))?;
    if resp.ok {
        Ok(())
    } else {
        Err(format!("admin {cmd:?} rejected: {}", resp.output))
    }
}

/// Scrapes `/_cpms/metrics.json` from the proxy and every live origin
/// into the merged timeline, recording the proxy's URL-table generation
/// gauge for the monotonicity assertion — and `/_cpms/trace.json` from
/// the same endpoints into the merged trace store. Scraping mid-run (not
/// just at the end) matters for traces: spans scraped before a `kill`
/// fault survive the process they were recorded in.
fn scrape(
    at_request: usize,
    proxy_http: SocketAddr,
    brokers: &[BrokerProc],
    killed: &HashSet<u16>,
    samples: &mut Vec<Sample>,
    generations: &mut Vec<u64>,
    traces: &mut TraceStore,
) {
    let fetch_json = |addr: SocketAddr, path: &str| -> Option<Value> {
        let mut client = HttpClient::connect(addr).ok()?;
        let resp = client.get(path).ok()?;
        if resp.status != 200 {
            return None;
        }
        let body = String::from_utf8(resp.body).ok()?;
        serde_json::from_str(&body).ok()
    };
    let mut grab = |source: String, addr: SocketAddr| -> Option<Value> {
        if let Some(dump) = fetch_json(addr, TRACE_JSON_PATH) {
            traces.absorb(&dump);
        }
        let series = fetch_json(addr, SERIES_JSON_PATH);
        let metrics = fetch_json(addr, METRICS_JSON_PATH)?;
        samples.push(Sample {
            at_request,
            source,
            metrics: metrics.clone(),
            series,
        });
        Some(metrics)
    };
    if let Some(metrics) = grab("proxy".to_string(), proxy_http) {
        if let Some(generation) = metrics
            .get("gauges")
            .and_then(|g| g.get("urltable_generation"))
            .and_then(Value::as_u64)
        {
            generations.push(generation);
        }
    }
    for (i, broker) in brokers.iter().enumerate() {
        if killed.contains(&(i as u16)) {
            continue;
        }
        let _ = grab(format!("origin-n{i}"), broker.http);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_bodies_not_statuses() {
        let a = synthetic_body(ContentId(0), 64);
        let b = synthetic_body(ContentId(1), 64);
        let map: HashMap<u64, usize> = [(fnv64(&a), 0), (fnv64(&b), 1)].into();
        assert_eq!(classify(0, 200, &a, &map), Outcome::Ok);
        assert_eq!(classify(0, 200, &b, &map), Outcome::Misrouted { got: 1 });
        assert_eq!(classify(0, 200, b"garbage", &map), Outcome::CorruptServed);
        assert_eq!(classify(0, 503, &a, &map), Outcome::Unroutable);
        assert_eq!(classify(0, 502, &a, &map), Outcome::Failed { status: 502 });
    }

    #[test]
    fn generation_regressions_are_located() {
        assert_eq!(first_regression(&[]), None);
        assert_eq!(first_regression(&[1, 1, 2, 5]), None);
        assert_eq!(first_regression(&[1, 3, 2]), Some(2));
    }

    #[test]
    fn report_renders_both_verdicts() {
        let report = LabReport {
            checks: vec![
                Check {
                    name: "zero-misrouted",
                    pass: true,
                    detail: "ok".into(),
                },
                Check {
                    name: "failure-budget",
                    pass: false,
                    detail: "over".into(),
                },
            ],
            timeline_path: None,
            traces_path: None,
        };
        assert!(!report.passed());
        let text = report.render();
        assert!(text.contains("PASS  zero-misrouted"));
        assert!(text.contains("FAIL  failure-budget"));
        assert!(text.contains("ASSERTIONS FAILED"));
    }
}
