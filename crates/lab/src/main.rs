//! CLI entry point for the cluster lab.
//!
//! Usage:
//!   cpms-lab <SCENARIO.json>   run a scenario file
//!   cpms-lab --smoke           run the built-in 5-process CI smoke
//!
//! Exit codes: 0 all assertions held, 1 assertions failed, 2 usage or
//! infrastructure error, 3 wall-clock cap exceeded (watchdog abort).

use cpms_lab::Scenario;

/// The CI smoke scenario, baked in so CI needs no working-directory
/// assumptions beyond the built binaries.
const SMOKE: &str = include_str!("../../../configs/lab_smoke.json");

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = match args.first().map(String::as_str) {
        Some("--smoke") => Scenario::from_json(SMOKE),
        Some(path) if !path.starts_with('-') => Scenario::load(std::path::Path::new(path)),
        _ => {
            eprintln!("usage: cpms-lab <SCENARIO.json> | cpms-lab --smoke");
            std::process::exit(2);
        }
    };
    let scenario = match scenario {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cpms-lab: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "cpms-lab: scenario {:?} — {} node(s), {} object(s), {} request(s)",
        scenario.name,
        scenario.nodes.len(),
        scenario.objects.count,
        scenario.workload.requests
    );
    match cpms_lab::run(&scenario) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.passed() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("cpms-lab: infrastructure failure: {e}");
            std::process::exit(2);
        }
    }
}
