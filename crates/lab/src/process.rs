//! Child-process supervision: the lab spawns real `cpms-broker` and
//! `cpms-proxy` binaries (no in-process shortcuts) and owns their
//! stdin/stdout pipes. The lifecycle contract is the daemons' stdin-EOF
//! rule: a child exits when its stdin pipe closes, so children can never
//! outlive the lab — even if the lab aborts via `std::process::exit`,
//! the OS closes the pipes and the cluster reaps itself.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

/// How long a graceful shutdown (stdin EOF) may take before SIGKILL.
const REAP_DEADLINE: Duration = Duration::from_secs(3);

/// A supervised child process with piped stdin/stdout.
#[derive(Debug)]
pub struct ChildProc {
    name: String,
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: Option<BufReader<ChildStdout>>,
}

impl ChildProc {
    /// Spawns `bin args...` with piped stdin/stdout; stderr passes
    /// through to the lab's stderr so child diagnostics stay visible.
    ///
    /// # Errors
    ///
    /// Spawn failures (missing binary, exec errors).
    pub fn spawn(name: &str, bin: &Path, args: &[String]) -> Result<ChildProc, String> {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn {name} ({}): {e}", bin.display()))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().map(BufReader::new);
        Ok(ChildProc {
            name: name.to_string(),
            child,
            stdin,
            stdout,
        })
    }

    /// The supervision name this child was spawned under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reads one header line from the child's stdout (blocking; the
    /// lab's watchdog bounds the wait).
    ///
    /// # Errors
    ///
    /// EOF (the child died before announcing itself) or I/O failures.
    pub fn read_line(&mut self) -> Result<String, String> {
        let reader = self
            .stdout
            .as_mut()
            .ok_or_else(|| format!("{}: stdout already closed", self.name))?;
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => Err(format!("{}: exited before printing its header", self.name)),
            Ok(_) => Ok(line.trim().to_string()),
            Err(e) => Err(format!("{}: read header: {e}", self.name)),
        }
    }

    /// SIGKILLs the child immediately — the lab's `kill` fault. Reaps
    /// the zombie.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.stdin = None;
        self.stdout = None;
    }

    /// Whether the child is still running.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Graceful shutdown: close stdin (the daemons' EOF exit signal),
    /// wait up to [`REAP_DEADLINE`], then SIGKILL as a backstop.
    pub fn shutdown(&mut self) {
        self.stdin = None; // dropping the pipe delivers EOF
        let deadline = Instant::now() + REAP_DEADLINE;
        while Instant::now() < deadline {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(_) => break,
            }
        }
        self.kill();
    }
}

impl Drop for ChildProc {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Locates a sibling binary (`cpms-broker`, `cpms-proxy`) next to the
/// running executable in the cargo target directory.
///
/// # Errors
///
/// When the current executable's directory cannot be resolved.
pub fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut dir = exe
        .parent()
        .ok_or("current_exe has no parent directory")?
        .to_path_buf();
    // Test binaries live one level down in target/<profile>/deps.
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join(name);
    if candidate.exists() {
        Ok(candidate)
    } else {
        Err(format!(
            "{name} not found at {} — build the workspace binaries first",
            candidate.display()
        ))
    }
}

/// A running `cpms-broker --http` child and its announced endpoints.
#[derive(Debug)]
pub struct BrokerProc {
    /// The supervised process.
    pub proc: ChildProc,
    /// Wire (management RPC) endpoint.
    pub wire: SocketAddr,
    /// Co-located origin HTTP endpoint.
    pub http: SocketAddr,
    /// Durable store root, when the node runs `--store`.
    pub store_dir: Option<PathBuf>,
}

/// Spawns one backend node: `cpms-broker 127.0.0.1:0 <node> <disk_mb>
/// [--store DIR] --http`, health-checked by parsing both header lines.
///
/// # Errors
///
/// Spawn failures or a malformed startup handshake.
pub fn spawn_broker(
    node: u16,
    disk_mb: u64,
    store_dir: Option<&Path>,
) -> Result<BrokerProc, String> {
    let bin = sibling_binary("cpms-broker")?;
    let mut args = vec![
        "127.0.0.1:0".to_string(),
        node.to_string(),
        disk_mb.to_string(),
    ];
    if let Some(dir) = store_dir {
        args.push("--store".to_string());
        args.push(dir.display().to_string());
    }
    args.push("--http".to_string());
    let name = format!("broker-n{node}");
    let mut proc = ChildProc::spawn(&name, &bin, &args)?;
    let wire: SocketAddr = proc
        .read_line()?
        .parse()
        .map_err(|e| format!("{name}: bad wire address: {e}"))?;
    let http_line = proc.read_line()?;
    let http: SocketAddr = http_line
        .strip_prefix("http ")
        .ok_or_else(|| format!("{name}: expected `http <addr>`, got {http_line:?}"))?
        .parse()
        .map_err(|e| format!("{name}: bad http address: {e}"))?;
    Ok(BrokerProc {
        proc,
        wire,
        http,
        store_dir: store_dir.map(Path::to_path_buf),
    })
}

/// A running `cpms-proxy` child and its announced endpoints.
#[derive(Debug)]
pub struct ProxyProc {
    /// The supervised process.
    pub proc: ChildProc,
    /// Client-facing HTTP endpoint (the distributor).
    pub http: SocketAddr,
    /// ND-JSON admin endpoint.
    pub admin: SocketAddr,
}

/// Spawns the front end: `cpms-proxy --admin 127.0.0.1:0 <WIRE,HTTP>...`,
/// health-checked by parsing the JSON ready line.
///
/// # Errors
///
/// Spawn failures or a malformed ready line.
pub fn spawn_proxy(backends: &[(SocketAddr, SocketAddr)]) -> Result<ProxyProc, String> {
    let bin = sibling_binary("cpms-proxy")?;
    let mut args = vec!["--admin".to_string(), "127.0.0.1:0".to_string()];
    args.extend(backends.iter().map(|(wire, http)| format!("{wire},{http}")));
    let mut proc = ChildProc::spawn("proxy", &bin, &args)?;
    let ready = proc.read_line()?;
    let parsed: serde_json::Value =
        serde_json::from_str(&ready).map_err(|e| format!("proxy: bad ready line: {e}"))?;
    let addr_field = |key: &str| -> Result<SocketAddr, String> {
        parsed
            .get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("proxy ready line missing {key:?}"))?
            .parse()
            .map_err(|e| format!("proxy: bad {key} address: {e}"))
    };
    Ok(ProxyProc {
        proc,
        http: addr_field("proxy")?,
        admin: addr_field("admin")?,
    })
}
