//! Declarative scenario files: the lab's entire run — topology, object
//! catalogue, workload shape, fault timeline, and pass/fail budgets — is
//! one JSON document, so a new chaos experiment is a config edit, not a
//! code change (the same philosophy as `configs/paper_testbed.json`).
//!
//! Optional knobs are `Option` fields: the vendored serde derive maps a
//! missing key to `None`, and the accessors below supply the defaults.

use cpms_workload::FlashSpec;
use serde::Deserialize;

/// A whole lab run, parsed from a scenario JSON file.
#[derive(Debug, Clone, Deserialize)]
pub struct Scenario {
    /// Scenario name, used for the lab's scratch directory and report.
    pub name: String,
    /// Master seed: the workload stream is deterministic per seed.
    pub seed: u64,
    /// One entry per backend node; each becomes a `cpms-broker` process.
    pub nodes: Vec<NodeSpec>,
    /// The object catalogue published before traffic starts.
    pub objects: ObjectSpec,
    /// The request stream replayed through the proxy.
    pub workload: WorkloadSpec,
    /// Faults injected at specific request indices (empty if absent).
    pub faults: Option<Vec<FaultSpec>>,
    /// Pass/fail budgets evaluated over the merged timeline.
    pub assertions: AssertionSpec,
}

/// One backend node: a `cpms-broker --http` child process.
#[derive(Debug, Clone, Deserialize)]
pub struct NodeSpec {
    /// Broker disk capacity in MB (default 64).
    pub disk_mb: Option<u64>,
    /// Run with `--store DIR` (durable on-disk content). Required for
    /// `corrupt_object` faults against this node. Default false.
    pub durable: Option<bool>,
}

impl NodeSpec {
    /// Disk capacity in MB.
    pub fn disk_mb(&self) -> u64 {
        self.disk_mb.unwrap_or(64)
    }

    /// Whether the broker keeps a durable on-disk store.
    pub fn durable(&self) -> bool {
        self.durable.unwrap_or(false)
    }
}

/// The object catalogue: `count` objects `/obj/<i>.html`, each
/// `size_bytes` long, placed on `replicas` nodes round-robin.
#[derive(Debug, Clone, Deserialize)]
pub struct ObjectSpec {
    /// Number of objects published.
    pub count: usize,
    /// Size of each object's synthetic body.
    pub size_bytes: u64,
    /// Copies per object (placed round-robin across nodes).
    pub replicas: usize,
}

/// The request stream: a Zipf base, optionally time-shaped.
#[derive(Debug, Clone, Deserialize)]
pub struct WorkloadSpec {
    /// `"zipf"`, `"flash_crowd"`, or `"diurnal"`.
    pub shape: String,
    /// Total requests replayed through the proxy.
    pub requests: usize,
    /// Zipf skew of the base popularity distribution.
    pub alpha: f64,
    /// Flash crowd: request index where the burst begins (default 0).
    pub burst_start: Option<usize>,
    /// Flash crowd: burst duration in requests (default `requests / 4`).
    pub burst_len: Option<usize>,
    /// Flash crowd: size of the hot set (default 1).
    pub hot_set: Option<usize>,
    /// Flash crowd: in-burst probability of hitting the hot set
    /// (default 0.8).
    pub boost: Option<f64>,
    /// Diurnal: requests per phase (default `requests / 4`).
    pub period: Option<usize>,
    /// Diurnal: objects the hot set rotates by each phase (default 1).
    pub shift: Option<usize>,
}

/// A validated workload shape, ready to build a generator from.
#[derive(Debug, Clone, Copy)]
pub enum Shape {
    /// Stationary Zipf popularity.
    Zipf,
    /// Zipf with a flash-crowd window.
    FlashCrowd(FlashSpec),
    /// Zipf whose hot set rotates every `period` requests by `shift`.
    Diurnal {
        /// Requests per phase.
        period: usize,
        /// Rotation distance per phase.
        shift: usize,
    },
}

impl WorkloadSpec {
    /// Resolves the shape string plus optional knobs into a [`Shape`].
    ///
    /// # Errors
    ///
    /// Unknown shape names.
    pub fn resolve(&self) -> Result<Shape, String> {
        match self.shape.as_str() {
            "zipf" => Ok(Shape::Zipf),
            "flash_crowd" => Ok(Shape::FlashCrowd(FlashSpec {
                burst_start: self.burst_start.unwrap_or(0),
                burst_len: self.burst_len.unwrap_or(self.requests / 4),
                hot_set: self.hot_set.unwrap_or(1),
                boost: self.boost.unwrap_or(0.8),
            })),
            "diurnal" => Ok(Shape::Diurnal {
                period: self.period.unwrap_or_else(|| (self.requests / 4).max(1)),
                shift: self.shift.unwrap_or(1),
            }),
            other => Err(format!(
                "unknown workload shape {other:?} (use zipf, flash_crowd, or diurnal)"
            )),
        }
    }
}

/// One fault on the timeline, fired just before request `at_request`.
#[derive(Debug, Clone, Deserialize)]
pub struct FaultSpec {
    /// Request index the fault fires before.
    pub at_request: usize,
    /// `"kill"`, `"wire_loss"`, `"wire_poison"`, `"partition"`,
    /// `"heal"`, or `"corrupt_object"`.
    pub action: String,
    /// Target node.
    pub node: u16,
    /// `wire_loss`: frame loss rate in `[0, 1]`.
    pub rate: Option<f64>,
    /// `corrupt_object`: index of the object to flip a byte in.
    pub object: Option<usize>,
}

/// A validated fault action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// SIGKILL the node's broker process.
    Kill,
    /// Arm frame loss on the controller's link to the node.
    WireLoss(f64),
    /// Arm frame truncation on the controller's link to the node.
    WirePoison,
    /// Cut the controller's link to the node entirely.
    Partition,
    /// Disarm faults and reconnect the node's link.
    Heal,
    /// Flip one byte of an object file in the node's durable store.
    CorruptObject(usize),
}

impl FaultSpec {
    /// Resolves the action string plus optional knobs.
    ///
    /// # Errors
    ///
    /// Unknown actions or missing required knobs.
    pub fn resolve(&self) -> Result<FaultAction, String> {
        match self.action.as_str() {
            "kill" => Ok(FaultAction::Kill),
            "wire_loss" => Ok(FaultAction::WireLoss(
                self.rate.ok_or("wire_loss needs a `rate`")?,
            )),
            "wire_poison" => Ok(FaultAction::WirePoison),
            "partition" => Ok(FaultAction::Partition),
            "heal" => Ok(FaultAction::Heal),
            "corrupt_object" => Ok(FaultAction::CorruptObject(
                self.object.ok_or("corrupt_object needs an `object`")?,
            )),
            other => Err(format!("unknown fault action {other:?}")),
        }
    }
}

/// Scripted pass/fail budgets. Misrouted requests (a 200 carrying a
/// *different* object's body) are always zero-tolerance — that is the
/// paper's correctness invariant — so they have no budget knob.
#[derive(Debug, Clone, Deserialize)]
pub struct AssertionSpec {
    /// Failed-request budget: 502/503/transport errors plus corrupt
    /// bodies served while a fault is live.
    pub max_failed_requests: usize,
    /// Anti-entropy must reach a clean audit within this long after the
    /// request stream ends.
    pub converge_within_ms: u64,
    /// Hard cap on the whole run; the watchdog aborts past it.
    pub wall_clock_cap_ms: u64,
    /// At least one merged trace must span this many distinct processes
    /// (default 2: the proxy plus one backend).
    pub min_trace_processes: Option<usize>,
    /// When true, the fault timeline must drive the proxy's SLO
    /// watchdog into breach (`slo_breach_total >= 1` somewhere on the
    /// timeline) *and* every `slo_state_*` gauge must return to Ok
    /// after anti-entropy convergence. Default false.
    pub expect_slo_breach: Option<bool>,
}

impl AssertionSpec {
    /// Cross-process floor for the `trace-cross-process` assertion.
    pub fn min_trace_processes(&self) -> usize {
        self.min_trace_processes.unwrap_or(2)
    }

    /// Whether the scenario scripts an SLO breach-then-clear check.
    pub fn expect_slo_breach(&self) -> bool {
        self.expect_slo_breach.unwrap_or(false)
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Malformed JSON, missing required fields, or invalid shape/fault
    /// specs.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        let scenario: Scenario =
            serde_json::from_str(text).map_err(|e| format!("scenario parse: {e}"))?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Loads and validates a scenario file.
    ///
    /// # Errors
    ///
    /// I/O failures or anything [`Scenario::from_json`] rejects.
    pub fn load(path: &std::path::Path) -> Result<Scenario, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Scenario::from_json(&text)
    }

    /// The fault timeline, sorted by firing index (empty when absent).
    pub fn faults(&self) -> Vec<FaultSpec> {
        let mut faults = self.faults.clone().unwrap_or_default();
        faults.sort_by_key(|f| f.at_request);
        faults
    }

    /// Cross-field validation beyond what deserialization enforces.
    fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("scenario needs at least one node".into());
        }
        if self.objects.count == 0 {
            return Err("scenario needs at least one object".into());
        }
        if self.objects.replicas == 0 || self.objects.replicas > self.nodes.len() {
            return Err(format!(
                "replicas must be in 1..={} (got {})",
                self.nodes.len(),
                self.objects.replicas
            ));
        }
        self.workload.resolve()?;
        for fault in self.faults.as_deref().unwrap_or(&[]) {
            let action = fault.resolve()?;
            let node = usize::from(fault.node);
            if node >= self.nodes.len() {
                return Err(format!("fault targets unknown node n{node}"));
            }
            if let FaultAction::CorruptObject(obj) = action {
                if !self.nodes[node].durable() {
                    return Err(format!("corrupt_object needs node n{node} to be durable"));
                }
                if obj >= self.objects.count {
                    return Err(format!("corrupt_object targets unknown object {obj}"));
                }
                // The lab places object i on nodes (i + k) % n round-robin;
                // corrupting a file the node does not host is a scenario bug.
                let hosted =
                    (0..self.objects.replicas).any(|k| (obj + k) % self.nodes.len() == node);
                if !hosted {
                    return Err(format!(
                        "corrupt_object: object {obj} is not placed on node n{node}"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{
            "name": "t",
            "seed": 1,
            "nodes": [{}, {"disk_mb": 32, "durable": true}],
            "objects": {"count": 4, "size_bytes": 256, "replicas": 2},
            "workload": {"shape": "zipf", "requests": 10, "alpha": 0.8},
            "assertions": {
                "max_failed_requests": 0,
                "converge_within_ms": 1000,
                "wall_clock_cap_ms": 5000
            }
        }"#
        .to_string()
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::from_json(&minimal()).expect("minimal scenario");
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.nodes[0].disk_mb(), 64, "default disk");
        assert!(!s.nodes[0].durable(), "default in-memory");
        assert!(s.nodes[1].durable());
        assert!(s.faults().is_empty());
        assert!(matches!(s.workload.resolve(), Ok(Shape::Zipf)));
        assert!(!s.assertions.expect_slo_breach(), "default no SLO check");
    }

    #[test]
    fn expect_slo_breach_parses_when_present() {
        let text = minimal().replace(
            "\"max_failed_requests\": 0,",
            "\"max_failed_requests\": 0,\n\"expect_slo_breach\": true,",
        );
        let s = Scenario::from_json(&text).expect("scenario with SLO check");
        assert!(s.assertions.expect_slo_breach());
    }

    #[test]
    fn faults_are_validated_and_sorted() {
        let text = minimal().replace(
            "\"assertions\"",
            r#""faults": [
                {"at_request": 9, "action": "heal", "node": 0},
                {"at_request": 2, "action": "corrupt_object", "node": 1, "object": 3},
                {"at_request": 5, "action": "wire_loss", "node": 0, "rate": 0.2}
            ],
            "assertions""#,
        );
        let s = Scenario::from_json(&text).expect("faulted scenario");
        let order: Vec<usize> = s.faults().iter().map(|f| f.at_request).collect();
        assert_eq!(order, vec![2, 5, 9]);
        assert_eq!(
            s.faults()[0].resolve().expect("valid action"),
            FaultAction::CorruptObject(3)
        );
    }

    #[test]
    fn bad_scenarios_are_rejected() {
        let too_many_replicas = minimal().replace("\"replicas\": 2", "\"replicas\": 3");
        assert!(Scenario::from_json(&too_many_replicas)
            .unwrap_err()
            .contains("replicas"));

        let unknown_shape = minimal().replace("\"zipf\"", "\"sawtooth\"");
        assert!(Scenario::from_json(&unknown_shape)
            .unwrap_err()
            .contains("sawtooth"));

        // corrupt_object against the in-memory node 0 is impossible.
        let corrupt_memory = minimal().replace(
            "\"assertions\"",
            r#""faults": [
                {"at_request": 1, "action": "corrupt_object", "node": 0, "object": 0}
            ],
            "assertions""#,
        );
        assert!(Scenario::from_json(&corrupt_memory)
            .unwrap_err()
            .contains("durable"));
    }
}
