//! `cpms-lab`: a real-process cluster lab for the content placement and
//! management system.
//!
//! Where `tests/proxy_live.rs` exercises the stack in one address
//! space, the lab reproduces the paper's actual deployment shape: a
//! scenario file declares a topology of `cpms-broker --http` backend
//! processes and a `cpms-proxy` front end, the lab spawns them as real
//! child processes, replays a trace-shaped workload through the proxy
//! while injecting faults (SIGKILL, wire loss/poison, partitions,
//! on-disk corruption), scrapes every process's metrics surface into a
//! merged timeline, and evaluates scripted assertions — zero misrouted
//! requests, bounded failures, anti-entropy convergence within a
//! deadline, byte-exact content after repair, and a monotone URL-table
//! generation. Every process's span dump (`/_cpms/trace.json`) is
//! scraped alongside the metrics and merged into cross-process trace
//! trees with per-trace critical paths (`traces.json`), with two more
//! assertions: no orphan spans, and at least one trace crossing the
//! scenario's `min_trace_processes` processes.
//!
//! See `configs/lab_smoke.json` (the CI smoke: 5 processes including
//! the lab itself) and `configs/lab_cluster.json` (a larger chaos run).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod process;
pub mod scenario;
pub mod traces;

pub use harness::{run, LabReport};
pub use scenario::Scenario;
pub use traces::{TraceStore, TraceSummary};
