//! Cluster-wide trace assembly: every process exports its retained
//! spans at `/_cpms/trace.json`; the lab scrapes those dumps during and
//! after the replay, merges them by `(trace, span)` — a span seen once
//! is kept even if the source collector later evicts it or the process
//! dies — and reconstructs per-trace span trees that cross process
//! boundaries (proxy → wire → broker, proxy → origin).
//!
//! Per trace the lab derives:
//!
//! - the **process set** — how many distinct processes contributed
//!   spans (the cross-process assertion's currency);
//! - **orphans** — spans whose parent id appears nowhere in the merged
//!   trace: evidence of a broken propagation hop or of span loss;
//! - the **critical path** — the greedy root-to-leaf descent that
//!   always follows the child with the largest inclusive duration;
//! - **time by class** — inclusive nanoseconds summed per span-name
//!   prefix (`proxy`, `wire`, `broker`, `origin`, `mgmt`), a coarse
//!   where-does-the-time-go breakdown.
//!
//! Everything here is pure over scraped JSON so it unit-tests without a
//! cluster; the harness owns the scraping.

use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One span scraped from a process's `/_cpms/trace.json` dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Label of the process that recorded the span.
    pub process: String,
    /// 32-hex trace id.
    pub trace: String,
    /// 16-hex span id.
    pub span: String,
    /// Parent span id, `None` for trace roots.
    pub parent: Option<String>,
    /// Span name (`proxy.request`, `wire.call`, `broker.ship`, …).
    pub name: String,
    /// Free-form detail.
    pub detail: String,
    /// Wall-clock start.
    pub start_unix_micros: u64,
    /// Inclusive duration.
    pub duration_ns: u64,
    /// Whether the span ended in error.
    pub error: bool,
}

/// One hop on a trace's critical path.
#[derive(Debug, Clone)]
pub struct CriticalHop {
    /// Span name.
    pub name: String,
    /// Recording process.
    pub process: String,
    /// Inclusive duration.
    pub duration_ns: u64,
}

/// The derived shape of one merged trace.
#[derive(Debug)]
pub struct TraceSummary {
    /// 32-hex trace id.
    pub trace: String,
    /// Root span name, when the root was captured.
    pub root_name: Option<String>,
    /// Spans merged into this trace.
    pub span_count: usize,
    /// Distinct process labels that contributed spans.
    pub processes: BTreeSet<String>,
    /// Spans whose parent id is absent from the merged trace.
    pub orphans: usize,
    /// Whether any span ended in error.
    pub errored: bool,
    /// Root's inclusive duration (0 when the root is missing).
    pub duration_ns: u64,
    /// Greedy max-duration root-to-leaf descent.
    pub critical_path: Vec<CriticalHop>,
    /// Inclusive nanoseconds per span-name prefix (before the first `.`).
    pub time_by_class: BTreeMap<String, u64>,
}

/// Accumulates span dumps across processes and scrape cycles,
/// deduplicating by `(trace, span)`.
#[derive(Debug, Default)]
pub struct TraceStore {
    rows: HashMap<(String, String), SpanRow>,
}

impl TraceStore {
    /// Absorbs one `/_cpms/trace.json` document; returns how many spans
    /// were new. Malformed rows are skipped, not fatal — a half-written
    /// dump from a dying process must not sink the run.
    pub fn absorb(&mut self, doc: &Value) -> usize {
        let process = doc
            .get("process")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        let Some(spans) = doc.get("spans").and_then(Value::as_array) else {
            return 0;
        };
        let mut added = 0;
        for raw in spans {
            let Some(row) = parse_row(&process, raw) else {
                continue;
            };
            let key = (row.trace.clone(), row.span.clone());
            if self.rows.contains_key(&key) {
                continue;
            }
            self.rows.insert(key, row);
            added += 1;
        }
        added
    }

    /// Total merged spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing has been absorbed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Derives every trace's summary, largest process set first.
    #[must_use]
    pub fn analyze(&self) -> Vec<TraceSummary> {
        let mut by_trace: BTreeMap<&str, Vec<&SpanRow>> = BTreeMap::new();
        for row in self.rows.values() {
            by_trace.entry(&row.trace).or_default().push(row);
        }
        let mut out: Vec<TraceSummary> = by_trace
            .into_iter()
            .map(|(trace, rows)| summarize(trace, &rows))
            .collect();
        out.sort_by(|a, b| {
            (b.processes.len(), b.span_count, &b.trace).cmp(&(
                a.processes.len(),
                a.span_count,
                &a.trace,
            ))
        });
        out
    }

    /// Renders the merged store as the lab's `traces.json` document:
    /// per-trace summaries (critical path included) plus the raw spans.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let traces: Vec<Value> = self
            .analyze()
            .iter()
            .map(|summary| {
                let mut spans: Vec<&SpanRow> = self
                    .rows
                    .values()
                    .filter(|r| r.trace == summary.trace)
                    .collect();
                spans.sort_by_key(|r| (r.start_unix_micros, r.span.clone()));
                let mut classes = serde_json::Map::new();
                for (class, ns) in &summary.time_by_class {
                    classes.insert(class.clone(), serde_json::json!(*ns));
                }
                serde_json::json!({
                    "trace": summary.trace,
                    "root": summary.root_name,
                    "span_count": summary.span_count,
                    "processes": summary.processes.iter().collect::<Vec<_>>(),
                    "orphan_spans": summary.orphans,
                    "errored": summary.errored,
                    "duration_ns": summary.duration_ns,
                    "critical_path": summary.critical_path.iter().map(|hop| {
                        serde_json::json!({
                            "name": hop.name,
                            "process": hop.process,
                            "duration_ns": hop.duration_ns,
                        })
                    }).collect::<Vec<_>>(),
                    "time_by_class_ns": Value::Object(classes),
                    "spans": spans.iter().map(|r| serde_json::json!({
                        "process": r.process,
                        "span": r.span,
                        "parent": r.parent,
                        "name": r.name,
                        "detail": r.detail,
                        "start_unix_micros": r.start_unix_micros,
                        "duration_ns": r.duration_ns,
                        "error": r.error,
                    })).collect::<Vec<_>>(),
                })
            })
            .collect();
        serde_json::json!({
            "total_spans": self.len(),
            "trace_count": traces.len(),
            "traces": traces,
        })
    }
}

fn parse_row(process: &str, raw: &Value) -> Option<SpanRow> {
    Some(SpanRow {
        process: process.to_string(),
        trace: raw.get("trace")?.as_str()?.to_string(),
        span: raw.get("span")?.as_str()?.to_string(),
        parent: raw
            .get("parent")
            .and_then(Value::as_str)
            .map(str::to_string),
        name: raw.get("name")?.as_str()?.to_string(),
        detail: raw
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string(),
        start_unix_micros: raw.get("start_unix_micros")?.as_u64()?,
        duration_ns: raw.get("duration_ns")?.as_u64()?,
        error: raw.get("error").and_then(Value::as_bool).unwrap_or(false),
    })
}

fn summarize(trace: &str, rows: &[&SpanRow]) -> TraceSummary {
    let ids: BTreeSet<&str> = rows.iter().map(|r| r.span.as_str()).collect();
    let orphans = rows
        .iter()
        .filter(|r| matches!(&r.parent, Some(p) if !ids.contains(p.as_str())))
        .count();
    let root = rows
        .iter()
        .filter(|r| r.parent.is_none())
        .max_by_key(|r| r.duration_ns);
    let mut time_by_class: BTreeMap<String, u64> = BTreeMap::new();
    for row in rows {
        let class = row.name.split('.').next().unwrap_or(&row.name);
        *time_by_class.entry(class.to_string()).or_default() += row.duration_ns;
    }
    TraceSummary {
        trace: trace.to_string(),
        root_name: root.map(|r| r.name.clone()),
        span_count: rows.len(),
        processes: rows.iter().map(|r| r.process.clone()).collect(),
        orphans,
        errored: rows.iter().any(|r| r.error),
        duration_ns: root.map_or(0, |r| r.duration_ns),
        critical_path: critical_path(rows, root),
        time_by_class,
    }
}

/// Greedy critical path: from the root, repeatedly step into the child
/// with the largest inclusive duration until a leaf.
fn critical_path(rows: &[&SpanRow], root: Option<&&SpanRow>) -> Vec<CriticalHop> {
    let mut path = Vec::new();
    let Some(mut cursor) = root.copied() else {
        return path;
    };
    loop {
        path.push(CriticalHop {
            name: cursor.name.clone(),
            process: cursor.process.clone(),
            duration_ns: cursor.duration_ns,
        });
        let next = rows
            .iter()
            .filter(|r| r.parent.as_deref() == Some(cursor.span.as_str()))
            // Longest child wins; span id breaks duration ties so the
            // path is deterministic across runs of the same dump.
            .max_by(|a, b| {
                a.duration_ns
                    .cmp(&b.duration_ns)
                    .then_with(|| b.span.cmp(&a.span))
            });
        match next {
            // A cycle cannot occur: a child's parent pointer is unique
            // and we only ever descend, but cap the walk defensively.
            Some(child) if path.len() < 1024 => cursor = *child,
            _ => return path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (trace, span, parent, name, start_ns, duration_ns, error)
    type SpanRow<'a> = (&'a str, &'a str, Option<&'a str>, &'a str, u64, u64, bool);

    fn dump(process: &str, spans: &[SpanRow<'_>]) -> Value {
        serde_json::json!({
            "process": process,
            "recorded": spans.len(),
            "dropped": 0,
            "spans": spans.iter().map(|(trace, span, parent, name, start, dur, error)| {
                serde_json::json!({
                    "trace": trace,
                    "span": span,
                    "parent": parent,
                    "name": name,
                    "detail": "",
                    "start_unix_micros": start,
                    "duration_ns": dur,
                    "error": error,
                })
            }).collect::<Vec<_>>(),
        })
    }

    const T: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn absorb_merges_and_deduplicates_across_scrapes() {
        let mut store = TraceStore::default();
        let first = dump("proxy", &[(T, "aa", None, "proxy.request", 10, 900, false)]);
        assert_eq!(store.absorb(&first), 1);
        // Second scrape of the same process repeats the span and adds one.
        let second = dump(
            "proxy",
            &[
                (T, "aa", None, "proxy.request", 10, 900, false),
                (T, "bb", Some("aa"), "proxy.relay", 20, 700, false),
            ],
        );
        assert_eq!(store.absorb(&second), 1, "duplicate span not re-added");
        assert_eq!(store.len(), 2);
        // A different process contributes the third hop.
        let origin = dump(
            "broker-n1",
            &[(T, "cc", Some("bb"), "origin.request", 30, 500, false)],
        );
        assert_eq!(store.absorb(&origin), 1);
        let summaries = store.analyze();
        assert_eq!(summaries.len(), 1);
        let s = &summaries[0];
        assert_eq!(s.span_count, 3);
        assert_eq!(s.orphans, 0);
        assert_eq!(s.root_name.as_deref(), Some("proxy.request"));
        assert_eq!(s.processes.len(), 2, "proxy + broker-n1");
        assert_eq!(s.duration_ns, 900);
    }

    #[test]
    fn orphans_are_counted_when_a_parent_is_missing() {
        let mut store = TraceStore::default();
        let doc = dump(
            "broker-n0",
            &[
                (T, "aa", None, "mgmt.publish", 10, 900, false),
                // parent "zz" was never captured anywhere
                (T, "cc", Some("zz"), "broker.ship", 30, 100, false),
            ],
        );
        store.absorb(&doc);
        let s = &store.analyze()[0];
        assert_eq!(s.orphans, 1);
        assert_eq!(s.span_count, 2);
    }

    #[test]
    fn critical_path_follows_the_slowest_child() {
        let mut store = TraceStore::default();
        let doc = dump(
            "proxy",
            &[
                (T, "aa", None, "mgmt.replicate", 0, 1000, false),
                (T, "b1", Some("aa"), "wire.call", 1, 300, false),
                (T, "b2", Some("aa"), "wire.call", 2, 600, false),
                (T, "c1", Some("b2"), "wire.attempt", 3, 550, true),
            ],
        );
        store.absorb(&doc);
        let s = &store.analyze()[0];
        let names: Vec<&str> = s.critical_path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["mgmt.replicate", "wire.call", "wire.attempt"]);
        assert_eq!(s.critical_path[1].duration_ns, 600, "took the slower call");
        assert!(s.errored);
        assert_eq!(
            s.time_by_class.get("wire").copied(),
            Some(300 + 600 + 550),
            "{:?}",
            s.time_by_class
        );
        assert_eq!(s.time_by_class.get("mgmt").copied(), Some(1000));
    }

    #[test]
    fn malformed_rows_and_missing_spans_are_skipped() {
        let mut store = TraceStore::default();
        assert_eq!(store.absorb(&serde_json::json!({"process": "p"})), 0);
        let doc = serde_json::json!({
            "process": "p",
            "spans": [
                {"trace": T},                       // missing everything else
                {"not": "a span"},
                42,
            ],
        });
        assert_eq!(store.absorb(&doc), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn traces_json_document_carries_summaries_and_spans() {
        let mut store = TraceStore::default();
        let doc = dump(
            "proxy",
            &[
                (T, "aa", None, "proxy.request", 10, 900, false),
                (T, "bb", Some("aa"), "proxy.relay", 20, 700, false),
            ],
        );
        store.absorb(&doc);
        let json = store.to_json();
        assert_eq!(json.get("total_spans").and_then(Value::as_u64), Some(2));
        assert_eq!(json.get("trace_count").and_then(Value::as_u64), Some(1));
        let trace = &json.get("traces").and_then(Value::as_array).unwrap()[0];
        assert_eq!(trace.get("trace").and_then(Value::as_str), Some(T));
        assert_eq!(trace.get("orphan_spans").and_then(Value::as_u64), Some(0));
        let path = trace
            .get("critical_path")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(
            path[1].get("name").and_then(Value::as_str),
            Some("proxy.relay")
        );
        let spans = trace.get("spans").and_then(Value::as_array).unwrap();
        assert_eq!(spans.len(), 2);
    }
}
