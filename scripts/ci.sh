#!/usr/bin/env bash
# Tier-1 gate: build, tests, formatting, and lints for the whole workspace
# (repo crates and vendored stand-ins alike). Run from anywhere; operates
# on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> metrics smoke (request_latency --smoke)"
cargo run --release -q -p cpms-bench --bin request_latency -- --smoke

echo "==> networked broker smoke (cpms-broker --smoke: loopback TCP + fault injection)"
cargo run --release -q -p cpms-mgmt --bin cpms-broker -- --smoke

echo "==> content shipping smoke (cpms-ship --smoke: loopback TCP ship under 20% loss + anti-entropy)"
cargo run --release -q -p cpms-mgmt --bin cpms-ship -- --smoke

echo "==> shipping throughput smoke (shipping --smoke: chunk size x loss matrix)"
cargo run --release -q -p cpms-bench --bin shipping -- --smoke

echo "==> proxy data-plane smoke (cpms-proxy --smoke: 400-conn churn relay, overload 503s, tenant caps)"
timeout --signal=KILL 120 ./target/release/cpms-proxy --smoke

echo "==> cluster lab smoke (cpms-lab --smoke: 5 real processes, partition + kill chaos;"
echo "    tracing gate: merged traces.json must have zero orphan spans and a cross-process trace;"
echo "    SLO gate: the kill fault must trip the proxy watchdog into breach and the breach must clear)"
# Belt and braces on the wall clock: the scenario's own watchdog caps the
# run at 90 s (exit 3); `timeout` backstops even a wedged watchdog. The
# release cpms-lab must run from target/release so it finds its sibling
# cpms-broker / cpms-proxy binaries next to itself.
timeout --signal=KILL 150 ./target/release/cpms-lab --smoke

echo "ci: all gates passed"
