//! Cross-crate placement-policy tests: every policy produces a table the
//! whole stack (routing + simulation + management) can operate on, and
//! policies honor the paper's placement rules.

use cpms_core::prelude::*;
use cpms_model::ContentKind;
use cpms_urltable::TableStats;

fn corpus() -> Corpus {
    CorpusBuilder::paper_site().seed(3).build()
}

fn all_policies() -> Vec<PlacementPolicy> {
    vec![
        PlacementPolicy::FullReplication,
        PlacementPolicy::FullReplicationCapable,
        PlacementPolicy::SharedNfs,
        PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        },
        PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        },
        PlacementPolicy::PartialReplication {
            segregate_dynamic: true,
            hot_fraction: 0.05,
            copies: 3,
        },
    ]
}

#[test]
fn every_policy_covers_every_object() {
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    for policy in all_policies() {
        let table = policy.build_table(&corpus, &specs);
        assert_eq!(table.len(), corpus.len(), "{policy}");
        for (path, entry) in table.iter() {
            assert!(
                entry.replica_count() >= 1,
                "{policy}: {path} must have at least one location"
            );
            for &node in entry.locations() {
                assert!(
                    (node.index()) < specs.len(),
                    "{policy}: {path} placed on nonexistent node {node}"
                );
            }
        }
    }
}

#[test]
fn replication_factors_ordered_as_expected() {
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    let factor = |policy: PlacementPolicy| {
        TableStats::collect(&policy.build_table(&corpus, &specs)).mean_replication_factor
    };
    let full = factor(PlacementPolicy::FullReplication);
    let partitioned = factor(PlacementPolicy::PartitionedByType {
        segregate_dynamic: false,
    });
    let partial = factor(PlacementPolicy::PartialReplication {
        segregate_dynamic: false,
        hot_fraction: 0.1,
        copies: 3,
    });
    assert!((full - specs.len() as f64).abs() < 1e-9);
    assert!(partitioned < partial, "{partitioned} < {partial}");
    assert!(partial < full, "{partial} < {full}");
    // partitioning keeps data single-copy apart from group-installed scripts
    assert!(partitioned < 1.5, "partitioned factor {partitioned}");
}

#[test]
fn storage_footprint_partitioned_vs_replicated() {
    // The paper's §1.2 economics: full replication of large files is not
    // cost-effective. Compare per-node stored bytes.
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    let stored_bytes = |policy: PlacementPolicy| -> u64 {
        let table = policy.build_table(&corpus, &specs);
        table
            .iter()
            .map(|(_, e)| e.size_bytes() * e.replica_count() as u64)
            .sum()
    };
    let full = stored_bytes(PlacementPolicy::FullReplication);
    let partitioned = stored_bytes(PlacementPolicy::PartitionedByType {
        segregate_dynamic: false,
    });
    assert!(
        full > 6 * partitioned,
        "full replication stores {full} bytes vs partitioned {partitioned}"
    );
}

#[test]
fn capability_constraints_respected_everywhere() {
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    for policy in [
        PlacementPolicy::FullReplicationCapable,
        PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        },
        PlacementPolicy::PartialReplication {
            segregate_dynamic: true,
            hot_fraction: 0.2,
            copies: 4,
        },
    ] {
        let table = policy.build_table(&corpus, &specs);
        for (path, entry) in table.iter() {
            if entry.kind() == ContentKind::Asp {
                for &node in entry.locations() {
                    assert!(
                        specs[node.index()].can_serve_kind(ContentKind::Asp),
                        "{policy}: ASP {path} on non-IIS node {node}"
                    );
                }
            }
        }
    }
}

#[test]
fn video_lands_on_big_disks_under_partitioning() {
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    let max_disk = specs.iter().map(NodeSpec::disk_bytes).max().unwrap();
    let table = PlacementPolicy::PartitionedByType {
        segregate_dynamic: false,
    }
    .build_table(&corpus, &specs);
    for (path, entry) in table.iter() {
        if entry.kind() == ContentKind::Video {
            for &node in entry.locations() {
                assert_eq!(
                    specs[node.index()].disk_bytes(),
                    max_disk,
                    "video {path} must sit on the largest disks"
                );
            }
        }
    }
}

#[test]
fn partitioned_static_is_balanced_by_capacity() {
    let corpus = corpus();
    let specs = NodeSpec::paper_testbed();
    let table = PlacementPolicy::PartitionedByType {
        segregate_dynamic: false,
    }
    .build_table(&corpus, &specs);
    let stats = TableStats::collect(&table);
    // every node hosts a meaningful share of objects (no starving, no
    // monopolizing)
    for (node, &count) in &stats.objects_per_node {
        let share = count as f64 / corpus.len() as f64;
        assert!(
            (0.02..0.5).contains(&share),
            "node {node} hosts share {share:.3}"
        );
    }
}
