//! Fault-injection robustness for the networked management plane: broker
//! RPCs through lossy and poisoned transports, raw socket abuse against a
//! live TCP daemon, and distributor promotion under heartbeat packet loss.

use cpms_dispatch::failover::{BackupDistributor, HeartbeatListener, HeartbeatSender};
use cpms_dispatch::mapping::ConnKey;
use cpms_dispatch::relay::Distributor;
use cpms_mgmt::agent::{StatusProbe, StoreFile};
use cpms_mgmt::store::{NodeStore, StoredFile};
use cpms_mgmt::{AgentError, AgentOutput, Broker};
use cpms_model::{ContentId, NodeId, UrlPath};
use cpms_wire::{FaultPlan, FaultyTransport, InProcServer, Transport, WireError};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

mod util;
use util::{retry, with_deadline};

/// Whole-test deadline: generous against slow CI, far under the harness
/// timeout, and it names the wedged test in the panic.
const TEST_DEADLINE: Duration = Duration::from_secs(60);

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// Satellite 1: a broker RPC round-trip must survive at least 10% injected
/// frame loss purely through the client's retry/backoff. StatusProbe is
/// idempotent, so at-least-once retry semantics are safe here.
#[test]
fn broker_rpcs_survive_fifteen_percent_frame_loss() {
    with_deadline("fifteen_percent_frame_loss", TEST_DEADLINE, || {
        let mut handle = Broker::spawn_wrapped(NodeStore::new(NodeId(0), 1 << 20), |inner| {
            Arc::new(FaultyTransport::new(inner, FaultPlan::lossy(0x10_55, 0.15)))
        });
        assert_eq!(handle.transport_kind(), "faulty");

        // The wire client's own retry absorbs most loss; the outer budget
        // covers the tail where a whole RPC exhausts its attempts. The
        // store is made idempotent (overwrite) so a lost *reply* to a
        // success is safe to repeat.
        retry("store through 15% loss", 3, || {
            handle.dispatch(StoreFile {
                path: p("/lossy.html"),
                file: StoredFile {
                    content: ContentId(1),
                    size: 32,
                    version: 0,
                },
                overwrite: true,
            })
        });

        let mut successes = 0u32;
        for _ in 0..100 {
            match handle.dispatch(StatusProbe).expect("retry absorbs loss") {
                AgentOutput::Status { files, .. } => assert_eq!(files, 1),
                other => panic!("unexpected reply {other:?}"),
            }
            successes += 1;
        }
        let stats = handle.transport_stats();
        assert_eq!(successes, 100);
        assert_eq!(stats.failures, 0, "no RPC may fail outright");
        assert!(
            stats.retries > 0,
            "15% loss must have forced at least one retry"
        );
        handle.shutdown().expect("clean shutdown after the abuse");
    })
}

/// Satellite 1: a poisoned (truncating) transport must surface a typed
/// [`WireError`] — never a hang, never a panic — and the error must carry
/// the truncation diagnosis at its root.
#[test]
fn poisoned_frame_surfaces_typed_error() {
    with_deadline("poisoned_frame", TEST_DEADLINE, || {
        let mut handle = Broker::spawn_wrapped(NodeStore::new(NodeId(3), 1 << 20), |inner| {
            Arc::new(FaultyTransport::new(inner, FaultPlan::poisoned(0xBAD)))
        });
        let err = handle
            .dispatch(StatusProbe)
            .expect_err("every frame is cut");
        match err {
            AgentError::Transport { node, error } => {
                assert_eq!(node, NodeId(3));
                assert!(
                    matches!(error.root(), WireError::Truncated { .. }),
                    "root cause must be the truncation, got {error:?}"
                );
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
        handle.shutdown();
    })
}

/// A raw TCP client writing a partial frame then vanishing must not take
/// the daemon down, wedge its executor, or corrupt later RPCs.
#[test]
fn tcp_daemon_survives_partial_frames_and_garbage() {
    with_deadline("partial_frames", TEST_DEADLINE, || {
        let mut host = Broker::bind(
            "127.0.0.1:0".parse().unwrap(),
            NodeStore::new(NodeId(0), 1 << 20),
        )
        .unwrap();
        let addr = host.addr().expect("tcp daemon has an address");

        // Half a header, then hang up.
        let mut socket = std::net::TcpStream::connect(addr).unwrap();
        socket.write_all(&[0xC9, 0x57, 0x01]).unwrap();
        drop(socket);
        // A full bogus header announcing a huge frame, then hang up.
        let mut socket = std::net::TcpStream::connect(addr).unwrap();
        socket
            .write_all(&[0xFF; cpms_wire::frame::HEADER_LEN])
            .unwrap();
        drop(socket);

        // The daemon still answers well-formed clients. Budgeted: the
        // garbage connections above may still be draining on slow CI.
        let remote = Broker::connect(NodeId(0), addr);
        match retry("probe after garbage frames", 3, || {
            remote.dispatch(StatusProbe)
        }) {
            AgentOutput::Status { files, .. } => assert_eq!(files, 0),
            other => panic!("unexpected reply {other:?}"),
        }
        host.shutdown().expect("clean shutdown");
    })
}

/// Satellite 2: promotion under packet loss. Heartbeats cross a lossy wire
/// with no retry (the next beat supersedes a lost one); the backup must
/// still warm up, track the primary's table generation, and promote with
/// the replicated connection state when the primary goes silent.
#[test]
fn backup_promotes_after_heartbeats_under_packet_loss() {
    with_deadline("promotion_under_loss", TEST_DEADLINE, || {
        // A primary with two live spliced connections.
        let mut primary = Distributor::new(2, 2);
        let keys: Vec<ConnKey> = (1..=2u16)
            .map(|port| ConnKey {
                client_ip: 0x0A00_0001,
                client_port: port,
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            primary.accept_syn(k, 400, false).unwrap();
            primary.complete_handshake(k).unwrap();
            primary.bind(k, NodeId(i as u16), 401).unwrap();
        }

        let listener = HeartbeatListener::new(BackupDistributor::new(3));
        let backup = listener.handle();
        let (transport, mut server) = InProcServer::spawn(listener);
        let lossy: Arc<dyn Transport> = Arc::new(FaultyTransport::new(
            Arc::new(transport),
            FaultPlan::lossy(0x5EED_BEA7, 0.30),
        ));
        // Snapshot every 2 beats so losses cannot starve the backup of state.
        let mut sender = HeartbeatSender::new(lossy, 2);

        let mut delivered = 0u32;
        let mut lost = 0u32;
        for round in 0..30u64 {
            // The primary publishes table generations as it goes.
            match sender.beat(&primary, round / 3) {
                Ok(_) => delivered += 1,
                Err(e) => {
                    assert!(
                        matches!(e.root(), WireError::Timeout { .. } | WireError::Closed),
                        "losses must look like timeouts, got {e:?}"
                    );
                    lost += 1;
                }
            }
        }
        assert!(lost > 0, "30% loss must lose some beats");
        assert!(delivered > 0, "30% loss must deliver some beats");

        // Primary goes silent; the backup crosses its miss threshold.
        server.stop();
        {
            let mut b = backup.lock();
            assert!(b.has_snapshot(), "snapshots got through despite loss");
            assert!(
                b.last_seen_generation() > 0,
                "generation advanced through delivered beats"
            );
            for _ in 0..3 {
                b.on_heartbeat_missed();
            }
        }

        // Promotion: the replicated connections are intact and serviceable.
        let promoted = backup.lock().clone().take_over().expect("warm state");
        assert_eq!(promoted.mapping().len(), 2);
        let mut np = promoted;
        for &k in &keys {
            np.client_fin(k, 600).unwrap();
            np.last_ack(k, 50, 500).unwrap();
        }
        assert!(np.mapping().is_empty(), "promoted primary drains cleanly");
    })
}

/// The staleness signal end to end: a backup whose snapshot predates the
/// last acknowledged table generation must say so after promotion, so the
/// new primary knows to refresh its URL table before routing.
#[test]
fn promoted_backup_detects_stale_snapshot() {
    with_deadline("stale_snapshot", TEST_DEADLINE, || {
        let primary = Distributor::new(1, 1);
        let listener = HeartbeatListener::new(BackupDistributor::new(1));
        let backup = listener.handle();
        let (transport, mut server) = InProcServer::spawn(listener);
        let mut sender = HeartbeatSender::new(Arc::new(transport), 100);

        // Beat 1 snapshots at generation 4; later beats advance the table to
        // generation 9 without a fresh snapshot (snapshot_every = 100).
        sender.beat(&primary, 4).unwrap();
        sender.beat(&primary, 7).unwrap();
        sender.beat(&primary, 9).unwrap();
        server.stop();

        let b = backup.lock();
        assert_eq!(b.snapshot_generation(), 4);
        assert_eq!(b.last_seen_generation(), 9);
        assert!(
            b.snapshot_is_stale(),
            "five table publications happened after the snapshot"
        );
    })
}
