//! Fault-injection robustness for the networked management plane: broker
//! RPCs through lossy and poisoned transports, raw socket abuse against a
//! live TCP daemon, and distributor promotion under heartbeat packet loss.

use cpms_dispatch::failover::{BackupDistributor, HeartbeatListener, HeartbeatSender};
use cpms_dispatch::mapping::ConnKey;
use cpms_dispatch::relay::Distributor;
use cpms_mgmt::agent::{StatusProbe, StoreFile};
use cpms_mgmt::store::{NodeStore, StoredFile};
use cpms_mgmt::{AgentError, AgentOutput, Broker};
use cpms_model::{ContentId, NodeId, UrlPath};
use cpms_wire::{FaultPlan, FaultyTransport, InProcServer, Transport, WireError};
use std::io::Write as _;
use std::sync::Arc;
use std::time::Duration;

mod util;
use util::{retry, with_deadline};

/// Whole-test deadline: generous against slow CI, far under the harness
/// timeout, and it names the wedged test in the panic.
const TEST_DEADLINE: Duration = Duration::from_secs(60);

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// Satellite 1: a broker RPC round-trip must survive at least 10% injected
/// frame loss purely through the client's retry/backoff. StatusProbe is
/// idempotent, so at-least-once retry semantics are safe here.
#[test]
fn broker_rpcs_survive_fifteen_percent_frame_loss() {
    with_deadline("fifteen_percent_frame_loss", TEST_DEADLINE, || {
        let mut handle = Broker::spawn_wrapped(NodeStore::new(NodeId(0), 1 << 20), |inner| {
            Arc::new(FaultyTransport::new(inner, FaultPlan::lossy(0x10_55, 0.15)))
        });
        assert_eq!(handle.transport_kind(), "faulty");

        // The wire client's own retry absorbs most loss; the outer budget
        // covers the tail where a whole RPC exhausts its attempts. The
        // store is made idempotent (overwrite) so a lost *reply* to a
        // success is safe to repeat.
        retry("store through 15% loss", 3, || {
            handle.dispatch(StoreFile {
                path: p("/lossy.html"),
                file: StoredFile {
                    content: ContentId(1),
                    size: 32,
                    version: 0,
                },
                overwrite: true,
            })
        });

        let mut successes = 0u32;
        for _ in 0..100 {
            match handle.dispatch(StatusProbe).expect("retry absorbs loss") {
                AgentOutput::Status { files, .. } => assert_eq!(files, 1),
                other => panic!("unexpected reply {other:?}"),
            }
            successes += 1;
        }
        let stats = handle.transport_stats();
        assert_eq!(successes, 100);
        assert_eq!(stats.failures, 0, "no RPC may fail outright");
        assert!(
            stats.retries > 0,
            "15% loss must have forced at least one retry"
        );
        handle.shutdown().expect("clean shutdown after the abuse");
    })
}

/// Satellite 1: a poisoned (truncating) transport must surface a typed
/// [`WireError`] — never a hang, never a panic — and the error must carry
/// the truncation diagnosis at its root.
#[test]
fn poisoned_frame_surfaces_typed_error() {
    with_deadline("poisoned_frame", TEST_DEADLINE, || {
        let mut handle = Broker::spawn_wrapped(NodeStore::new(NodeId(3), 1 << 20), |inner| {
            Arc::new(FaultyTransport::new(inner, FaultPlan::poisoned(0xBAD)))
        });
        let err = handle
            .dispatch(StatusProbe)
            .expect_err("every frame is cut");
        match err {
            AgentError::Transport { node, error } => {
                assert_eq!(node, NodeId(3));
                assert!(
                    matches!(error.root(), WireError::Truncated { .. }),
                    "root cause must be the truncation, got {error:?}"
                );
            }
            other => panic!("expected a transport error, got {other:?}"),
        }
        handle.shutdown();
    })
}

/// A raw TCP client writing a partial frame then vanishing must not take
/// the daemon down, wedge its executor, or corrupt later RPCs.
#[test]
fn tcp_daemon_survives_partial_frames_and_garbage() {
    with_deadline("partial_frames", TEST_DEADLINE, || {
        let mut host = Broker::bind(
            "127.0.0.1:0".parse().unwrap(),
            NodeStore::new(NodeId(0), 1 << 20),
        )
        .unwrap();
        let addr = host.addr().expect("tcp daemon has an address");

        // Half a header, then hang up.
        let mut socket = std::net::TcpStream::connect(addr).unwrap();
        socket.write_all(&[0xC9, 0x57, 0x01]).unwrap();
        drop(socket);
        // A full bogus header announcing a huge frame, then hang up.
        let mut socket = std::net::TcpStream::connect(addr).unwrap();
        socket
            .write_all(&[0xFF; cpms_wire::frame::HEADER_LEN])
            .unwrap();
        drop(socket);

        // The daemon still answers well-formed clients. Budgeted: the
        // garbage connections above may still be draining on slow CI.
        let remote = Broker::connect(NodeId(0), addr);
        match retry("probe after garbage frames", 3, || {
            remote.dispatch(StatusProbe)
        }) {
            AgentOutput::Status { files, .. } => assert_eq!(files, 0),
            other => panic!("unexpected reply {other:?}"),
        }
        host.shutdown().expect("clean shutdown");
    })
}

/// Satellite 2: promotion under packet loss. Heartbeats cross a lossy wire
/// with no retry (the next beat supersedes a lost one); the backup must
/// still warm up, track the primary's table generation, and promote with
/// the replicated connection state when the primary goes silent.
#[test]
fn backup_promotes_after_heartbeats_under_packet_loss() {
    with_deadline("promotion_under_loss", TEST_DEADLINE, || {
        // A primary with two live spliced connections.
        let mut primary = Distributor::new(2, 2);
        let keys: Vec<ConnKey> = (1..=2u16)
            .map(|port| ConnKey {
                client_ip: 0x0A00_0001,
                client_port: port,
            })
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            primary.accept_syn(k, 400, false).unwrap();
            primary.complete_handshake(k).unwrap();
            primary.bind(k, NodeId(i as u16), 401).unwrap();
        }

        let listener = HeartbeatListener::new(BackupDistributor::new(3));
        let backup = listener.handle();
        let (transport, mut server) = InProcServer::spawn(listener);
        let lossy: Arc<dyn Transport> = Arc::new(FaultyTransport::new(
            Arc::new(transport),
            FaultPlan::lossy(0x5EED_BEA7, 0.30),
        ));
        // Snapshot every 2 beats so losses cannot starve the backup of state.
        let mut sender = HeartbeatSender::new(lossy, 2);

        let mut delivered = 0u32;
        let mut lost = 0u32;
        for round in 0..30u64 {
            // The primary publishes table generations as it goes.
            match sender.beat(&primary, round / 3) {
                Ok(_) => delivered += 1,
                Err(e) => {
                    assert!(
                        matches!(e.root(), WireError::Timeout { .. } | WireError::Closed),
                        "losses must look like timeouts, got {e:?}"
                    );
                    lost += 1;
                }
            }
        }
        assert!(lost > 0, "30% loss must lose some beats");
        assert!(delivered > 0, "30% loss must deliver some beats");

        // Primary goes silent; the backup crosses its miss threshold.
        server.stop();
        {
            let mut b = backup.lock();
            assert!(b.has_snapshot(), "snapshots got through despite loss");
            assert!(
                b.last_seen_generation() > 0,
                "generation advanced through delivered beats"
            );
            for _ in 0..3 {
                b.on_heartbeat_missed();
            }
        }

        // Promotion: the replicated connections are intact and serviceable.
        let promoted = backup.lock().clone().take_over().expect("warm state");
        assert_eq!(promoted.mapping().len(), 2);
        let mut np = promoted;
        for &k in &keys {
            np.client_fin(k, 600).unwrap();
            np.last_ack(k, 50, 500).unwrap();
        }
        assert!(np.mapping().is_empty(), "promoted primary drains cleanly");
    })
}

/// The staleness signal end to end: a backup whose snapshot predates the
/// last acknowledged table generation must say so after promotion, so the
/// new primary knows to refresh its URL table before routing.
#[test]
fn promoted_backup_detects_stale_snapshot() {
    with_deadline("stale_snapshot", TEST_DEADLINE, || {
        let primary = Distributor::new(1, 1);
        let listener = HeartbeatListener::new(BackupDistributor::new(1));
        let backup = listener.handle();
        let (transport, mut server) = InProcServer::spawn(listener);
        let mut sender = HeartbeatSender::new(Arc::new(transport), 100);

        // Beat 1 snapshots at generation 4; later beats advance the table to
        // generation 9 without a fresh snapshot (snapshot_every = 100).
        sender.beat(&primary, 4).unwrap();
        sender.beat(&primary, 7).unwrap();
        sender.beat(&primary, 9).unwrap();
        server.stop();

        let b = backup.lock();
        assert_eq!(b.snapshot_generation(), 4);
        assert_eq!(b.last_seen_generation(), 9);
        assert!(
            b.snapshot_is_stale(),
            "five table publications happened after the snapshot"
        );
    })
}

/// Tracing satellite: retries are *attempts*, not new logical calls. N
/// successful RPCs through a lossy transport must record exactly N
/// `wire.call` spans, with the injected loss visible only as extra
/// `wire.attempt` children under them.
#[test]
fn lossy_rpcs_record_one_logical_span_per_call() {
    with_deadline("lossy_span_accounting", TEST_DEADLINE, || {
        let registry = Arc::new(cpms_obs::MetricsRegistry::new());
        let handle = Broker::spawn_wrapped(NodeStore::new(NodeId(5), 1 << 20), |inner| {
            Arc::new(FaultyTransport::new(inner, FaultPlan::lossy(0x10_55, 0.15)))
        });
        handle.attach_metrics(&registry);

        const CALLS: usize = 40;
        for _ in 0..CALLS {
            match handle.dispatch(StatusProbe).expect("retry absorbs loss") {
                AgentOutput::Status { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }

        let stats = handle.transport_stats();
        assert!(stats.retries > 0, "15% loss must have forced retries");
        let spans = registry.spans().snapshot();
        let calls = spans.iter().filter(|r| r.name == "wire.call").count();
        let attempts = spans.iter().filter(|r| r.name == "wire.attempt").count();
        assert_eq!(
            calls, CALLS,
            "one logical wire.call span per RPC, retries or not"
        );
        assert_eq!(
            attempts,
            CALLS + stats.retries as usize,
            "every retry shows up as one extra attempt span"
        );
        // Every attempt must sit under some logical call in the same trace.
        for attempt in spans.iter().filter(|r| r.name == "wire.attempt") {
            let parent = attempt.parent.expect("attempts are never roots");
            assert!(
                spans
                    .iter()
                    .any(|r| r.name == "wire.call" && r.span == parent && r.trace == attempt.trace),
                "attempt {attempt:?} must parent to a wire.call in its trace"
            );
        }
    })
}

/// Tracing satellite: a trace-capable client talking to an extension-less
/// peer (one that never sets `FLAG_TRACE_CAPABLE` on its frames) must
/// degrade to plain untraced frames — the extension is negotiated, never
/// assumed.
#[test]
fn extensionless_peer_receives_plain_frames() {
    use cpms_wire::frame::{self, TracedFrameOrEof};
    with_deadline("extensionless_peer", TEST_DEADLINE, || {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let seen: Arc<std::sync::Mutex<Vec<(u8, bool)>>> = Arc::default();
        let log = Arc::clone(&seen);
        let server = std::thread::spawn(move || {
            // An old build: echoes zero-flag frames and never reads
            // extensions beyond what the decoder strips.
            let (mut conn, _) = listener.accept().unwrap();
            while let Ok(TracedFrameOrEof::Frame(f)) = frame::read_frame_ext_or_eof(&mut conn) {
                log.lock().unwrap().push((f.flags, f.trace.is_some()));
                frame::write_frame(&mut conn, b"pong").unwrap();
            }
        });

        let transport = cpms_wire::TcpTransport::new(addr);
        let ctx = cpms_obs::TraceContext::root(true);
        let _trace = cpms_obs::ScopedTrace::activate(ctx);
        for _ in 0..3 {
            let reply = transport
                .call(b"ping", Duration::from_secs(5))
                .expect("plain peer still answers");
            assert_eq!(reply, b"pong");
        }
        assert!(
            !transport.peer_traces(),
            "a zero-flag peer must never be marked trace-capable"
        );
        drop(transport);
        server.join().unwrap();

        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 3);
        for &(flags, traced) in seen.iter() {
            assert_ne!(
                flags & frame::FLAG_TRACE_CAPABLE,
                0,
                "the new build always advertises capability"
            );
            assert!(
                !traced,
                "no trace extension may be attached before the peer advertises"
            );
        }
    })
}

/// Tracing satellite: raw garbage in the extension area of frames sent to
/// a live TCP daemon — truncated extension headers, over-announced
/// lengths, unknown versions, invalid contexts — must surface as typed
/// errors or degraded untraced frames, never a hang, and must not poison
/// the daemon for later well-formed clients.
#[test]
fn garbage_extension_area_never_wedges_the_daemon() {
    use cpms_wire::frame::{checksum, FLAG_TRACE, FLAG_TRACE_CAPABLE, TRACE_EXT_VERSION};
    with_deadline("garbage_extension", TEST_DEADLINE, || {
        let mut host = Broker::bind(
            "127.0.0.1:0".parse().unwrap(),
            NodeStore::new(NodeId(0), 1 << 20),
        )
        .unwrap();
        let addr = host.addr().expect("tcp daemon has an address");

        let raw_frame = |flags: u8, body: &[u8]| -> Vec<u8> {
            let mut out = vec![0xC9, 0x57, 0x01, flags];
            out.extend_from_slice(&u32::try_from(body.len()).unwrap().to_be_bytes());
            out.extend_from_slice(&checksum(body).to_be_bytes());
            out.extend_from_slice(body);
            out
        };
        let flagged = FLAG_TRACE | FLAG_TRACE_CAPABLE;

        // Body too short for the extension's own two-byte header.
        let too_short = raw_frame(flagged, &[TRACE_EXT_VERSION]);
        // Extension announces 200 context bytes; only 10 are present.
        let mut over = vec![TRACE_EXT_VERSION, 200];
        over.extend_from_slice(&[0xAB; 10]);
        let over_announced = raw_frame(flagged, &over);
        // Structurally valid but semantically dead context (all zeros):
        // the daemon must degrade to untraced and still read the payload.
        let mut zeroed = vec![TRACE_EXT_VERSION, 33];
        zeroed.extend_from_slice(&[0u8; 33]);
        zeroed.extend_from_slice(b"this is not an agent request");
        let zero_ctx = raw_frame(flagged, &zeroed);
        // Unknown extension version: same degradation contract.
        let mut unknown = vec![0x7F, 4, 1, 2, 3, 4];
        unknown.extend_from_slice(b"still not an agent request");
        let unknown_version = raw_frame(flagged, &unknown);

        for (what, frame_bytes) in [
            ("too-short extension", too_short),
            ("over-announced extension", over_announced),
            ("all-zero context", zero_ctx),
            ("unknown extension version", unknown_version),
        ] {
            let mut socket = std::net::TcpStream::connect(addr).unwrap();
            socket
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            socket.write_all(&frame_bytes).unwrap();
            // Half-close: the daemon sees EOF once it has consumed the
            // garbage. Whatever it does — typed-error reply, degraded
            // dispatch, or a dropped connection — the read must then
            // terminate. A hang trips the read timeout below.
            socket.shutdown(std::net::Shutdown::Write).unwrap();
            let mut sink = Vec::new();
            std::io::Read::read_to_end(&mut socket, &mut sink)
                .unwrap_or_else(|e| panic!("{what}: daemon must close or answer, got {e}"));
        }

        // The daemon still serves well-formed trace-capable clients.
        let remote = Broker::connect(NodeId(0), addr);
        match retry("probe after extension garbage", 3, || {
            remote.dispatch(StatusProbe)
        }) {
            AgentOutput::Status { files, .. } => assert_eq!(files, 0),
            other => panic!("unexpected reply {other:?}"),
        }
        host.shutdown().expect("clean shutdown");
    })
}
