//! End-to-end simulation tests: full experiments through the public API,
//! checking system-level invariants rather than figure shapes (those live
//! in `figure_shapes.rs`).

use cpms_core::prelude::*;

fn quick() -> cpms_core::ExperimentBuilder {
    Experiment::builder()
        .corpus_objects(800)
        .nodes(NodeSpec::paper_testbed())
        .windows(SimDuration::from_secs(2), SimDuration::from_secs(8))
        .seed(7)
}

#[test]
fn every_placement_router_combo_that_should_work_works() {
    // (placement, router, workload) combos the system supports: all must
    // complete traffic without misroutes or unroutable requests.
    let combos = [
        (
            PlacementPolicy::FullReplication,
            RouterChoice::WeightedLeastConnections,
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::FullReplication,
            RouterChoice::RoundRobin,
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::FullReplication,
            RouterChoice::DnsRoundRobin,
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::FullReplication,
            RouterChoice::Random { seed: 3 },
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::SharedNfs,
            RouterChoice::WeightedLeastConnections,
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::PartitionedByType {
                segregate_dynamic: false,
            },
            RouterChoice::ContentAware { cache_entries: 512 },
            WorkloadKind::A,
        ),
        (
            PlacementPolicy::PartitionedByType {
                segregate_dynamic: true,
            },
            RouterChoice::ContentAware { cache_entries: 512 },
            WorkloadKind::B,
        ),
        (
            PlacementPolicy::PartialReplication {
                segregate_dynamic: true,
                hot_fraction: 0.1,
                copies: 2,
            },
            RouterChoice::ContentAware { cache_entries: 512 },
            WorkloadKind::B,
        ),
    ];
    for (placement, router, workload) in combos {
        let result = quick()
            .placement(placement)
            .router(router)
            .workload(workload)
            .clients(12)
            .build()
            .run();
        assert!(
            result.report.throughput_rps() > 10.0,
            "{placement} + {router}: throughput {}",
            result.report.throughput_rps()
        );
        assert_eq!(
            result.report.misroutes, 0,
            "{placement} + {router}: misroutes"
        );
        assert_eq!(
            result.report.unroutable, 0,
            "{placement} + {router}: unroutable"
        );
    }
}

#[test]
fn request_conservation_across_windows() {
    let result = quick().clients(16).build().run();
    let r = &result.report;
    // Within the measured window: everything issued either completed,
    // misrouted, or is still in flight — modulo the in-flight carried in
    // from warm-up, which is bounded by the client count.
    let balance = r.issued as i64 + 16
        - (r.completed as i64 + r.misroutes as i64 + r.in_flight_at_end as i64);
    assert!(
        balance.unsigned_abs() <= 16,
        "request accounting out of balance by {balance}"
    );
}

#[test]
fn heterogeneous_nodes_show_heterogeneous_service() {
    // The same workload on the paper testbed: fast nodes must serve more
    // requests than slow nodes under WLC + full replication.
    let result = quick().clients(48).build().run();
    let nodes = &result.report.nodes;
    let slow: u64 = nodes[..3].iter().map(|n| n.requests).sum();
    let fast: u64 = nodes[5..].iter().map(|n| n.requests).sum();
    assert!(fast > slow, "fast {fast} vs slow {slow}");
}

#[test]
fn video_requests_are_rare_but_heavy() {
    let result = quick()
        .workload(WorkloadKind::B)
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware { cache_entries: 512 })
        .clients(32)
        .windows(SimDuration::from_secs(2), SimDuration::from_secs(20))
        .build()
        .run();
    let report = &result.report;
    if let Some(video) = report.class(RequestClass::Video) {
        let static_class = report.class(RequestClass::Static).expect("static traffic");
        assert!(video.completed < static_class.completed / 20);
        assert!(
            video.mean_response_ms > 10.0 * static_class.mean_response_ms,
            "video {} vs static {}",
            video.mean_response_ms,
            static_class.mean_response_ms
        );
    }
}

#[test]
fn rebalancing_does_not_lose_content() {
    let exp = quick()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware { cache_entries: 512 })
        .clients(24)
        .rebalance(RebalanceConfig {
            threshold: 0.1,
            intervals: 4,
            interval: SimDuration::from_secs(2),
            max_actions: 16,
        })
        .build();
    let result = exp.run();
    // after all rebalancing the measured window still routes everything
    assert_eq!(result.report.unroutable, 0);
    assert_eq!(result.report.misroutes, 0);
    assert!(result.report.throughput_rps() > 10.0);
}

#[test]
fn dispatcher_utilization_is_reported_and_sane() {
    let result = quick().clients(32).build().run();
    let u = result.report.dispatcher_utilization;
    assert!((0.0..=1.0).contains(&u), "dispatcher utilization {u}");
    assert!(u > 0.0, "dispatcher did work");
}

#[test]
fn http_redirection_pays_round_trips() {
    // Same placement and decisions; only the delivery mechanism differs.
    // At WAN RTTs redirection's two extra round trips per request must
    // show up in response time and throughput (§2.1's argument).
    let placement = PlacementPolicy::PartitionedByType {
        segregate_dynamic: false,
    };
    let spliced = quick()
        .placement(placement)
        .router(RouterChoice::ContentAware { cache_entries: 512 })
        .clients(24)
        .build()
        .run();
    let redirected = quick()
        .placement(placement)
        .router(RouterChoice::HttpRedirect {
            cache_entries: 512,
            client_rtt_micros: 40_000, // 40 ms WAN clients
        })
        .clients(24)
        .build()
        .run();
    assert_eq!(redirected.report.misroutes, 0, "redirect is content-aware");
    assert!(
        redirected.report.mean_response_ms() > spliced.report.mean_response_ms() + 50.0,
        "redirect {}ms vs spliced {}ms",
        redirected.report.mean_response_ms(),
        spliced.report.mean_response_ms()
    );
    assert!(redirected.report.throughput_rps() < spliced.report.throughput_rps());
}

#[test]
fn replication_provides_availability_under_node_failure() {
    // §1.2: "The administrator can replicate some critical content to
    // multiple nodes for achieving high availability." Single-copy
    // partitioning loses content when its node dies; partial replication
    // keeps the hot set reachable.
    use cpms_dispatch::ContentAwareRouter;
    use cpms_sim::{placement, SimConfig, Simulation};
    use cpms_workload::{CorpusBuilder, WorkloadSpec};

    // Mutable content is deliberately single-copy (§4) and so can never
    // survive its node; keep it out of an availability check that wants
    // two copies of *everything*.
    let corpus = CorpusBuilder::small_site()
        .seed(21)
        .mutable_fraction(0.0)
        .build();
    let specs = vec![NodeSpec::testbed_350(); 4];

    let run = |replicated: bool| {
        let table = if replicated {
            let mut t =
                placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes);
            placement::replicate_hot_content(&mut t, &corpus, &specs, 1.0, 2);
            t
        } else {
            placement::partition_by_type(&corpus, &specs, placement::StaticSpread::AllNodes)
        };
        let mut config = SimConfig::builder();
        config.nodes(specs.clone()).clients(8).seed(5);
        let mut sim = Simulation::new(
            config.build(),
            &corpus,
            table,
            Box::new(ContentAwareRouter::new(256)),
            &WorkloadSpec::workload_a(),
        );
        let _ = sim.run_window(SimDuration::from_secs(2));
        sim.set_node_alive(NodeId(0), false); // kill a node
        sim.run_window(SimDuration::from_secs(6))
    };

    let single_copy = run(false);
    let replicated = run(true);
    assert!(
        single_copy.unroutable > 0,
        "single-copy placement must lose content with its node"
    );
    assert_eq!(
        replicated.unroutable, 0,
        "two copies of everything keep the site fully available"
    );
    assert!(replicated.throughput_rps() > single_copy.throughput_rps());
}

#[test]
fn checked_in_cluster_config_loads_and_runs() {
    let json = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../configs/paper_testbed.json"),
    )
    .expect("configs/paper_testbed.json present");
    let config: cpms_model::ClusterConfig = serde_json::from_str(&json).expect("parses");
    assert_eq!(config.nodes.len(), 9, "the paper's nine machines");
    let result = Experiment::builder()
        .corpus_objects(500)
        .windows(SimDuration::from_secs(1), SimDuration::from_secs(4))
        .clients(8)
        .cluster_config(&config)
        .build()
        .run();
    assert_eq!(result.placement, "partitioned");
    assert!(result.report.throughput_rps() > 10.0);
    // Display renders without panicking and mentions the headline number.
    let text = result.report.to_string();
    assert!(text.contains("req/s"));
}
