//! End-to-end tests for the content store + shipping pipeline: real
//! bytes over real (and really hostile) wires, with the system's core
//! promise under test — a URL-table generation never routes to a node
//! whose store has not committed the bytes.

use cpms_mgmt::store::NodeStore;
use cpms_mgmt::{
    AntiEntropyAuditor, Broker, BrokerHandle, BrokerState, Cluster, Controller, Drift,
};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_store::{
    fnv64, synthetic_body, ContentStore, ShipPort, ShipReply, ShipRequest, Shipper, StoreClient,
    StoreService,
};
use cpms_wire::{FaultPlan, FaultyTransport, InProcServer, Transport, WireError};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

mod util;
use util::{retry, with_deadline};

/// Whole-test deadline: generous against slow CI, far under the harness
/// timeout, and it names the wedged test in the panic.
const TEST_DEADLINE: Duration = Duration::from_secs(90);

fn path(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// Scenario 1 — a multi-chunk corpus shipped through 15% frame loss over real TCP
/// completes, with zero checksum rejections: loss costs retries and
/// resumes, never integrity.
#[test]
fn lossy_tcp_shipping_preserves_integrity() {
    with_deadline("lossy_tcp_shipping", TEST_DEADLINE, || {
        let handles: Vec<BrokerHandle> = (0..3u16)
            .map(|n| {
                Broker::bind_wrapped(
                    "127.0.0.1:0".parse().unwrap(),
                    BrokerState::from_meta(NodeStore::new(NodeId(n), 1 << 20)),
                    move |t| {
                        Arc::new(FaultyTransport::new(
                            t,
                            FaultPlan::lossy(0x10_55 + u64::from(n), 0.15),
                        )) as Arc<dyn Transport>
                    },
                )
                .unwrap()
            })
            .collect();
        let mut controller = Controller::new(Cluster::from_handles(handles));

        // 20 KB at the default 4 KiB chunk = 5 chunks per replica.
        for (i, nodes) in [&[0u16, 1][..], &[1, 2], &[0, 1, 2]].iter().enumerate() {
            let nodes: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
            // Publish rolls itself back on failure, so a budgeted retry is
            // safe — and the budget's diagnostics record every wire error
            // if the loss plan ever exhausts the client's own retries.
            retry(
                &format!("publish /lossy/{i}.bin through 15% loss"),
                3,
                || {
                    controller.publish(
                        &path(&format!("/lossy/{i}.bin")),
                        ContentId(i as u32),
                        ContentKind::OtherStatic,
                        20_000,
                        Priority::Normal,
                        &nodes,
                    )
                },
            );
        }

        let mut rejected = 0;
        for n in 0..3u16 {
            let handle = controller.cluster().broker(NodeId(n)).unwrap();
            match handle.ship(&ShipRequest::Stat).unwrap() {
                ShipReply::Stats(s) => rejected += s.rejected_chunks,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(rejected, 0, "a lossy wire must never corrupt a chunk");
        let report = AntiEntropyAuditor::new().audit(&controller);
        assert!(report.is_clean(), "{report:?}");
        controller.shutdown();
    })
}

/// A port that corrupts the payload of each chunk the first time it
/// crosses, leaving the announced checksum honest — so the receiver
/// must detect the mismatch and reject the chunk.
struct CorruptingPort<P> {
    inner: P,
    poisoned_once: Mutex<HashSet<u32>>,
}

impl<P: ShipPort> ShipPort for CorruptingPort<P> {
    fn ship(&self, request: &ShipRequest) -> Result<ShipReply, WireError> {
        if let ShipRequest::Chunk {
            transfer,
            index,
            data,
            checksum,
        } = request
        {
            let mut seen = self.poisoned_once.lock().unwrap();
            if seen.insert(*index) {
                // Flip the first byte of the hex payload.
                let mut bad = data.clone();
                let replacement = if bad.starts_with("00") { "ff" } else { "00" };
                bad.replace_range(0..2, replacement);
                return self.inner.ship(&ShipRequest::Chunk {
                    transfer: *transfer,
                    index: *index,
                    data: bad,
                    checksum: *checksum,
                });
            }
        }
        self.inner.ship(request)
    }
}

/// Scenario 2 — poisoned chunks are rejected by the per-chunk checksum and
/// re-sent; the committed object is byte-identical and verifies.
#[test]
fn poisoned_chunks_are_rejected_and_resent() {
    with_deadline("poisoned_chunks", TEST_DEADLINE, || {
        let store = Arc::new(ContentStore::in_memory(NodeId(0), 1 << 20));
        let (transport, server) =
            InProcServer::spawn_named(StoreService::new(Arc::clone(&store)), "poisoned-store");
        std::mem::forget(server);
        let port = CorruptingPort {
            inner: StoreClient::new(Arc::new(transport)),
            poisoned_once: Mutex::new(HashSet::new()),
        };

        let body = synthetic_body(ContentId(9), 18_000); // 5 chunks
        let target = path("/poisoned/payload.bin");
        let outcome = Shipper::new()
            .push(&port, &target, ContentId(9), 0, &body, false)
            .expect("every chunk heals on the second attempt");

        assert_eq!(outcome.chunks_sent, 5);
        assert!(
            outcome.chunk_retries >= 5,
            "each chunk was rejected once then re-sent: {outcome:?}"
        );
        let stats = store.stats();
        assert_eq!(stats.rejected_chunks, 5, "receiver counted every poison");
        assert_eq!(store.read(&target).unwrap(), body, "committed bytes honest");
        assert_eq!(store.verify(&target).unwrap().checksum, fnv64(&body));
    })
}

/// Scenario 3 — anti-entropy converges injected drift — a deleted replica, an
/// orphan object, and a stale copy — back to zero.
#[test]
fn anti_entropy_repairs_injected_drift() {
    with_deadline("anti_entropy_repairs", TEST_DEADLINE, || {
        let stores: Vec<Arc<ContentStore>> = (0..3u16)
            .map(|n| Arc::new(ContentStore::in_memory(NodeId(n), 1 << 20)))
            .collect();
        let handles: Vec<BrokerHandle> = stores
            .iter()
            .enumerate()
            .map(|(n, store)| {
                Broker::spawn_state(BrokerState::with_content(
                    NodeStore::new(NodeId(n as u16), 1 << 20),
                    Arc::clone(store),
                ))
            })
            .collect();
        let mut controller = Controller::new(Cluster::from_handles(handles));

        let all = [NodeId(0), NodeId(1), NodeId(2)];
        for (i, name) in ["/a.html", "/b.html", "/c.html"].iter().enumerate() {
            controller
                .publish(
                    &path(name),
                    ContentId(i as u32),
                    ContentKind::StaticHtml,
                    6_000,
                    Priority::Normal,
                    &all,
                )
                .unwrap();
        }
        let auditor = AntiEntropyAuditor::new();
        assert!(auditor.audit(&controller).is_clean());

        // Inject drift directly into the stores, behind the ledgers' and the
        // URL table's backs — the way crashes and bit rot would.
        stores[1].delete(&path("/a.html")).unwrap(); // missing replica
        stores[0]
            .put(
                &path("/zombie.html"),
                ContentId(99),
                0,
                b"left behind",
                false,
            )
            .unwrap(); // orphan
        stores[2].corrupt_for_test(&path("/b.html")).unwrap(); // stale copy

        let found = auditor.audit(&controller);
        assert_eq!(found.drift_count(), 3, "{found:?}");
        assert!(found
            .drift
            .iter()
            .any(|d| matches!(d, Drift::MissingObject { node, .. } if *node == NodeId(1))));
        assert!(found
            .drift
            .iter()
            .any(|d| matches!(d, Drift::OrphanObject { node, .. } if *node == NodeId(0))));
        assert!(found
            .drift
            .iter()
            .any(|d| matches!(d, Drift::StaleObject { node, .. } if *node == NodeId(2))));

        let repaired = auditor.repair(&mut controller);
        assert_eq!(repaired.repaired, 3, "{repaired:?}");
        assert!(repaired.failed_repairs.is_empty());
        assert!(auditor.audit(&controller).is_clean(), "drift converged");

        // The repairs restored real bytes, not just bookkeeping.
        assert_eq!(
            stores[1].read(&path("/a.html")).unwrap(),
            synthetic_body(ContentId(0), 6_000)
        );
        assert!(!stores[0].contains(&path("/zombie.html")));
        assert_eq!(
            stores[2].verify(&path("/b.html")).unwrap().checksum,
            fnv64(&synthetic_body(ContentId(1), 6_000))
        );
        controller.shutdown();
    })
}

/// A transport that lets traffic through until it has seen `kill_after`
/// chunk frames, then drops the connection — and stays dead until the
/// test heals it.
#[derive(Debug)]
struct GuillotineTransport {
    inner: Arc<dyn Transport>,
    armed: AtomicBool,
    dead: Arc<AtomicBool>,
    chunk_frames: AtomicU32,
    kill_after: u32,
}

impl Transport for GuillotineTransport {
    fn call(&self, request: &[u8], deadline: Duration) -> Result<Vec<u8>, WireError> {
        if self.dead.load(Ordering::Acquire) {
            return Err(WireError::Closed);
        }
        // Frames are length-prefixed JSON; a chunk upload is the only
        // frame whose body mentions the `Chunk` request variant.
        let is_chunk = request.windows(7).any(|w| w == b"\"Chunk\"");
        if is_chunk && self.armed.load(Ordering::Acquire) {
            let seen = self.chunk_frames.fetch_add(1, Ordering::AcqRel) + 1;
            if seen > self.kill_after {
                self.armed.store(false, Ordering::Release);
                self.dead.store(true, Ordering::Release);
                return Err(WireError::Closed);
            }
        }
        self.inner.call(request, deadline)
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
}

/// Scenario 4 — commit-before-publish: a transfer killed mid-flight leaves staged
/// bytes but no committed object, and **no URL-table generation ever
/// routes the path to the target** — verified by a concurrent snapshot
/// reader sampling throughout the failure and the subsequent recovery.
#[test]
fn killed_transfer_never_publishes_uncommitted_replica() {
    with_deadline("killed_transfer", TEST_DEADLINE, || {
        let target_store = Arc::new(ContentStore::in_memory(NodeId(1), 1 << 20));
        let dead = Arc::new(AtomicBool::new(false));
        let handles = vec![
            Broker::spawn_state(BrokerState::from_meta(NodeStore::new(NodeId(0), 1 << 20))),
            {
                let dead = Arc::clone(&dead);
                Broker::bind_wrapped(
                    "127.0.0.1:0".parse().unwrap(),
                    BrokerState::with_content(
                        NodeStore::new(NodeId(1), 1 << 20),
                        Arc::clone(&target_store),
                    ),
                    move |t| {
                        Arc::new(GuillotineTransport {
                            inner: t,
                            armed: AtomicBool::new(true),
                            dead,
                            chunk_frames: AtomicU32::new(0),
                            kill_after: 2,
                        }) as Arc<dyn Transport>
                    },
                )
                .unwrap()
            },
        ];
        let mut controller = Controller::new(Cluster::from_handles(handles));

        let object = path("/ship/payload.bin");
        controller
            .publish(
                &object,
                ContentId(0),
                ContentKind::OtherStatic,
                20_000, // 5 chunks: the guillotine falls mid-stream
                Priority::Normal,
                &[NodeId(0)],
            )
            .unwrap();

        // A concurrent reader: at every sampled generation, if the table
        // routes the object to n1 then n1's store must already hold the
        // committed bytes.
        let snapshots = controller.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let violations = Arc::new(AtomicU32::new(0));
        let reader = {
            let store = Arc::clone(&target_store);
            let stop = Arc::clone(&stop);
            let violations = Arc::clone(&violations);
            let object = object.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let table = snapshots.load();
                    if let Some(entry) = table.lookup(&object) {
                        if entry.locations().contains(&NodeId(1)) && !store.contains(&object) {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::yield_now();
                }
            })
        };

        // The replicate dies mid-transfer: two chunks land, then the wire
        // is cut for good (every resume hits the dead wire).
        let err = controller
            .replicate(&object, NodeId(1))
            .expect_err("guillotined transfer must fail");
        let _ = err; // typed MgmtError; the invariants below are the point
        assert!(
            !target_store.contains(&object),
            "no commit happened on the severed node"
        );
        assert!(
            target_store.staged_progress(&object).unwrap_or(0) > 0,
            "the kill was mid-flight: some chunks were staged"
        );
        let entry = controller.table().lookup(&object).cloned().unwrap();
        assert_eq!(entry.locations(), &[NodeId(0)], "table never saw n1");

        // Heal the wire; the retry resumes from the staged chunks and the
        // replica goes live only after its commit. Budgeted so a slow
        // reconnect leaves an attempt history instead of a bare unwrap.
        dead.store(false, Ordering::Release);
        retry("replicate over the healed wire", 3, || {
            controller.replicate(&object, NodeId(1))
        });
        assert!(target_store.contains(&object));
        let stats = target_store.stats();
        assert!(
            stats.resumed_transfers >= 1,
            "second attempt resumed the staged transfer: {stats:?}"
        );
        let entry = controller.table().lookup(&object).cloned().unwrap();
        assert!(entry.locations().contains(&NodeId(1)));

        stop.store(true, Ordering::Release);
        reader.join().unwrap();
        assert_eq!(
            violations.load(Ordering::Relaxed),
            0,
            "no generation ever routed to a node lacking committed bytes"
        );
        assert!(controller.verify_consistency().is_empty());
        assert!(AntiEntropyAuditor::new().audit(&controller).is_clean());
        controller.shutdown();
    })
}
