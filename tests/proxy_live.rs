//! Live-socket integration: the content-aware proxy and the L4 baseline
//! fronting real origin servers, including a management-driven migration
//! while traffic flows.

use cpms_httpd::client::HttpClient;
use cpms_httpd::{ContentAwareProxy, L4Proxy, OriginServer, SiteContent};
use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_urltable::{UrlEntry, UrlTable};
use std::time::Duration;

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// Partitioned site over three origin nodes.
fn partitioned_cluster() -> (Vec<OriginServer>, UrlTable) {
    let mut html = SiteContent::new();
    html.add_static("/index.html", b"<html>home</html>".to_vec());
    html.add_static("/about.html", b"<html>about</html>".to_vec());

    let mut img = SiteContent::new();
    img.add_static("/img/logo.gif", vec![0x47; 8 * 1024]);

    let mut cgi = SiteContent::new();
    cgi.add_dynamic("/cgi-bin/q.cgi", Duration::from_millis(4), 256);

    let origins = vec![
        OriginServer::start(NodeId(0), html).unwrap(),
        OriginServer::start(NodeId(1), img).unwrap(),
        OriginServer::start(NodeId(2), cgi).unwrap(),
    ];

    let mut table = UrlTable::new();
    let rows: [(&str, ContentKind, u16); 4] = [
        ("/index.html", ContentKind::StaticHtml, 0),
        ("/about.html", ContentKind::StaticHtml, 0),
        ("/img/logo.gif", ContentKind::Image, 1),
        ("/cgi-bin/q.cgi", ContentKind::Cgi, 2),
    ];
    for (i, (path, kind, node)) in rows.iter().enumerate() {
        table
            .insert(
                p(path),
                UrlEntry::new(ContentId(i as u32), *kind, 1024).with_locations([NodeId(*node)]),
            )
            .unwrap();
    }
    (origins, table)
}

#[test]
fn content_aware_proxy_serves_partitioned_site() {
    let (origins, table) = partitioned_cluster();
    let backends = origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start(table, backends, 2).unwrap();

    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(
        client.get("/index.html").unwrap().body,
        b"<html>home</html>"
    );
    assert_eq!(client.get("/img/logo.gif").unwrap().body.len(), 8 * 1024);
    let dynamic = client.get("/cgi-bin/q.cgi").unwrap();
    assert_eq!(dynamic.status, 200);
    assert_eq!(dynamic.body.len(), 256);

    // each request reached exactly the node hosting the content
    assert_eq!(origins[0].served(), 1);
    assert_eq!(origins[1].served(), 1);
    assert_eq!(origins[2].served(), 1);
    assert_eq!(proxy.relayed(), 3);
    assert_eq!(proxy.unroutable(), 0);
}

#[test]
fn l4_baseline_cannot_serve_partitioned_site() {
    let (origins, _table) = partitioned_cluster();
    let backends: Vec<_> = origins.iter().map(|o| o.addr()).collect();
    let l4 = L4Proxy::start(backends).unwrap();

    // The same path requested over several connections round-robins over
    // nodes; only one of three holds it.
    let mut ok = 0;
    let mut missing = 0;
    for _ in 0..9 {
        let mut client = HttpClient::connect(l4.addr()).unwrap();
        match client.get("/index.html").unwrap().status {
            200 => ok += 1,
            404 => missing += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    assert!(ok > 0, "some connections landed on the right node");
    assert!(
        missing > 0,
        "content-blind routing must miss on partitioned placement"
    );
}

#[test]
fn migration_under_live_traffic() {
    let (origins, table) = partitioned_cluster();
    let backends = origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start(table, backends, 2).unwrap();
    let addr = proxy.addr();
    let publisher = proxy.publisher();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let failures = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Four clients hammer the page throughout the migration.
        for _ in 0..4 {
            scope.spawn(|| {
                let mut client = HttpClient::connect(addr).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = client.get("/index.html").unwrap();
                    if resp.status != 200 {
                        failures.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
        }
        // Management migrates /index.html from node 0 to node 2 with a
        // copy-then-switch-then-drop sequence (replicate; update table;
        // offload) so there is no window without a copy.
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(30));
            origins[2].add_static("/index.html", b"<html>home</html>".to_vec());
            publisher
                .update(|t| t.add_location(&p("/index.html"), NodeId(2)))
                .unwrap();
            std::thread::sleep(Duration::from_millis(30));
            publisher
                .update(|t| t.remove_location(&p("/index.html"), NodeId(0)))
                .unwrap();
            // only after the table stops routing there is the copy deleted
            std::thread::sleep(Duration::from_millis(30));
            origins[0].remove(&p("/index.html"));
            std::thread::sleep(Duration::from_millis(30));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });

    assert_eq!(
        failures.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "copy-then-switch migration must be hitless"
    );
    assert!(origins[2].served() > 0, "traffic moved to the new node");
}

#[test]
fn proxy_prefers_less_loaded_replica() {
    // Two replicas, one of which is slow (dynamic with a delay standing in
    // for an overloaded node): in-flight balancing shifts traffic to the
    // fast one.
    let mut fast = SiteContent::new();
    fast.add_static("/page", b"fast".to_vec());
    let mut slow = SiteContent::new();
    slow.add_dynamic("/page", Duration::from_millis(30), 4);

    let fast_origin = OriginServer::start(NodeId(0), fast).unwrap();
    let slow_origin = OriginServer::start(NodeId(1), slow).unwrap();

    let mut table = UrlTable::new();
    table
        .insert(
            p("/page"),
            UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 4)
                .with_locations([NodeId(0), NodeId(1)]),
        )
        .unwrap();
    let proxy =
        ContentAwareProxy::start(table, vec![fast_origin.addr(), slow_origin.addr()], 2).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..30 {
                    assert_eq!(client.get("/page").unwrap().status, 200);
                }
            });
        }
    });
    assert!(
        fast_origin.served() > slow_origin.served() * 2,
        "fast replica should take most traffic: fast={} slow={}",
        fast_origin.served(),
        slow_origin.served()
    );
}

#[test]
fn proxy_survives_many_sequential_connections() {
    let (origins, table) = partitioned_cluster();
    let backends = origins.iter().map(|o| o.addr()).collect();
    let proxy = ContentAwareProxy::start(table, backends, 2).unwrap();
    for _ in 0..50 {
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/about.html").unwrap().status, 200);
        // client dropped: proxy connection thread unwinds
    }
    assert_eq!(proxy.relayed(), 50);
}
