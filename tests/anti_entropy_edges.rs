//! Anti-entropy edge cases: the auditor and repair loop against the
//! degenerate stores the paper's management plane must survive — a
//! node wiped empty under a non-empty URL table, zero-length objects
//! (where "has the bytes" and "has no bytes" look identical), and a
//! manifest corrupted to contents that parse fine but lie about the
//! object they describe.

use cpms_mgmt::store::NodeStore;
use cpms_mgmt::{
    AntiEntropyAuditor, Broker, BrokerHandle, BrokerState, Cluster, Controller, Drift,
};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_store::{fnv64, synthetic_body, ContentStore};
use cpms_urltable::UrlEntry;
use std::sync::Arc;
use std::time::Duration;

// This target uses only the deadline half of the shared helpers.
#[allow(dead_code)]
mod util;
use util::with_deadline;

/// Whole-test deadline: generous against slow CI, far under the harness
/// timeout, and it names the wedged test in the panic.
const TEST_DEADLINE: Duration = Duration::from_secs(60);

fn path(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// Builds a 3-node cluster over caller-held in-memory stores so tests
/// can reach behind the brokers' backs.
fn cluster_with_stores() -> (Controller, Vec<Arc<ContentStore>>) {
    let stores: Vec<Arc<ContentStore>> = (0..3u16)
        .map(|n| Arc::new(ContentStore::in_memory(NodeId(n), 1 << 20)))
        .collect();
    let handles: Vec<BrokerHandle> = stores
        .iter()
        .enumerate()
        .map(|(n, store)| {
            Broker::spawn_state(BrokerState::with_content(
                NodeStore::new(NodeId(n as u16), 1 << 20),
                Arc::clone(store),
            ))
        })
        .collect();
    (Controller::new(Cluster::from_handles(handles)), stores)
}

/// A node whose store was wiped empty while the URL table still routes
/// every object to it: the auditor must report one missing copy per
/// object, and repair must re-ship all of them from healthy replicas.
#[test]
fn wiped_store_under_nonempty_table_is_fully_reshipped() {
    with_deadline("wiped_store", TEST_DEADLINE, || {
        let (mut controller, stores) = cluster_with_stores();
        let all = [NodeId(0), NodeId(1), NodeId(2)];
        for (i, name) in ["/w/a.html", "/w/b.html", "/w/c.html"].iter().enumerate() {
            controller
                .publish(
                    &path(name),
                    ContentId(i as u32),
                    ContentKind::StaticHtml,
                    4_000,
                    Priority::Normal,
                    &all,
                )
                .unwrap();
        }

        // Wipe n1 completely — a reprovisioned disk, an rm -rf, a fresh
        // container: the store is empty, the table has never heard.
        for (p, _) in stores[1].inventory() {
            stores[1].delete(&p).unwrap();
        }
        assert!(stores[1].inventory().is_empty());

        let auditor = AntiEntropyAuditor::new();
        let found = auditor.audit(&controller);
        assert_eq!(found.drift_count(), 3, "{found:?}");
        assert!(
            found
                .drift
                .iter()
                .all(|d| matches!(d, Drift::MissingObject { node, .. } if *node == NodeId(1))),
            "all drift is missing copies on the wiped node: {found:?}"
        );

        let repaired = auditor.repair(&mut controller);
        assert_eq!(repaired.repaired, 3, "{repaired:?}");
        assert!(repaired.failed_repairs.is_empty());
        assert!(auditor.audit(&controller).is_clean());
        for (i, name) in ["/w/a.html", "/w/b.html", "/w/c.html"].iter().enumerate() {
            assert_eq!(
                stores[1].read(&path(name)).unwrap(),
                synthetic_body(ContentId(i as u32), 4_000),
                "repair restored real bytes for {name}"
            );
        }
        controller.shutdown();
    })
}

/// Wiping the *only* copy is the unrepairable case: the auditor still
/// reports the drift, and repair records an explicit failure instead of
/// silently converging or fabricating bytes.
#[test]
fn wiping_the_last_copy_is_reported_not_papered_over() {
    with_deadline("last_copy_wipe", TEST_DEADLINE, || {
        let (mut controller, stores) = cluster_with_stores();
        controller
            .publish(
                &path("/solo.html"),
                ContentId(9),
                ContentKind::StaticHtml,
                2_000,
                Priority::Normal,
                &[NodeId(2)],
            )
            .unwrap();
        stores[2].delete(&path("/solo.html")).unwrap();

        let auditor = AntiEntropyAuditor::new();
        let found = auditor.audit(&controller);
        assert_eq!(found.drift_count(), 1, "{found:?}");

        let outcome = auditor.repair(&mut controller);
        assert_eq!(outcome.repaired, 0);
        assert_eq!(
            outcome.failed_repairs.len(),
            1,
            "no healthy source exists: {outcome:?}"
        );
        assert!(
            !auditor.audit(&controller).is_clean(),
            "unrepairable drift must keep the audit dirty"
        );
        controller.shutdown();
    })
}

/// Zero-length objects: an empty body must audit clean (absence of
/// bytes is not absence of the object), and growing one by a single
/// corrupt byte must be caught and repaired back to empty.
#[test]
fn zero_length_objects_audit_and_repair() {
    with_deadline("zero_length_objects", TEST_DEADLINE, || {
        let (mut controller, stores) = cluster_with_stores();
        let empty = path("/zero.bin");
        controller
            .publish_bytes(
                &empty,
                ContentId(0),
                ContentKind::OtherStatic,
                Priority::Normal,
                &[NodeId(0), NodeId(1)],
                b"",
            )
            .expect("zero-length objects publish like any other");
        assert_eq!(stores[0].read(&empty).unwrap(), b"");

        let auditor = AntiEntropyAuditor::new();
        assert!(
            auditor.audit(&controller).is_clean(),
            "an empty object is not drift"
        );

        // Corruption grows the empty object by one byte.
        stores[1].corrupt_for_test(&empty).unwrap();
        let found = auditor.audit(&controller);
        assert_eq!(found.drift_count(), 1, "{found:?}");
        assert!(
            found.drift.iter().all(|d| d.node() == NodeId(1)),
            "drift pinned to the corrupted replica: {found:?}"
        );

        let repaired = auditor.repair(&mut controller);
        assert_eq!(repaired.repaired, 1, "{repaired:?}");
        assert!(auditor.audit(&controller).is_clean());
        assert_eq!(
            stores[1].read(&empty).unwrap(),
            b"",
            "repair restored the zero-length body"
        );
        controller.shutdown();
    })
}

/// A manifest rewritten to valid-but-stale contents: it parses, its
/// record survives reopen (the object file's size still matches), but
/// its checksum lies. Deep verification must flag the copy as stale and
/// repair must re-ship it from the honest replica.
#[test]
fn stale_manifest_record_is_caught_by_deep_verify() {
    with_deadline("stale_manifest", TEST_DEADLINE, || {
        let dir = std::env::temp_dir().join(format!(
            "cpms-lab-test-stale-manifest-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let object = path("/m/stale.html");
        let body = synthetic_body(ContentId(7), 4_096);
        {
            let store = ContentStore::open(NodeId(0), &dir, 1 << 20).unwrap();
            store.put(&object, ContentId(7), 0, &body, false).unwrap();
        } // drop flushes the manifest

        // Corrupt the manifest to *valid* JSON with a wrong checksum —
        // the record still loads (size matches the object file), it
        // just no longer describes the bytes on disk.
        let manifest = dir.join("manifest.json");
        let honest = fnv64(&body);
        let text = std::fs::read_to_string(&manifest).unwrap();
        assert!(
            text.contains(&honest.to_string()),
            "manifest records the checksum"
        );
        let tampered = text.replace(&honest.to_string(), &(honest ^ 1).to_string());
        std::fs::write(&manifest, tampered).unwrap();

        let stale_store = Arc::new(ContentStore::open(NodeId(0), &dir, 1 << 20).unwrap());
        assert!(
            stale_store.contains(&object),
            "same-size records survive reopen — that is the trap"
        );

        // An honest replica elsewhere, and a table that knows the truth.
        let good_store = Arc::new(ContentStore::in_memory(NodeId(1), 1 << 20));
        good_store
            .put(&object, ContentId(7), 0, &body, false)
            .unwrap();
        let handles = vec![
            Broker::spawn_state(BrokerState::with_content(
                NodeStore::new(NodeId(0), 1 << 20),
                Arc::clone(&stale_store),
            )),
            Broker::spawn_state(BrokerState::with_content(
                NodeStore::new(NodeId(1), 1 << 20),
                Arc::clone(&good_store),
            )),
        ];
        let mut controller = Controller::new(Cluster::from_handles(handles));
        controller
            .publisher()
            .update(|t| {
                t.insert(
                    object.clone(),
                    UrlEntry::new(ContentId(7), ContentKind::StaticHtml, body.len() as u64)
                        .with_locations([NodeId(0), NodeId(1)])
                        .with_checksum(honest),
                )
            })
            .unwrap();

        let auditor = AntiEntropyAuditor::new();
        let found = auditor.audit(&controller);
        assert_eq!(found.drift_count(), 1, "{found:?}");
        assert!(
            found
                .drift
                .iter()
                .any(|d| matches!(d, Drift::StaleObject { node, .. } if *node == NodeId(0))),
            "the lying manifest reads as a stale copy: {found:?}"
        );

        let repaired = auditor.repair(&mut controller);
        assert_eq!(repaired.repaired, 1, "{repaired:?}");
        assert!(auditor.audit(&controller).is_clean());
        assert_eq!(
            stale_store.read(&object).unwrap(),
            body,
            "re-shipped bytes verify against the honest checksum"
        );
        assert_eq!(stale_store.verify(&object).unwrap().checksum, honest);

        controller.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    })
}
