//! Shared deflaking helpers for the wire-facing integration suites:
//! whole-test deadlines (a wedged daemon or lost wakeup fails fast with
//! a message instead of hanging the build) and bounded retry budgets
//! that record every failed attempt for the panic diagnostics.

use std::sync::mpsc;
use std::time::Duration;

/// Runs `body` under a whole-test deadline on a named watchdog thread.
/// Panics from the body propagate unchanged; blowing the deadline
/// panics with `label` so a hung test names itself instead of eating
/// the harness timeout.
pub fn with_deadline<T: Send + 'static>(
    label: &str,
    deadline: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (done_tx, done_rx) = mpsc::channel();
    let worker = std::thread::Builder::new()
        .name(label.to_string())
        .spawn(move || {
            let out = body();
            let _ = done_tx.send(());
            out
        })
        .expect("spawn watchdog worker");
    match done_rx.recv_timeout(deadline) {
        // Finished (sender used) or panicked (sender dropped): join to
        // collect the value or re-raise the panic.
        Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => match worker.join() {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        },
        Err(mpsc::RecvTimeoutError::Timeout) => panic!(
            "{label}: exceeded its {deadline:?} whole-test deadline — \
             likely a wedged wire retry or an unreaped daemon"
        ),
    }
}

/// Retries a fallible step up to `budget` times with a short backoff,
/// collecting each failure. Exhausting the budget panics with the full
/// attempt history so a flaky wire leaves evidence, not a bare unwrap.
pub fn retry<T, E: std::fmt::Debug>(
    label: &str,
    budget: u32,
    mut attempt: impl FnMut() -> Result<T, E>,
) -> T {
    assert!(budget > 0, "retry budget must allow at least one attempt");
    let mut failures: Vec<String> = Vec::new();
    for round in 1..=budget {
        match attempt() {
            Ok(value) => {
                if round > 1 {
                    eprintln!("{label}: succeeded on attempt {round}/{budget}");
                }
                return value;
            }
            Err(e) => {
                failures.push(format!("attempt {round}: {e:?}"));
                std::thread::sleep(Duration::from_millis(25 * u64::from(round)));
            }
        }
    }
    panic!(
        "{label}: retry budget of {budget} exhausted:\n  {}",
        failures.join("\n  ")
    );
}
