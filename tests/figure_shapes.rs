//! Regression tests on the *shapes* of the paper's figures: orderings and
//! rough ratios must hold on reduced-size runs (the bench binaries run the
//! full-scale versions).

use cpms_core::prelude::*;

const CLIENTS: [u32; 3] = [16, 48, 96];

fn base() -> cpms_core::ExperimentBuilder {
    Experiment::builder()
        .corpus_objects(8_700)
        .nodes(NodeSpec::paper_testbed())
        .windows(SimDuration::from_secs(5), SimDuration::from_secs(15))
        .seed(7)
}

/// Figure 2: partitioned + content-aware > full replication > shared NFS,
/// at every offered load, for the static workload.
#[test]
fn figure2_ordering_holds() {
    let full = base()
        .placement(PlacementPolicy::FullReplication)
        .router(RouterChoice::WeightedLeastConnections)
        .workload(WorkloadKind::A)
        .build()
        .sweep_clients(&CLIENTS);
    let nfs = base()
        .placement(PlacementPolicy::SharedNfs)
        .router(RouterChoice::WeightedLeastConnections)
        .workload(WorkloadKind::A)
        .build()
        .sweep_clients(&CLIENTS);
    let partitioned = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .workload(WorkloadKind::A)
        .build()
        .sweep_clients(&CLIENTS);

    for i in 0..CLIENTS.len() {
        let f = full[i].report.throughput_rps();
        let n = nfs[i].report.throughput_rps();
        let p = partitioned[i].report.throughput_rps();
        assert!(
            p > f,
            "clients={}: partitioned ({p:.0}) must beat full replication ({f:.0})",
            CLIENTS[i]
        );
        assert!(
            f > n,
            "clients={}: full replication ({f:.0}) must beat NFS ({n:.0})",
            CLIENTS[i]
        );
    }

    // NFS saturates early: its curve must be nearly flat at high load.
    let nfs_growth = nfs[2].report.throughput_rps() / nfs[0].report.throughput_rps();
    assert!(
        nfs_growth < 1.5,
        "NFS should be bottlenecked (growth {nfs_growth:.2})"
    );

    // The cache-hit mechanism: partitioned nodes must have much better hit
    // rates than fully replicated nodes.
    let hit = |r: &cpms_core::ExperimentResult| {
        r.report.nodes.iter().map(|n| n.cache_hit_rate).sum::<f64>() / r.report.nodes.len() as f64
    };
    assert!(
        hit(&partitioned[2]) > hit(&full[2]) + 0.2,
        "partitioned hit {:.2} vs full {:.2}",
        hit(&partitioned[2]),
        hit(&full[2])
    );
}

/// Figure 3: the proposed system beats full replication under Workload B
/// at every offered load.
#[test]
fn figure3_proposed_system_wins_workload_b() {
    let full = base()
        .placement(PlacementPolicy::FullReplicationCapable)
        .router(RouterChoice::WeightedLeastConnections)
        .workload(WorkloadKind::B)
        .build()
        .sweep_clients(&CLIENTS);
    let proposed = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .workload(WorkloadKind::B)
        .build()
        .sweep_clients(&CLIENTS);

    for i in 0..CLIENTS.len() {
        let f = full[i].report.throughput_rps();
        let p = proposed[i].report.throughput_rps();
        assert!(
            p > f,
            "clients={}: proposed ({p:.0}) must beat full replication ({f:.0})",
            CLIENTS[i]
        );
    }
}

/// Figure 4: at saturation, every class (static, CGI, ASP) gains under
/// content segregation.
#[test]
fn figure4_every_class_gains_at_saturation() {
    let clients = 96;
    let baseline = base()
        .placement(PlacementPolicy::FullReplicationCapable)
        .router(RouterChoice::WeightedLeastConnections)
        .workload(WorkloadKind::B)
        .clients(clients)
        .build()
        .run();
    let proposed = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: true,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 4096,
        })
        .workload(WorkloadKind::B)
        .clients(clients)
        .build()
        .run();

    let gains = cpms_core::report::class_gains(&baseline, &proposed);
    for class in ["static", "cgi", "asp"] {
        let row = gains
            .iter()
            .find(|r| r.class == class)
            .unwrap_or_else(|| panic!("{class} row present"));
        assert!(
            row.gain > 0.0,
            "{class} should gain under segregation, got {:+.0}%",
            row.gain * 100.0
        );
    }
}

/// §5.2: the URL table at paper scale is small and fast.
#[test]
fn sec52_urltable_scale() {
    use cpms_sim::placement;
    use cpms_urltable::TableStats;
    use cpms_workload::CorpusBuilder;

    let corpus = CorpusBuilder::paper_site().seed(1).build();
    let table = placement::partition_by_type(
        &corpus,
        &NodeSpec::paper_testbed(),
        placement::StaticSpread::AllNodes,
    );
    let stats = TableStats::collect(&table);
    assert_eq!(stats.entries, 8_700);
    // Same order of magnitude as the paper's 260 KB (our Rust records are
    // richer than the authors' C structs; stay under ~8x).
    assert!(
        stats.memory_bytes < 8 * 260 * 1024,
        "table memory {} bytes",
        stats.memory_bytes
    );

    // Lookup cost: average well under 10 µs per lookup even in a debug-ish
    // environment would be flaky to assert; assert correctness volume
    // instead and leave timing to the bench binary.
    let mut hits = 0;
    for (path, _) in table.iter().take(1_000) {
        if table.lookup(&path).is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, 1_000);
}
