//! Management-system scenarios spanning crates: the controller driving a
//! broker cluster while the distributor's URL table stays coherent, the
//! §4 mutable-content policy, and distributor failover.
//!
//! Every controller-driven scenario runs twice — once over in-process
//! channel brokers ([`WireMode::InProc`]) and once over real loopback TCP
//! daemons ([`WireMode::Tcp`]) — and must produce *identical* results and
//! URL-table publication generations: the management plane's behavior is
//! transport-invariant.

use cpms_dispatch::failover::{BackupDistributor, Heartbeat, MonitorVerdict};
use cpms_dispatch::mapping::ConnKey;
use cpms_dispatch::relay::Distributor;
use cpms_mgmt::console::RemoteConsole;
use cpms_mgmt::{AutoReplicator, Cluster, Controller, WireMode};
use cpms_model::{ContentId, ContentKind, LoadSample, LoadTracker, NodeId, SimDuration, UrlPath};

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

const BOTH_MODES: [WireMode; 2] = [WireMode::InProc, WireMode::Tcp];

/// A transport-independent digest of a scenario's outcome: the sorted
/// (path, locations) view plus the table publication generation.
type Outcome = (Vec<(UrlPath, Vec<NodeId>)>, u64);

fn outcome(controller: &Controller) -> Outcome {
    let mut view: Vec<(UrlPath, Vec<NodeId>)> = controller
        .table()
        .iter()
        .map(|(path, entry)| (path, entry.locations().to_vec()))
        .collect();
    view.sort();
    (view, controller.publisher().generation())
}

/// Runs `scenario` under both wire modes and asserts the outcomes are
/// byte-identical — same tree, same locations, same generation count.
fn transport_invariant(scenario: impl Fn(WireMode) -> Outcome) {
    let results: Vec<Outcome> = BOTH_MODES.iter().map(|&mode| scenario(mode)).collect();
    assert_eq!(
        results[0], results[1],
        "InProc and Tcp transports must produce identical outcomes"
    );
}

/// The paper's §3.2 walk-through: the administrator edits the tree through
/// the console; the URL table and every broker follow — over channels and
/// over TCP alike.
#[test]
fn admin_operations_propagate_everywhere() {
    transport_invariant(|mode| {
        let mut console =
            RemoteConsole::new(Controller::new(Cluster::start_mode(mode, 4, 10 << 20)));

        // Build a small site spread over the cluster.
        let pages = [
            ("/index.html", ContentKind::StaticHtml, 0u16),
            ("/img/logo.gif", ContentKind::Image, 1),
            ("/cgi-bin/search.cgi", ContentKind::Cgi, 2),
            ("/video/intro.mpg", ContentKind::Video, 3),
        ];
        for (i, (path, kind, node)) in pages.iter().enumerate() {
            console
                .publish(&p(path), ContentId(i as u32), *kind, 4096, &[NodeId(*node)])
                .unwrap();
        }
        assert_eq!(console.tree_view().len(), 4);
        assert!(console.controller().verify_consistency().is_empty());

        // Reorganize: move images under /assets, replicate the home page.
        console.rename(&p("/img"), &p("/assets/img")).unwrap();
        console.replicate(&p("/index.html"), NodeId(3)).unwrap();
        assert!(console.controller().verify_consistency().is_empty());
        let view = console.tree_view();
        assert!(view.iter().any(|r| r.path == p("/assets/img/logo.gif")));
        assert_eq!(
            view.iter()
                .find(|r| r.path == p("/index.html"))
                .unwrap()
                .locations
                .len(),
            2
        );

        // Retire the video.
        console.delete(&p("/video/intro.mpg")).unwrap();
        assert_eq!(console.tree_view().len(), 3);
        assert!(console.controller().verify_consistency().is_empty());
        let result = outcome(console.controller());
        console.shutdown();
        result
    });
}

/// §4: mutable documents stay single-copy, so updates touch one node and
/// versions never diverge.
#[test]
fn mutable_content_stays_consistent_on_one_node() {
    transport_invariant(|mode| {
        let mut console =
            RemoteConsole::new(Controller::new(Cluster::start_mode(mode, 3, 10 << 20)));
        let feed = p("/news/today.html");
        console
            .publish(
                &feed,
                ContentId(1),
                ContentKind::StaticHtml,
                2048,
                &[NodeId(1)],
            )
            .unwrap();
        for expected in 1..=5u64 {
            let version = console.controller_mut().update_content(&feed).unwrap();
            assert_eq!(version, expected, "single copy: one monotone version");
        }
        assert!(console.controller().verify_consistency().is_empty());
        let result = outcome(console.controller());
        console.shutdown();
        result
    });
}

/// §3.3 end to end against live brokers: a load skew produces plan actions
/// that the controller executes, moving real (simulated) files.
#[test]
fn auto_replication_moves_real_copies() {
    transport_invariant(|mode| {
        let mut controller = Controller::new(Cluster::start_mode(mode, 4, 10 << 20));
        for i in 0..6u32 {
            controller
                .publish(
                    &p(&format!("/hot/page{i}.html")),
                    ContentId(i),
                    ContentKind::StaticHtml,
                    1024,
                    cpms_model::Priority::Normal,
                    &[NodeId(0)], // everything starts on node 0
                )
                .unwrap();
        }

        // Fake an interval where node 0 is hammered and 1..3 are idle.
        let mut tracker = LoadTracker::new(vec![1.0; 4]);
        for i in 0..6u32 {
            for _ in 0..20 {
                tracker.record(LoadSample {
                    node: NodeId(0),
                    content: ContentId(i),
                    kind: ContentKind::StaticHtml,
                    processing_time: SimDuration::from_millis(15),
                });
            }
        }
        tracker.record(LoadSample {
            node: NodeId(1),
            content: ContentId(0),
            kind: ContentKind::StaticHtml,
            processing_time: SimDuration::from_millis(1),
        });

        let planner = AutoReplicator::new(0.2).with_max_actions(8);
        let actions = planner.plan(
            &tracker,
            &controller.table(),
            |id| Some(p(&format!("/hot/page{}.html", id.0))),
            |_, _| true,
        );
        assert!(!actions.is_empty(), "skew must trigger actions");
        let results = AutoReplicator::apply_to_controller(&actions, &mut controller);
        assert!(results.iter().all(Result::is_ok), "{results:?}");

        // Replicas now exist beyond node 0, and the files are really there.
        let replicated = controller
            .table()
            .iter()
            .filter(|(_, e)| e.replica_count() > 1)
            .count();
        assert!(replicated > 0);
        assert!(controller.verify_consistency().is_empty());
        // The planner breaks load ties by hash order, so exact target nodes
        // are not run-deterministic; the transport-invariant digest is the
        // shape of the placement (replica count per path) plus generation.
        let (view, generation) = outcome(&controller);
        let result = (
            view.into_iter()
                .map(|(path, locations)| (path, vec![NodeId(locations.len() as u16)]))
                .collect(),
            generation,
        );
        controller.shutdown();
        result
    });
}

/// §2.3: the backup distributor takes over with the primary's replicated
/// connection state and keeps serving live connections.
#[test]
fn distributor_failover_preserves_connections() {
    let mut primary = Distributor::new(3, 4);
    let mut backup = BackupDistributor::new(2);

    // Three live spliced connections.
    let keys: Vec<ConnKey> = (1..=3u16)
        .map(|port| ConnKey {
            client_ip: 0x0A00_0001,
            client_port: port,
        })
        .collect();
    for (i, &k) in keys.iter().enumerate() {
        primary.accept_syn(k, 500, false).unwrap();
        primary.complete_handshake(k).unwrap();
        primary.bind(k, NodeId((i % 3) as u16), 501).unwrap();
    }

    // Heartbeat with a snapshot, then the primary dies.
    backup.on_heartbeat(Heartbeat {
        seq: 1,
        generation: 1,
        snapshot: Some(primary.clone()),
    });
    drop(primary);
    assert_eq!(
        backup.on_heartbeat_missed(),
        MonitorVerdict::Suspicious { missed: 1 }
    );
    assert_eq!(backup.on_heartbeat_missed(), MonitorVerdict::PrimaryFailed);
    assert!(
        !backup.snapshot_is_stale(),
        "snapshot is as fresh as the last beat's generation"
    );

    // Promotion: all three connections survive and can close cleanly.
    let mut new_primary = backup.take_over().expect("replicated state");
    assert_eq!(new_primary.mapping().len(), 3);
    for &k in &keys {
        new_primary.client_fin(k, 700).unwrap();
        new_primary.last_ack(k, 100, 1000).unwrap();
    }
    assert!(new_primary.mapping().is_empty());
    // every pre-forked connection is back in the pool
    for node in 0..3 {
        assert_eq!(new_primary.pool().available(NodeId(node)), 4);
    }
}

/// Broker failure surfaces as explicit errors, and the rest of the cluster
/// keeps working.
#[test]
fn broker_failure_is_contained() {
    for mode in BOTH_MODES {
        let cluster = Cluster::start_mode(mode, 3, 10 << 20);
        // Kill node 1's broker behind the controller's back.
        // (Cluster exposes broker handles read-only; we simulate the failure
        // by dropping its thread through the public kill path.)
        let mut controller = Controller::new(cluster);
        controller
            .publish(
                &p("/a.html"),
                ContentId(1),
                ContentKind::StaticHtml,
                100,
                cpms_model::Priority::Normal,
                &[NodeId(0)],
            )
            .unwrap();

        // Node 0 still accepts operations after node 1 trouble would surface
        // only on ops that touch node 1; verify normal ops keep succeeding.
        controller.replicate(&p("/a.html"), NodeId(2)).unwrap();
        assert!(controller.verify_consistency().is_empty());
        controller.shutdown();
        // After shutdown every operation reports BrokerUnavailable.
        let err = controller.replicate(&p("/a.html"), NodeId(1)).unwrap_err();
        assert!(matches!(err, cpms_mgmt::MgmtError::Agent(_)), "{mode:?}");
    }
}

/// The monitor's verdicts feed the auto-replicator's capability filter:
/// a dead node never receives replicas.
#[test]
fn monitor_excludes_dead_nodes_from_replication() {
    use cpms_mgmt::{AutoReplicator, ClusterMonitor, RebalanceAction};

    for mode in BOTH_MODES {
        let mut controller = Controller::new(Cluster::start_mode(mode, 3, 10 << 20));
        controller
            .publish(
                &p("/hot.html"),
                ContentId(1),
                ContentKind::StaticHtml,
                512,
                cpms_model::Priority::Normal,
                &[NodeId(0)],
            )
            .unwrap();

        // Node 2 dies; the monitor needs two missed probes to call it.
        controller.kill_node(NodeId(2));
        let mut monitor = ClusterMonitor::new(3, 2);
        let _ = monitor.poll_controller(&controller);
        let _ = monitor.poll_controller(&controller);
        assert_eq!(monitor.down_nodes(), vec![NodeId(2)], "{mode:?}");

        // Node 0 is hammered; nodes 1 and 2 idle. Without the monitor the
        // planner might pick node 2 (the coldest: zero samples).
        let mut tracker = LoadTracker::new(vec![1.0; 3]);
        for _ in 0..40 {
            tracker.record(LoadSample {
                node: NodeId(0),
                content: ContentId(1),
                kind: ContentKind::StaticHtml,
                processing_time: SimDuration::from_millis(20),
            });
        }
        tracker.record(LoadSample {
            node: NodeId(1),
            content: ContentId(1),
            kind: ContentKind::StaticHtml,
            processing_time: SimDuration::from_millis(1),
        });

        let down = monitor.down_nodes();
        let planner = AutoReplicator::new(0.2);
        let actions = planner.plan(
            &tracker,
            &controller.table(),
            |id| (id == ContentId(1)).then(|| p("/hot.html")),
            |node, _| !down.contains(&node),
        );
        assert!(!actions.is_empty(), "skew still triggers replication");
        for action in &actions {
            if let RebalanceAction::Replicate { to, .. } = action {
                assert_ne!(*to, NodeId(2), "dead node must not receive replicas");
            }
        }
        let results = AutoReplicator::apply_to_controller(&actions, &mut controller);
        assert!(results.iter().all(Result::is_ok), "{results:?}");
        assert!(controller.verify_consistency().is_empty());
        controller.shutdown();
    }
}
