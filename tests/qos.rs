//! Differentiated QoS (§1.2/§4): critical content pinned to the most
//! capable nodes must get measurably better service, and the per-priority
//! reporting that proves it must be present.

use cpms_core::prelude::*;
use cpms_model::Priority;

fn base() -> cpms_core::ExperimentBuilder {
    Experiment::builder()
        .corpus_objects(4_000)
        .nodes(NodeSpec::paper_testbed())
        .workload(WorkloadKind::A)
        .clients(64)
        .windows(SimDuration::from_secs(5), SimDuration::from_secs(20))
        .seed(13)
}

#[test]
fn per_priority_reports_are_emitted() {
    let result = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 2048,
        })
        .build()
        .run();
    // The corpus marks ~2% of objects critical; both bands must appear.
    let critical = result.report.priority(Priority::Critical);
    let normal = result.report.priority(Priority::Normal);
    assert!(critical.is_some(), "critical traffic reported");
    assert!(normal.is_some(), "normal traffic reported");
    let total: u64 = result.report.priorities.iter().map(|p| p.completed).sum();
    assert_eq!(
        total, result.report.completed,
        "priority bands partition traffic"
    );
}

#[test]
fn qos_pinning_improves_critical_latency() {
    // Identical run except for the placement policy: with QoS pinning,
    // critical objects live (replicated) on the strongest nodes, so their
    // tail latency must improve relative to the unpinned partition.
    let unpinned = base()
        .placement(PlacementPolicy::PartitionedByType {
            segregate_dynamic: false,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 2048,
        })
        .build()
        .run();
    let pinned = base()
        .placement(PlacementPolicy::PartitionedWithQos {
            segregate_dynamic: false,
            critical_copies: 2,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 2048,
        })
        .build()
        .run();

    let crit_unpinned = unpinned
        .report
        .priority(Priority::Critical)
        .expect("critical traffic")
        .p95_response_ms;
    let crit_pinned = pinned
        .report
        .priority(Priority::Critical)
        .expect("critical traffic")
        .p95_response_ms;
    assert!(
        crit_pinned < crit_unpinned,
        "pinning must improve critical p95: {crit_pinned:.1}ms vs {crit_unpinned:.1}ms"
    );
    // and it must not break routing
    assert_eq!(pinned.report.misroutes, 0);
    assert_eq!(pinned.report.unroutable, 0);
}

#[test]
fn critical_beats_normal_under_pinning() {
    let pinned = base()
        .placement(PlacementPolicy::PartitionedWithQos {
            segregate_dynamic: false,
            critical_copies: 3,
        })
        .router(RouterChoice::ContentAware {
            cache_entries: 2048,
        })
        .build()
        .run();
    let critical = pinned
        .report
        .priority(Priority::Critical)
        .expect("critical traffic");
    let normal = pinned
        .report
        .priority(Priority::Normal)
        .expect("normal traffic");
    assert!(
        critical.p95_response_ms < normal.p95_response_ms,
        "critical p95 {:.1}ms should beat normal p95 {:.1}ms",
        critical.p95_response_ms,
        normal.p95_response_ms
    );
}
