//! Event-driven data-plane behaviours the thread-per-connection proxy
//! could not promise: slow clients cost a state machine (not a thread),
//! keep-alive connections multiplex many requests onto the pre-forked
//! pool, and admission control sheds overload with immediate 503s.

use cpms_httpd::client::HttpClient;
use cpms_httpd::{ContentAwareProxy, OriginServer, ProxyConfig, SiteContent};
use cpms_model::{ContentId, ContentKind, NodeId, UrlPath};
use cpms_obs::MetricsRegistry;
use cpms_urltable::{TablePublisher, UrlEntry, UrlTable};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

/// One origin node serving `/a.html` and `/b.html`, and a table routing
/// both to it.
fn single_origin() -> (OriginServer, UrlTable) {
    let mut site = SiteContent::new();
    site.add_static("/a.html", b"alpha-body".to_vec());
    site.add_static("/b.html", b"bravo-body".to_vec());
    let origin = OriginServer::start(NodeId(0), site).unwrap();
    let mut table = UrlTable::new();
    for (i, path) in ["/a.html", "/b.html"].iter().enumerate() {
        table
            .insert(
                p(path),
                UrlEntry::new(ContentId(i as u32), ContentKind::StaticHtml, 16)
                    .with_locations([NodeId(0)]),
            )
            .unwrap();
    }
    (origin, table)
}

/// A slowloris-style client trickling its request head one byte at a
/// time must not stall anyone else: requests on other connections keep
/// completing while the trickle is still mid-head, because the worker
/// parks the slow connection in its state machine instead of blocking a
/// thread on it.
#[test]
fn trickled_request_head_does_not_block_other_connections() {
    let (origin, table) = single_origin();
    let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 2).unwrap();

    let mut slow = TcpStream::connect(proxy.addr()).unwrap();
    slow.set_nodelay(true).unwrap();
    let head = b"GET /a.html HTTP/1.1\r\nHost: x\r\n\r\n";
    let (trickle, rest) = head.split_at(12);

    // Trickle the first bytes with real gaps, interleaving full fast
    // requests on another connection between every byte.
    let mut fast = HttpClient::connect(proxy.addr()).unwrap();
    let fast_started = Instant::now();
    for &byte in trickle {
        slow.write_all(&[byte]).unwrap();
        let resp = fast.get("/b.html").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"bravo-body");
    }
    assert!(
        fast_started.elapsed() < Duration::from_secs(5),
        "fast requests must not queue behind the slow head"
    );

    // Completing the head gets the trickler a normal response.
    slow.write_all(rest).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1024];
    let n = slow.read(&mut buf).unwrap();
    let got = String::from_utf8_lossy(&buf[..n]);
    assert!(
        got.starts_with("HTTP/1.1 200"),
        "trickled request completes: {got:?}"
    );
    assert_eq!(proxy.relayed(), u64::try_from(trickle.len()).unwrap() + 1);
}

/// Two requests written back-to-back in one segment (pipelined) come
/// back as two correct, ordered responses on the same connection: the
/// parser must consume exactly one request head at a time from its
/// input buffer and keep the remainder for the next cycle.
#[test]
fn pipelined_keep_alive_requests_answer_in_order() {
    let (origin, table) = single_origin();
    let proxy = ContentAwareProxy::start(table, vec![origin.addr()], 2).unwrap();

    let mut conn = TcpStream::connect(proxy.addr()).unwrap();
    conn.set_nodelay(true).unwrap();
    conn.write_all(
        b"GET /a.html HTTP/1.1\r\nHost: x\r\n\r\nGET /b.html HTTP/1.1\r\nHost: x\r\n\r\n",
    )
    .unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Both responses arrive on the same connection, in request order.
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while got
        .windows(10)
        .filter(|w| w == b"alpha-body" || w == b"bravo-body")
        .count()
        < 2
    {
        assert!(Instant::now() < deadline, "responses incomplete: {got:?}");
        let mut buf = [0u8; 1024];
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e) => panic!("read failed mid-pipeline: {e}"),
        }
    }
    let text = String::from_utf8_lossy(&got);
    let a = text.find("alpha-body").expect("first response body");
    let b = text.find("bravo-body").expect("second response body");
    assert!(a < b, "responses must come back in request order: {text:?}");
    assert_eq!(proxy.relayed(), 2);
}

/// Gauge hygiene: `proxy_conn_active` must return to exactly zero after
/// every admission outcome the data plane has — a slowloris trickle that
/// completes normally, idle connections shed over the global cap, and a
/// tenant shed over its per-prefix cap. A leak here poisons every
/// aggregated `top`/`health` view and the flight recorder's history.
#[test]
fn conn_active_gauge_returns_to_zero_after_all_admission_paths() {
    let (origin, table) = single_origin();
    let registry = Arc::new(MetricsRegistry::new());
    let mut proxy = ContentAwareProxy::start_with_config(
        TablePublisher::new(table),
        vec![origin.addr()],
        Arc::clone(&registry),
        ProxyConfig {
            workers: 1,
            prefork: 2,
            max_conns: 4,
            tenant_caps: vec![cpms_httpd::TenantCap {
                prefix: "a.html".to_string(),
                max_conns: 2,
            }],
            ..ProxyConfig::default()
        },
    )
    .unwrap();
    let gauge = |registry: &MetricsRegistry| {
        registry
            .snapshot()
            .gauge("proxy_conn_active")
            .unwrap_or(i64::MIN)
    };

    // Path 1: a slowloris trickle that eventually completes and hangs up.
    let mut slow = TcpStream::connect(proxy.addr()).unwrap();
    slow.set_nodelay(true).unwrap();
    let head = b"GET /b.html HTTP/1.1\r\nHost: x\r\n\r\n";
    for chunk in head.chunks(7) {
        slow.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 1024];
    let n = slow.read(&mut buf).unwrap();
    assert!(String::from_utf8_lossy(&buf[..n]).starts_with("HTTP/1.1 200"));
    drop(slow);
    // Let the trickler's teardown finish so path 2 counts from zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    while proxy.active_connections() > 0 {
        assert!(Instant::now() < deadline, "slowloris conn never released");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Path 2: fill the global cap with idle connections; the overflow
    // connection is shed with a 503 before adoption.
    let idle: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(proxy.addr()).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while proxy.active_connections() < 4 {
        assert!(Instant::now() < deadline, "idle connections never adopted");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(gauge(&registry), 4, "all admitted connections counted");
    let mut over = TcpStream::connect(proxy.addr()).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut refusal = Vec::new();
    over.read_to_end(&mut refusal).unwrap();
    assert!(String::from_utf8_lossy(&refusal).starts_with("HTTP/1.1 503"));
    drop(over);
    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(5);
    while proxy.active_connections() > 0 {
        assert!(Instant::now() < deadline, "idle conns never released");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Path 3: the tenant cap sheds the third /a.html connection while
    // another tenant keeps flowing.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut client = HttpClient::connect(proxy.addr()).unwrap();
        assert_eq!(client.get("/a.html").unwrap().status, 200);
        held.push(client);
    }
    let mut third = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(third.get("/a.html").unwrap().status, 503);
    let mut other = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(other.get("/b.html").unwrap().status, 200);
    drop(third);
    drop(other);
    drop(held);

    // Every admission path unwound: the gauge must read exactly zero.
    let deadline = Instant::now() + Duration::from_secs(5);
    while gauge(&registry) != 0 {
        assert!(
            Instant::now() < deadline,
            "proxy_conn_active leaked: {} after every connection closed",
            gauge(&registry)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(proxy.active_connections(), 0);
    proxy.shutdown();
    assert_eq!(gauge(&registry), 0, "shutdown must not unbalance the gauge");
}

/// Connections beyond `max_conns` are shed at accept with an immediate
/// 503 — no queueing behind the event loop — and counted on the
/// `proxy_conn_rejected_total` counter.
#[test]
fn connections_over_the_cap_shed_fast_503s() {
    let (origin, table) = single_origin();
    let registry = Arc::new(MetricsRegistry::new());
    let mut proxy = ContentAwareProxy::start_with_config(
        TablePublisher::new(table),
        vec![origin.addr()],
        Arc::clone(&registry),
        ProxyConfig {
            workers: 1,
            prefork: 2,
            max_conns: 8,
            ..ProxyConfig::default()
        },
    )
    .unwrap();

    // Fill the admission budget with idle keep-alive connections.
    let idle: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(proxy.addr()).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(5);
    while proxy.active_connections() < 8 {
        assert!(Instant::now() < deadline, "idle connections never adopted");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The ninth is refused before it even sends a request.
    let mut over = TcpStream::connect(proxy.addr()).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let shed_at = Instant::now();
    let mut refusal = Vec::new();
    over.read_to_end(&mut refusal).unwrap();
    assert!(
        shed_at.elapsed() < Duration::from_secs(2),
        "overload shedding must be immediate"
    );
    let text = String::from_utf8_lossy(&refusal);
    assert!(text.starts_with("HTTP/1.1 503"), "shed with 503: {text:?}");

    let rejected = registry
        .snapshot()
        .counter("proxy_conn_rejected_total")
        .unwrap_or(0);
    assert!(rejected >= 1, "shed connection must be counted");

    // Shedding the excess never harms admitted connections.
    drop(idle);
    let free_deadline = Instant::now() + Duration::from_secs(5);
    while proxy.active_connections() > 0 {
        assert!(Instant::now() < free_deadline, "idle conns never released");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    assert_eq!(client.get("/a.html").unwrap().status, 200);
    proxy.shutdown();
}
