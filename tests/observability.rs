//! Single-system-image observability: one shared [`MetricsRegistry`]
//! collects the request path (proxy workers), routing (dispatch), the
//! URL table (lookup latency, cache behaviour, memory), and the
//! management plane (operation latencies, health transitions) — and the
//! whole registry is visible both through the proxy's `/_cpms/metrics`
//! admin endpoint and through the management console's `stats` report.

use cpms_httpd::client::HttpClient;
use cpms_httpd::{ContentAwareProxy, OriginServer, SiteContent, METRICS_JSON_PATH, METRICS_PATH};
use cpms_mgmt::{Cluster, ClusterMonitor, Controller, NodeHealth};
use cpms_model::{ContentId, ContentKind, NodeId, Priority, UrlPath};
use cpms_obs::MetricsRegistry;
use cpms_urltable::{UrlEntry, UrlTable};
use std::sync::Arc;

fn p(s: &str) -> UrlPath {
    s.parse().unwrap()
}

fn origin(node: u16, files: &[(&str, &[u8])]) -> OriginServer {
    let mut site = SiteContent::new();
    for (path, body) in files {
        site.add_static(path, body.to_vec());
    }
    OriginServer::start(NodeId(node), site).unwrap()
}

#[test]
fn one_registry_surfaces_every_subsystem() {
    let registry = Arc::new(MetricsRegistry::new());

    // --- live side: proxy over two origins, recording into the registry.
    let o0 = origin(0, &[("/a", b"alpha"), ("/r", b"r0")]);
    let o1 = origin(1, &[("/r", b"r1")]);
    let mut table = UrlTable::new();
    table
        .insert(
            p("/a"),
            UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 5).with_locations([NodeId(0)]),
        )
        .unwrap();
    table
        .insert(
            p("/r"),
            UrlEntry::new(ContentId(1), ContentKind::StaticHtml, 2)
                .with_locations([NodeId(0), NodeId(1)]),
        )
        .unwrap();
    let proxy = ContentAwareProxy::start_with_registry(
        table,
        vec![o0.addr(), o1.addr()],
        2,
        2,
        Arc::clone(&registry),
    )
    .unwrap();

    // --- management side: controller + monitor share the same registry.
    let mut controller = Controller::new(Cluster::start(2, 1 << 20));
    controller.set_metrics(&registry);
    controller
        .publish(
            &p("/a"),
            ContentId(0),
            ContentKind::StaticHtml,
            5,
            Priority::Normal,
            &[NodeId(0)],
        )
        .unwrap();
    assert!(controller.delete(&p("/missing")).is_err());

    let mut monitor = ClusterMonitor::new(2, 1);
    monitor.attach_metrics(&registry);
    controller.kill_node(NodeId(1));
    let verdicts = monitor.poll_controller(&controller);
    assert_eq!(verdicts[1].1, NodeHealth::Down);

    // --- traffic: routable, replicated, and unroutable requests.
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    for _ in 0..5 {
        assert_eq!(client.get("/a").unwrap().body, b"alpha");
        assert_eq!(client.get("/r").unwrap().status, 200);
    }
    assert_eq!(client.get("/nowhere").unwrap().status, 503);

    // --- surface 1: Prometheus text over the proxy's admin endpoint.
    let scrape = client.get(METRICS_PATH).unwrap();
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).unwrap();
    for required in [
        "proxy_relayed_total 10",
        "proxy_unroutable_total 1",
        "proxy_request_ns_count 11",
        "dispatch_requests_total 11",
        "urltable_lookup_ns{quantile=\"0.5\"}",
        "urltable_memory_bytes",
        "mgmt_ops_total 2",
        "mgmt_op_errors_total 1",
        "mgmt_node_down_total 1",
        "wire_rpc_total",
        "wire_rpc_ns_count",
        "wire_retries_total",
    ] {
        assert!(
            text.contains(required),
            "{required:?} missing from:\n{text}"
        );
    }

    // --- surface 2: the same registry as JSON, machine-parseable.
    let json = String::from_utf8(client.get(METRICS_JSON_PATH).unwrap().body).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
    let counter = |name: &str| {
        value
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_u64())
    };
    assert_eq!(counter("proxy_relayed_total"), Some(10));
    assert_eq!(counter("mgmt_ops_total"), Some(2));
    assert!(
        counter("wire_rpc_total").is_some_and(|v| v > 0),
        "broker RPCs land in the wire counters: {json}"
    );
    let p99 = value
        .get("histograms")
        .and_then(|h| h.get("proxy_request_ns"))
        .and_then(|h| h.get("p99"))
        .and_then(|v| v.as_u64());
    assert!(p99.is_some_and(|v| v > 0), "p99 present and nonzero");
    let events = value.get("events").and_then(|e| e.as_array()).unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("stage").and_then(|s| s.as_str()) == Some("health")),
        "health transition event present: {json}"
    );

    // --- surface 3: the console report renders all four families too.
    let report = controller.metrics_report();
    for family in ["proxy_", "dispatch_", "urltable_", "mgmt_", "wire_"] {
        assert!(report.contains(family), "{family} missing from:\n{report}");
    }

    controller.shutdown();
}

#[test]
fn request_latency_histograms_cover_the_pipeline_stages() {
    let registry = Arc::new(MetricsRegistry::new());
    let o0 = origin(0, &[("/x", b"x")]);
    let mut table = UrlTable::new();
    table
        .insert(
            p("/x"),
            UrlEntry::new(ContentId(0), ContentKind::StaticHtml, 1).with_locations([NodeId(0)]),
        )
        .unwrap();
    let proxy =
        ContentAwareProxy::start_with_registry(table, vec![o0.addr()], 1, 1, Arc::clone(&registry))
            .unwrap();
    let mut client = HttpClient::connect(proxy.addr()).unwrap();
    for _ in 0..20 {
        client.get("/x").unwrap();
    }

    // The per-request histograms record just *after* the response bytes
    // go out, so the final request's samples can still be in flight
    // when the client returns — poll briefly instead of racing them.
    let mut snap = registry.snapshot();
    for _ in 0..200 {
        if ["proxy_parse_ns", "proxy_relay_ns", "proxy_request_ns"]
            .iter()
            .all(|h| snap.histogram(h).is_some_and(|s| s.count >= 20))
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        snap = registry.snapshot();
    }
    let parse = snap.histogram("proxy_parse_ns").unwrap();
    let relay = snap.histogram("proxy_relay_ns").unwrap();
    let request = snap.histogram("proxy_request_ns").unwrap();
    let lookup = snap.histogram("urltable_lookup_ns").unwrap();
    for (name, hist) in [
        ("parse", parse),
        ("relay", relay),
        ("request", request),
        ("lookup", lookup),
    ] {
        assert_eq!(hist.count, 20, "{name} recorded once per request");
        assert!(hist.p50 <= hist.p90 && hist.p90 <= hist.p99, "{name}");
        assert!(hist.max > 0, "{name} measured real time");
    }
    // Stage nesting: the whole request takes at least as long as its
    // relay stage, which dominates (network round trip to the origin).
    assert!(request.p50 >= relay.p50);
    // The sub-microsecond table lookup is far below the socket relay.
    assert!(lookup.p50 < relay.max);
}
