//! A recursive-descent JSON text parser producing [`Value`] trees.

use serde::value::{Map, Number, Value};
use serde::Error;

/// Nesting depth limit, matching serde_json's default recursion guard.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing non-whitespace.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(byte))))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 character (input is valid
                    // UTF-8 because it came from a &str).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if !(self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u')) {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("invalid low surrogate"));
            }
            let combined =
                0x10000 + ((u32::from(first) - 0xD800) << 10) + (u32::from(second) - 0xDC00);
            char::from_u32(combined).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&first) {
            Err(self.err("unpaired surrogate"))
        } else {
            char::from_u32(u32::from(first)).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::Float(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if negative {
            match text.parse::<i64>() {
                Ok(n) => Number::NegInt(n),
                // Fall back to float on overflow rather than failing.
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::PosInt(n),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        };
        Ok(Value::Number(number))
    }
}
