//! JSON text rendering (compact and pretty) over [`Value`] trees.

use serde::value::{Number, Value};
use std::fmt::Write as _;

/// Renders `value` as JSON text. `indent` of `None` is compact;
/// `Some(level)` pretty-prints with two spaces per level, matching
/// serde_json's default pretty formatter.
pub fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    render(value, indent, &mut out);
    out
}

fn pad(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render(value: &Value, indent: Option<usize>, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    pad(out, level + 1);
                    render(item, Some(level + 1), out);
                } else {
                    render(item, None, out);
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                pad(out, level);
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    pad(out, level + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    render(item, Some(level + 1), out);
                } else {
                    render_string(key, out);
                    out.push(':');
                    render(item, None, out);
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                pad(out, level);
            }
            out.push('}');
        }
    }
}

fn render_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                let start = out.len();
                let _ = write!(out, "{v}");
                // `{}` prints the shortest round-trip form but drops the
                // decimal point for integral floats; serde_json keeps it.
                if !out[start..].contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
