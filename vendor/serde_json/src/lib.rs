//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! JSON text parsing and printing over the vendored `serde`'s
//! [`Value`] tree, exposing the API surface this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`Value`], and the [`json!`] macro. Output conventions match real
//! serde_json: two-space pretty indentation, integer map keys
//! stringified, non-finite floats as `null`, floats always printed with
//! a decimal point or exponent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

mod read;
mod write;

/// Renders any serializable value as a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&value.to_value(), None))
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Never fails for the types in this workspace; the `Result` mirrors the
/// real serde_json signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write::write(&value.to_value(), Some(0)))
}

/// Deserializes a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = read::parse(s)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like syntax with interpolated Rust
/// expressions, like serde_json's macro of the same name.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

/// Recursive token muncher behind [`json!`]. Not a public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: accumulate exprs left of the brackets.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entry munching: `$object [key] (value-so-far) rest`.
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$key:tt] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert($key, $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$key:tt] ($value:expr)) => {
        let _ = $object.insert($key, $value);
    };
    (@object $object:ident ($key:tt) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($key:tt) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$key] ($crate::json_internal!([$($array)*])) $($rest)*
        );
    };
    (@object $object:ident ($key:tt) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$key] ($crate::json_internal!({$($map)*})) $($rest)*
        );
    };
    (@object $object:ident ($key:tt) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(
            @object $object [$key] ($crate::json_internal!($value)) , $($rest)*
        );
    };
    (@object $object:ident ($key:tt) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$key] ($crate::json_internal!($value)));
    };
    // Take the (string-literal) key.
    (@object $object:ident () ($key:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($key) ($($rest)*) ($($rest)*));
    };

    // ---- primary forms.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rps = 123.5f64;
        let v = json!({
            "name": "bench",
            "null_field": Value::Null,
            "nested": { "rps": rps, "ok": true },
            "list": [1, 2, rps],
            "rows": (0..2).map(|i| json!({"i": i})).collect::<Vec<_>>(),
        });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("name").unwrap().as_str(), Some("bench"));
        assert!(obj.get("null_field").unwrap().is_null());
        assert_eq!(
            v.get("nested").unwrap().get("rps").unwrap().as_f64(),
            Some(123.5)
        );
        assert_eq!(obj.get("list").unwrap().as_array().unwrap().len(), 3);
        let rows = obj.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[1].get("i").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn compact_roundtrip() {
        let v = json!({"a": [1, -2, 0.5], "b": null, "c": "x\"y\n"});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_format_matches_serde_json_conventions() {
        let v = json!({"a": 1, "b": [true, null]});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(
            text,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&json!(1.0f64)).unwrap(), "1.0");
        assert_eq!(to_string(&json!(4.32f64)).unwrap(), "4.32");
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "aA\n\"\\", "n": -12, "f": 1e3}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA\n\"\\"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(-12));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1000.0));
    }
}
