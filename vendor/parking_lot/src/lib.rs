//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in an environment with no network access and no
//! crates.io mirror, so the handful of external dependencies are vendored
//! as minimal, API-compatible implementations (see `vendor/README.md`).
//!
//! Only the surface this workspace uses is provided: [`Mutex`] and
//! [`RwLock`] with `parking_lot` semantics — no lock poisoning, guards
//! returned directly from `lock()`/`read()`/`write()`. Internally these
//! wrap the `std::sync` primitives and recover from poisoning (a panic
//! while holding a `std` lock poisons it; `parking_lot` locks do not
//! poison, so recovery preserves the semantics callers rely on).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, LockResult};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutual-exclusion lock that does not poison on panic.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock that does not poison on panic.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert!(l.try_write().is_some());
        assert!(l.try_read().is_some());
        let guard = l.write();
        assert!(l.try_read().is_none(), "write guard blocks readers");
        drop(guard);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock is still usable after a panic.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn concurrent_counting() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
