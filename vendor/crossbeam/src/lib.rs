//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides `crossbeam::channel::{bounded, unbounded, Sender, Receiver}`
//! with the subset of semantics this workspace relies on: cloneable
//! senders, blocking `recv`, and disconnect errors once all senders (or
//! the receiver) are gone. The receiver wraps `std::sync::mpsc::Receiver`
//! behind a mutex so it is `Sync` and shareable like crossbeam's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer channels with crossbeam's API shape.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel is empty and all senders dropped.
        Disconnected,
    }

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
            }
        }
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking if the channel is bounded and full.
        ///
        /// # Errors
        ///
        /// [`SendError`] if the receiving side has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(s) => s.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }
    }

    /// The receiving half of a channel. Cloneable and `Sync` (receives are
    /// serialized internally, like crossbeam's MPMC receiver).
    pub struct Receiver<T> {
        rx: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                rx: Arc::clone(&self.rx),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv().map_err(|_| RecvError)
        }

        /// Receives without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks for at most `timeout` waiting for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }

    /// Creates a bounded channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver {
                rx: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_reply_channel() {
        // The broker's usage pattern: bounded(1) reply channels.
        let (tx, rx) = bounded(1);
        std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn disconnected_send_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn cross_thread_fanin() {
        let (tx, rx) = unbounded();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for j in 0..100 {
                        tx.send(i * 100 + j).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = 0;
            while rx.recv().is_ok() {
                got += 1;
            }
            assert_eq!(got, 400);
        });
    }
}
