//! Sized collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing `Vec`s whose length falls in a half-open range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element`-generated values with a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = draw_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

fn draw_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(
        size.start < size.end,
        "empty size range for collection strategy"
    );
    size.start + rng.below((size.end - size.start) as u64) as usize
}

/// A strategy producing `HashSet`s. The target length is drawn from
/// `size`, but duplicate draws can make the set smaller.
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates hash sets of `element`-generated values.
pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    HashSetStrategy { element, size }
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = draw_len(&self.size, rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `HashMap`s. The target length is drawn from
/// `size`, but duplicate keys can make the map smaller.
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Generates hash maps with `key`/`value`-generated entries.
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> HashMapStrategy<K, V>
where
    K::Value: std::hash::Hash + Eq,
{
    HashMapStrategy { key, value, size }
}

impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
where
    K::Value: std::hash::Hash + Eq,
{
    type Value = std::collections::HashMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = draw_len(&self.size, rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
