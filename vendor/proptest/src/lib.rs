//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the API surface this workspace's property tests use:
//! [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], unions via
//! [`prop_oneof!`], integer-range and tuple strategies, `any::<T>()`,
//! regex-subset string strategies (`"[a-z]{1,4}"`-style), sized
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`] macros.
//!
//! Differences from real proptest: no shrinking (a failing case panics
//! with the generated input's `Debug` form), and case generation is
//! deterministic per test name so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of the crate root, so `prop::collection::vec`
    /// works as it does with real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Expands the individual test functions for [`proptest!`]. Not a public
/// API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(&config, stringify!($name), &strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Combines strategies producing the same value type into one that picks
/// uniformly among them.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Skips the current property-test case (without failing) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Fails the current property-test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current property-test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current property-test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u8, String)> {
        (any::<u8>(), "[a-c]{2,3}")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..2) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 2);
        }

        #[test]
        fn regex_subset_strings(s in "[a-z]{1,4}") {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            Just(99u64),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn vec_respects_size(items in prop::collection::vec(composite(), 1..5)) {
            prop_assert!(!items.is_empty() && items.len() < 5);
            for (_, s) in &items {
                prop_assert!(s.len() >= 2 && s.len() <= 3);
            }
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_input() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(16),
            "always_fails",
            &(0u8..4,),
            |(_x,)| Err(TestCaseError::fail("nope")),
        );
    }
}
