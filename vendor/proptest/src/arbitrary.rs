//! The [`Arbitrary`] trait and `any::<T>()`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<fn() -> A>);

/// The canonical strategy for `A`: any value in its domain.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
