//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::fmt;
use std::ops::Range;

/// A boxed, type-erased strategy (what [`Strategy::boxed`] returns and
/// `prop_oneof!` collects).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Picks uniformly among several strategies with the same value type
/// (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // A uniform draw in [0, 1) with 53 bits of precision.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = f64::from(self.start) + unit * (f64::from(self.end) - f64::from(self.start));
                if (v as $t) < self.end { v as $t } else { self.start }
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// String literals act as regex-subset string strategies, as in real
/// proptest. Supported syntax: literal characters, `[a-z0-9_]` classes
/// (ranges and singletons), `.` (printable ASCII), and the quantifiers
/// `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

enum RegexPiece {
    Literal(char),
    Class(Vec<(char, char)>),
    AnyPrintable,
}

impl RegexPiece {
    fn generate(&self, rng: &mut TestRng) -> char {
        match self {
            RegexPiece::Literal(c) => *c,
            RegexPiece::AnyPrintable => {
                char::from_u32(0x20 + rng.below(0x5f) as u32).expect("printable ascii")
            }
            RegexPiece::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let size = u64::from(*hi as u32 - *lo as u32 + 1);
                    if pick < size {
                        return char::from_u32(*lo as u32 + pick as u32).expect("class char");
                    }
                    pick -= size;
                }
                unreachable!("pick is within total")
            }
        }
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> RegexPiece {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .expect("unterminated character class in regex strategy");
        if c == ']' {
            break;
        }
        if chars.peek() == Some(&'-') {
            let mut lookahead = chars.clone();
            lookahead.next();
            match lookahead.peek() {
                Some(&hi) if hi != ']' => {
                    chars.next();
                    chars.next();
                    assert!(c <= hi, "inverted range in regex strategy class");
                    ranges.push((c, hi));
                    continue;
                }
                _ => {}
            }
        }
        ranges.push((c, c));
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in regex strategy"
    );
    RegexPiece::Class(ranges)
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u64, u64) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad regex quantifier"),
                    hi.trim().parse().expect("bad regex quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad regex quantifier");
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => parse_class(&mut chars),
            '.' => RegexPiece::AnyPrintable,
            '\\' => RegexPiece::Literal(chars.next().expect("trailing backslash in regex")),
            other => RegexPiece::Literal(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        let count = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
        for _ in 0..count {
            out.push(piece.generate(rng));
        }
    }
    out
}
