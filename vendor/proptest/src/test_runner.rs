//! Deterministic case generation and the test-running loop.

use crate::strategy::Strategy;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed or rejected property-test case (produced by `prop_assert!`
/// and `prop_assume!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
    reject: bool,
}

impl TestCaseError {
    /// Creates a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            reject: false,
        }
    }

    /// Creates a rejection (`prop_assume!` miss): the case is skipped
    /// rather than counted as a failure.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError {
            msg: msg.into(),
            reject: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    #[must_use]
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The random source handed to strategies (SplitMix64; deterministic per
/// test name so failures reproduce run to run).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a property-test name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Runs `test` against `config.cases` generated inputs, panicking on the
/// first falsified case with the input's `Debug` form.
///
/// # Panics
///
/// Panics when a case fails or the test body itself panics.
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    test: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        let repr = format!("{input:?}");
        match catch_unwind(AssertUnwindSafe(|| test(input))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) if e.is_reject() => {}
            Ok(Err(e)) => panic!(
                "proptest `{name}` falsified at case {case}/{}: {e}\n  input: {repr}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest `{name}` panicked at case {case}/{}\n  input: {repr}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}
