//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates impls of the vendored `serde`'s value-tree `Serialize` /
//! `Deserialize` traits. Because `syn`/`quote` are unavailable offline,
//! the item is parsed directly from the [`proc_macro::TokenStream`] and
//! the impls are emitted as formatted source strings.
//!
//! Supported shapes (everything this workspace derives):
//!
//! - structs with named fields, tuple structs (newtypes transparent,
//!   wider tuples as arrays), unit structs,
//! - enums with unit, newtype, tuple, and struct variants (externally
//!   tagged; unit variants as plain strings),
//! - the `#[serde(try_from = "T", into = "T")]` container attributes.
//!
//! Generics, lifetimes, and other serde attributes are rejected with a
//! compile-time panic rather than silently mishandled.

#![warn(missing_docs)]
#![allow(clippy::missing_panics_doc)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derives the vendored `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    expand_serialize(&container)
        .parse()
        .expect("generated Serialize impl should parse")
}

/// Derives the vendored `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    expand_deserialize(&container)
        .parse()
        .expect("generated Deserialize impl should parse")
}

struct Container {
    name: String,
    /// `#[serde(try_from = "T")]`: deserialize via `TryFrom<T>`.
    try_from: Option<String>,
    /// `#[serde(into = "T")]`: serialize via `Clone` + `Into<T>`.
    into: Option<String>,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------- parsing

fn parse_container(input: TokenStream) -> Container {
    let mut iter = input.into_iter().peekable();
    let mut try_from = None;
    let mut into = None;
    let mut kind = None;

    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_outer_attr(&g, &mut try_from, &mut into);
                }
                _ => panic!("serde_derive: malformed attribute"),
            },
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    kind = Some(word);
                    break;
                }
                // visibility / `crate` / `in` path words: skip.
            }
            // pub(crate)-style visibility scope.
            TokenTree::Group(_) => {}
            _ => panic!("serde_derive: unexpected token before item keyword"),
        }
    }

    let kind = kind.expect("serde_derive: expected `struct` or `enum`");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => panic!("serde_derive: expected item name"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }

    let data = if kind == "struct" {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(&g))
            }
            _ => panic!("serde_derive: malformed struct body"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g))
            }
            _ => panic!("serde_derive: malformed enum body"),
        }
    };

    Container {
        name,
        try_from,
        into,
        data,
    }
}

/// Extracts `try_from`/`into` from a `#[serde(...)]` attribute; ignores
/// all other attributes; rejects unknown serde attributes.
fn parse_outer_attr(group: &Group, try_from: &mut Option<String>, into: &mut Option<String>) {
    let mut iter = group.stream().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // #[doc], #[derive], #[default], ... — not ours.
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return;
    };
    let mut args = args.stream().into_iter().peekable();
    while let Some(tt) = args.next() {
        let TokenTree::Ident(key) = tt else {
            panic!("serde_derive: malformed #[serde(...)] attribute");
        };
        let key = key.to_string();
        match args.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
            _ => panic!("serde_derive: expected `=` in #[serde({key} = ...)]"),
        }
        let value = match args.next() {
            Some(TokenTree::Literal(lit)) => {
                let repr = lit.to_string();
                repr.trim_matches('"').to_owned()
            }
            _ => panic!("serde_derive: expected string literal in #[serde({key} = ...)]"),
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        if matches!(args.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            args.next();
        }
    }
}

/// Counts fields in a tuple-struct/tuple-variant body, ignoring commas
/// nested inside generic argument lists.
fn count_tuple_fields(group: &Group) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0;
    let mut pending = false;
    for tt in group.stream() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    pending = true;
                }
                '>' => {
                    angle_depth -= 1;
                    pending = true;
                }
                ',' if angle_depth == 0 => {
                    fields += 1;
                    pending = false;
                }
                _ => pending = true,
            },
            _ => pending = true,
        }
    }
    if pending {
        fields += 1;
    }
    fields
}

fn skip_attributes(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the bracketed attribute body
    }
}

fn skip_visibility(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_named_fields(group: &Group) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        names.push(name.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive: expected `:` after field name"),
        }
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    names
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = group.stream().into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                iter.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g);
                iter.next();
                VariantFields::Named(names)
            }
            _ => VariantFields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while let Some(tt) = iter.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                iter.next();
                break;
            }
            iter.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            fields,
        });
    }
    variants
}

// -------------------------------------------------------------- expansion

fn expand_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(into) = &c.into {
        format!(
            "let converted: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&converted)"
        )
    } else {
        match &c.data {
            Data::NamedStruct(fields) => serialize_named_fields(fields, "self.", "&"),
            Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
            Data::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "::serde::value::Value::Array(::std::vec![{}])",
                    items.join(", ")
                )
            }
            Data::UnitStruct => "::serde::value::Value::Null".to_owned(),
            Data::Enum(variants) => serialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Emits an expression building the object form of named fields.
/// `access` prefixes each field (`self.` for structs, empty for bindings).
fn serialize_named_fields(fields: &[String], access: &str, borrow: &str) -> String {
    let mut out = String::from("{\nlet mut object = ::serde::value::Map::new();\n");
    for f in fields {
        out.push_str(&format!(
            "object.insert(\"{f}\", ::serde::Serialize::to_value({borrow}{access}{f}));\n"
        ));
    }
    out.push_str("::serde::value::Value::Object(object)\n}");
    out
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::value::Value::String(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantFields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::__private::tag(\"{vname}\", ::serde::Serialize::to_value(__f0)),\n"
            )),
            VariantFields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::__private::tag(\"{vname}\", ::serde::value::Value::Array(::std::vec![{}])),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            VariantFields::Named(fields) => {
                let object = serialize_named_fields(fields, "", "");
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => ::serde::__private::tag(\"{vname}\", {object}),\n",
                    fields.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn expand_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(try_from) = &c.try_from {
        format!(
            "let raw: {try_from} = ::serde::Deserialize::from_value(value)?;\n\
             <Self as ::core::convert::TryFrom<{try_from}>>::try_from(raw)\n\
                 .map_err(|e| ::serde::Error::custom(::std::string::ToString::to_string(&e)))"
        )
    } else {
        match &c.data {
            Data::NamedStruct(fields) => format!(
                "let object = ::serde::__private::as_object(value, \"{name}\")?;\n\
                 ::core::result::Result::Ok({})",
                deserialize_named_fields(name, fields)
            ),
            Data::TupleStruct(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
            ),
            Data::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = ::serde::__private::as_array(value, {n}, \"{name}\")?;\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Data::UnitStruct => format!(
                "if value.is_null() {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }} else {{\n\
                     ::core::result::Result::Err(::serde::Error::custom(\"expected null for unit struct {name}\"))\n\
                 }}"
            ),
            Data::Enum(variants) => deserialize_enum(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// Emits a struct literal pulling each named field out of `object`.
fn deserialize_named_fields(path: &str, fields: &[String]) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        out.push_str(&format!(
            "{f}: ::serde::__private::field(object, \"{f}\")?,\n"
        ));
    }
    out.push('}');
    out
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut string_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            VariantFields::Unit => string_arms.push_str(&format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantFields::Tuple(1) => tagged_arms.push_str(&format!(
                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
            )),
            VariantFields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let items = ::serde::__private::as_array(inner, {n}, \"{name}::{vname}\")?;\n\
                         ::core::result::Result::Ok({name}::{vname}({}))\n\
                     }}\n",
                    items.join(", ")
                ));
            }
            VariantFields::Named(fields) => {
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let object = ::serde::__private::as_object(inner, \"{name}::{vname}\")?;\n\
                         ::core::result::Result::Ok({})\n\
                     }}\n",
                    deserialize_named_fields(&format!("{name}::{vname}"), fields)
                ));
            }
        }
    }
    format!(
        "match value {{\n\
             ::serde::value::Value::String(s) => match s.as_str() {{\n\
                 {string_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\n\
                     ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))),\n\
             }},\n\
             ::serde::value::Value::Object(object) => {{\n\
                 let (tag, inner) = ::serde::__private::single_entry(object, \"{name}\")?;\n\
                 let _ = inner;\n\
                 match tag {{\n\
                     {tagged_arms}\
                     other => ::core::result::Result::Err(::serde::Error::custom(\n\
                         ::std::format!(\"unknown variant `{{other}}` of enum {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => ::core::result::Result::Err(::serde::Error::custom(\n\
                 \"expected string or object for enum {name}\")),\n\
         }}"
    )
}
