//! Offline stand-in for the `criterion` benchmark harness (see
//! `vendor/README.md`).
//!
//! Implements the API surface this workspace's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`] with `sample_size` / `bench_function` /
//! `finish`, [`Bencher::iter`] and [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurement is a plain wall-clock harness: after a short
//! warm-up it times `sample_size` samples and reports the median
//! nanoseconds per iteration. There are no plots, no statistics beyond
//! the median, and no saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. All variants behave the same
/// here: setup runs untimed before every routine invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    result_ns: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            result_ns: 0.0,
        }
    }

    /// Times `routine`, called repeatedly in batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Grow the batch until one batch takes at least ~1ms so Instant
        // overhead stays negligible, then take `sample_size` samples.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_millis(1) || batch >= (1 << 24) {
                break;
            }
            batch *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.result_ns = median(&mut samples);
    }

    /// Times `routine` on fresh input from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        self.result_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and must call
    /// `iter` or `iter_batched` on it.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        println!(
            "{}/{:<40} time: [{}]",
            self.name,
            id,
            format_ns(bencher.result_ns)
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into a single group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running each group in order. Command-line
/// arguments (cargo passes `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor_smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| 1u64 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        trivial_bench(&mut c);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(1_500.0), "1.500 µs");
        assert_eq!(format_ns(2_000_000.0), "2.000 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.000 s");
    }
}
