//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the rand 0.8 API surface this workspace uses:
//!
//! - [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`] (xoshiro256**,
//!   seeded through SplitMix64 exactly as the xoshiro reference code
//!   recommends),
//! - [`Rng::gen`] for the primitive types the workload generators sample,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The streams differ from the real `rand` crate's, so seeded experiments
//! produce different (but still deterministic and statistically
//! equivalent) draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from a [`RngCore`] ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods every RNG gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws a uniform value in `[low, high)` (u64/usize-style half-open
    /// integer ranges; the only form this workspace needs).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // negligible for the spans used here.
        range.start + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded RNGs.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let x = rng.gen_range(0..8);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 1.0);
        let slice = [1, 2, 3];
        assert!(slice.choose(&mut rng).is_some());
    }
}
