//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! The real serde is a zero-copy (de)serialization framework; this
//! workspace only ever derives `Serialize`/`Deserialize` and round-trips
//! through JSON via `serde_json`, so the stand-in collapses the data-model
//! machinery into a single JSON-shaped [`value::Value`] tree:
//!
//! - [`Serialize::to_value`] renders a type into a [`value::Value`],
//! - [`Deserialize::from_value`] rebuilds a type from one,
//! - the `serde_derive` proc-macros (re-exported here, like the real
//!   crate's `derive` feature) generate both impls with the same external
//!   JSON conventions as real serde: structs as objects, newtype structs
//!   transparent, unit enum variants as strings, data-carrying variants
//!   externally tagged.
//!
//! The committed artifact `configs/paper_testbed.json` (written by real
//! serde before vendoring) parses unchanged under these conventions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::{Map, Number, Value};

/// Error produced while building or interpreting a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a JSON-shaped [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type rebuildable from a JSON-shaped [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field is absent from its object. Errors by
    /// default; `Option` overrides this to yield `None`, matching serde's
    /// treatment of missing optional fields.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the type tolerates absence.
    #[doc(hidden)]
    fn missing_field(field: &'static str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(clippy::cast_lossless)]
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n < 0 {
                    Value::Number(Number::NegInt(n))
                } else {
                    #[allow(clippy::cast_sign_loss)]
                    Value::Number(Number::PosInt(n as u64))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| Error::custom("integer out of range for isize"))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(__private::key_to_string(&k.to_value()), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, val) in obj.iter() {
            out.insert(__private::key_from_string(k)?, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?;
        let mut out =
            std::collections::HashSet::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            out.insert(T::from_value(item)?);
        }
        Ok(out)
    }
}

#[doc(hidden)]
pub mod __private {
    //! Support functions referenced by `serde_derive`-generated code.
    //! Not a stable API.

    use super::{Deserialize, Error, Map, Number, Value};

    /// Fetches and deserializes a struct field, delegating absence to
    /// [`Deserialize::missing_field`].
    pub fn field<T: Deserialize>(obj: &Map, name: &'static str) -> Result<T, Error> {
        match obj.get(name) {
            Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
            None => T::missing_field(name),
        }
    }

    /// Interprets `v` as the object form of struct `what`.
    pub fn as_object<'v>(v: &'v Value, what: &str) -> Result<&'v Map, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object for {what}")))
    }

    /// Interprets `v` as an array of exactly `len` elements for `what`.
    pub fn as_array<'v>(v: &'v Value, len: usize, what: &str) -> Result<&'v [Value], Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array for {what}")))?;
        if items.len() == len {
            Ok(items)
        } else {
            Err(Error::custom(format!(
                "expected array of length {len} for {what}, got {}",
                items.len()
            )))
        }
    }

    /// Wraps `value` in the externally-tagged enum form `{tag: value}`.
    pub fn tag(name: &str, value: Value) -> Value {
        let mut map = Map::new();
        map.insert(name.to_owned(), value);
        Value::Object(map)
    }

    /// Unwraps the externally-tagged enum form `{tag: value}`.
    pub fn single_entry<'v>(obj: &'v Map, what: &str) -> Result<(&'v str, &'v Value), Error> {
        let mut iter = obj.iter();
        match (iter.next(), iter.next()) {
            (Some((k, v)), None) => Ok((k.as_str(), v)),
            _ => Err(Error::custom(format!(
                "expected single-key object for enum {what}"
            ))),
        }
    }

    /// Renders a map key `Value` as the JSON object-key string, matching
    /// serde_json: strings pass through, integers stringify.
    pub fn key_to_string(v: &Value) -> String {
        match v {
            Value::String(s) => s.clone(),
            Value::Number(Number::PosInt(n)) => n.to_string(),
            Value::Number(Number::NegInt(n)) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            _ => panic!("map key must serialize to a string, integer, or bool"),
        }
    }

    /// Rebuilds a map key from its JSON object-key string: tries the
    /// string form first, then a numeric reinterpretation (for integer
    /// newtype keys, which serde_json stringifies on output).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when neither form deserializes.
    pub fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
        let as_string = K::from_value(&Value::String(key.to_owned()));
        if as_string.is_ok() {
            return as_string;
        }
        if let Ok(n) = key.parse::<u64>() {
            if let Ok(k) = K::from_value(&Value::Number(Number::PosInt(n))) {
                return Ok(k);
            }
        }
        if let Ok(n) = key.parse::<i64>() {
            if let Ok(k) = K::from_value(&Value::Number(Number::NegInt(n))) {
                return Ok(k);
            }
        }
        as_string
    }
}
