//! The JSON-shaped value tree shared by the vendored `serde` and
//! `serde_json` crates.

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Preserves insertion order like serde_json's
    /// `preserve_order` mode, so written artifacts keep field order.
    Object(Map),
}

/// A JSON number: either an exact integer or a float, mirroring
/// serde_json's internal representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// Whether this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value for the key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a", Value::Bool(true)).is_none());
        assert_eq!(m.insert("a", Value::Null), Some(Value::Bool(true)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Null));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Number(Number::PosInt(3)).as_u64(), Some(3));
        assert_eq!(Value::Number(Number::NegInt(-3)).as_i64(), Some(-3));
        assert_eq!(Value::Number(Number::Float(0.5)).as_f64(), Some(0.5));
        assert_eq!(Value::Number(Number::PosInt(3)).as_f64(), Some(3.0));
        assert!(Value::Null.is_null());
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
    }
}
